//! The full Reduce pipeline (Fig. 1) on a fleet of faulty chips:
//! characterise once, then pick a per-chip retraining amount and compare
//! against fixed-policy baselines.
//!
//! ```text
//! cargo run --release --example chip_fleet
//! ```

use reduce_core::{
    report, ExecConfig, Reduce, ResilienceConfig, RetrainPolicy, Statistic, Workbench,
};
use reduce_systolic::{generate_fleet, FaultModel, FleetConfig, RateDistribution};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let workbench = Workbench::toy(42);
    let (rows, cols) = workbench.array_dims();

    println!("== Step 0: pre-train the fault-free DNN ==");
    // The constraint is set relative to the measured fault-free ceiling
    // (the paper uses an absolute 91%; both conventions are supported).
    let pretrained = workbench.pretrain(15)?;
    let constraint = ((pretrained.baseline_accuracy - 0.035) * 100.0).floor() / 100.0;
    let reduce = Reduce::with_pretrained(workbench, pretrained, constraint)?;
    let mut reduce = reduce;
    println!(
        "baseline accuracy {:.2}% (constraint {:.0}%)\n",
        reduce.pretrained().baseline_accuracy * 100.0,
        constraint * 100.0
    );

    println!("== Step 1: resilience characterisation ==");
    let exec = ExecConfig::auto();
    let config = ResilienceConfig::builder()
        .max_rate(0.3)
        .points(5)
        .max_epochs(12)
        .constraint(constraint)
        .build()?;
    reduce.characterize(config, &exec)?;
    let analysis = reduce.analysis().expect("characterized above");
    println!("{}", report::render_epochs_to_constraint(analysis));

    println!("== Steps 2+3: deploy to a 20-chip fleet under each policy ==");
    let fleet = generate_fleet(&FleetConfig {
        chips: 20,
        rows,
        cols,
        rates: RateDistribution::Uniform { lo: 0.0, hi: 0.3 },
        model: FaultModel::Random,
        seed: 99,
    })?;

    let policies = [
        RetrainPolicy::Reduce(Statistic::Max),
        RetrainPolicy::Reduce(Statistic::Mean),
        RetrainPolicy::Fixed(2),
        RetrainPolicy::Fixed(6),
        RetrainPolicy::Fixed(12),
    ];
    let mut reports = Vec::new();
    for policy in policies {
        println!("  running {} …", policy.label());
        reports.push(reduce.deploy(&fleet, policy, &exec)?);
    }
    println!("\n{}", report::render_fleet_summary(&reports));

    println!("total retraining epochs per policy:");
    let bars: Vec<(String, f64)> = reports
        .iter()
        .map(|r| (r.policy.clone(), r.total_epochs as f64))
        .collect();
    println!("{}", report::render_bars(&bars, 40));
    Ok(())
}
