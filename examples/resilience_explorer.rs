//! Step-① explorer: sweep fault rates × retraining epochs and print the
//! resilience curves (Fig. 2a) and epochs-to-constraint statistics
//! (Fig. 2b).
//!
//! ```text
//! cargo run --release --example resilience_explorer [max_rate] [points] [epochs] [constraint]
//! ```

use reduce_core::{report, ExecConfig, FatRunner, ResilienceAnalysis, ResilienceConfig, Workbench};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().collect();
    let max_rate: f64 = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(0.3);
    let points: usize = args.get(2).map(|s| s.parse()).transpose()?.unwrap_or(5);
    let epochs: usize = args.get(3).map(|s| s.parse()).transpose()?.unwrap_or(12);
    let constraint: f32 = args.get(4).map(|s| s.parse()).transpose()?.unwrap_or(0.9);

    let workbench = Workbench::toy(3);
    println!("pre-training fault-free model…");
    let pretrained = workbench.pretrain(15)?;
    println!(
        "baseline accuracy {:.2}%\n",
        pretrained.baseline_accuracy * 100.0
    );

    let runner = FatRunner::new(workbench)?;
    let config = ResilienceConfig::builder()
        .max_rate(max_rate)
        .points(points)
        .max_epochs(epochs)
        .constraint(constraint)
        .build()?;
    println!(
        "characterising {} rates × {} repeats × up to {} epochs…\n",
        points, config.repeats, epochs
    );
    let analysis = ResilienceAnalysis::run(&runner, &pretrained, config, &ExecConfig::auto())?;

    println!("— Fig. 2a: accuracy vs fault rate at each retraining level —");
    println!(
        "{}",
        report::render_resilience_curves(&analysis, &[0, 1, 2, 4, 8, epochs])
    );

    println!("— Fig. 2b: epochs to reach {:.0}% —", constraint * 100.0);
    println!("{}", report::render_epochs_to_constraint(&analysis));

    println!("note: wide min–max spreads are why Reduce recommends the max statistic;");
    println!("selecting by the mean undertrains the unlucky chips (paper §III-B).");
    Ok(())
}
