//! Quickstart: the fault → accuracy-drop → fault-aware-retraining loop on
//! a single chip.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use reduce_core::{FatRunner, Mitigation, StopRule, Workbench};
use reduce_systolic::{FaultMap, FaultModel};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A small experiment bench: MLP on noisy Gaussian blobs.
    let workbench = Workbench::toy(42);
    println!("pre-training the fault-free model…");
    let pretrained = workbench.pretrain(15)?;
    println!(
        "  baseline test accuracy: {:.2}%",
        pretrained.baseline_accuracy * 100.0
    );

    // 2. A fabricated chip with 20% of its 8x8 PE array faulty.
    let (rows, cols) = workbench.array_dims();
    let fault_map = FaultMap::generate(rows, cols, 0.20, FaultModel::Random, 7)?;
    println!("chip: {fault_map}");

    // 3. Fault-aware retraining: mask the weights the faulty PEs zero, then
    //    retrain so the surviving weights compensate.
    let runner = FatRunner::new(workbench)?;
    let outcome = runner.run(
        &pretrained,
        &fault_map,
        10,
        StopRule::Exact,
        Mitigation::Fap,
        0,
    )?;

    println!(
        "after FAP masking ({:.1}% of weights pruned): {:.2}%",
        outcome.pruned_fraction * 100.0,
        outcome.pre_retrain_accuracy * 100.0
    );
    for (epoch, acc) in outcome.accuracy_after_epoch.iter().enumerate() {
        println!("  after {:>2} FAT epoch(s): {:.2}%", epoch + 1, acc * 100.0);
    }
    println!(
        "recovered {:.2}% of the baseline with {} epochs of retraining",
        outcome.final_accuracy() / pretrained.baseline_accuracy * 100.0,
        outcome.epochs_run()
    );
    Ok(())
}
