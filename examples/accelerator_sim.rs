//! Accelerator-model tour: fault maps, FAP masks, the bypass-equals-mask
//! identity, and the cycle/energy cost model at the paper's 256×256 scale.
//!
//! ```text
//! cargo run --release --example accelerator_sim
//! ```

use reduce_systolic::{
    fap_mask, pruned_fraction, quantized_gemm_nt, simulate_tiled_gemm, CostModel, FaultMap,
    FaultModel, QuantizedTensor, SystolicArray,
};
use reduce_tensor::{ops, Tensor};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // --- A paper-scale 256x256 chip with 2% faulty PEs -------------------
    let map = FaultMap::generate(256, 256, 0.02, FaultModel::Random, 1)?;
    println!("{map}");
    println!("{}", map.render_ascii(32));
    println!(
        "column 0 has {} faulty PEs; row 0 has {}",
        map.column_fault_count(0),
        map.row_fault_count(0)
    );

    // A VGG11 conv5 layer: (512, 512*3*3) GEMM weights.
    let frac = pruned_fraction(512, 4608, &map);
    println!(
        "VGG11 conv5 (512x4608) on this chip: {:.3}% of weights pruned by FAP\n",
        frac * 100.0
    );

    // --- Bypass == mask identity on a small array ------------------------
    let small = FaultMap::generate(8, 8, 0.2, FaultModel::Random, 2)?;
    let array = SystolicArray::new(small.clone());
    let w = Tensor::rand_uniform([16, 16], -1.0, 1.0, 3);
    let x = Tensor::rand_uniform([4, 16], -1.0, 1.0, 4);
    let bypass = array.gemm(&w, &x)?;
    let masked = ops::matmul_nt(&x, &(&w * &fap_mask(16, 16, &small)?)?)?;
    println!(
        "bypass-level emulation vs mask+dense GEMM agree: {}",
        bypass.approx_eq(&masked, 1e-4)
    );

    // --- Cycle-stepped dataflow simulation --------------------------------
    let flow = simulate_tiled_gemm(&w, &x, &small)?;
    println!(
        "register-accurate dataflow agrees too: {} ({} pipeline cycles for 4 tiles)",
        flow.outputs.approx_eq(&bypass, 1e-4),
        flow.cycles
    );

    // --- Int8 quantization (the array's native format) --------------------
    let wq = QuantizedTensor::quantize(&w)?;
    let xq = QuantizedTensor::quantize(&x)?;
    let qout = quantized_gemm_nt(&xq, &wq)?;
    let fout = ops::matmul_nt(&x, &w)?;
    let err = (&qout - &fout)?.map(f32::abs).max();
    println!(
        "\nint8 GEMM vs float GEMM: max |error| {err:.4} (scale {:.5})",
        wq.params().scale
    );
    let stuck = wq.with_stuck_codes(&small, 127)?;
    println!(
        "a stuck-at-127 weight register injects errors up to ±{:.3} — {}x the \
         rounding error — which is why FAP bypasses to the exactly-representable 0",
        127.0 * wq.params().scale,
        (127.0f32 / 0.5).round()
    );
    let _ = stuck;

    // --- Cost model -------------------------------------------------------
    let cm = CostModel::paper();
    // VGG11 on 32x32 inputs, batch 128: conv GEMMs (m = batch*positions).
    let layers: Vec<(usize, usize, usize)> = vec![
        (128 * 1024, 27, 64),
        (128 * 256, 576, 128),
        (128 * 64, 1152, 256),
        (128 * 64, 2304, 256),
        (128 * 16, 2304, 512),
        (128 * 16, 4608, 512),
        (128 * 4, 4608, 512),
        (128 * 4, 4608, 512),
        (128, 512, 4096),
        (128, 4096, 10),
    ];
    let fwd = cm.forward_cycles(&layers)?;
    let step = cm.training_step_cycles(&layers)?;
    println!(
        "\nVGG11 batch-128 on a 256x256 array @ {} MHz:",
        cm.frequency_mhz
    );
    println!(
        "  forward: {fwd} cycles ({:.3} ms)",
        cm.cycles_to_seconds(fwd) * 1e3
    );
    println!(
        "  train step: {step} cycles ({:.3} ms)",
        cm.cycles_to_seconds(step) * 1e3
    );
    let epoch = cm.epoch_cycles(&layers, 50_000, 128)?;
    println!(
        "  one CIFAR-10 epoch: {:.2} s -> why per-chip retraining epochs are the \
         overhead currency",
        cm.cycles_to_seconds(epoch)
    );
    let macs: u64 = layers.iter().map(|&(m, i, o)| cm.gemm_macs(m, i, o)).sum();
    println!(
        "  epoch energy (MACs only): {:.1} J",
        cm.macs_to_joules(3 * macs * (50_000f64 / 128.0).ceil() as u64)
    );
    Ok(())
}
