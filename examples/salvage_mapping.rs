//! FAP vs FAM (SalvageDNN-style fault-aware mapping): how much accuracy the
//! saliency-driven permutation saves *before* any retraining, across fault
//! rates.
//!
//! ```text
//! cargo run --release --example salvage_mapping
//! ```

use reduce_core::{FatRunner, Mitigation, StopRule, Workbench};
use reduce_systolic::{FaultMap, FaultModel};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let workbench = Workbench::toy(42);
    let (rows, cols) = workbench.array_dims();
    let pretrained = workbench.pretrain(15)?;
    println!(
        "baseline accuracy {:.2}%\n",
        pretrained.baseline_accuracy * 100.0
    );
    let runner = FatRunner::new(workbench)?;

    println!("rate     FAP acc   FAM acc   (mean over 5 maps, no retraining)");
    for rate in [0.05, 0.10, 0.15, 0.20, 0.30] {
        let mut fap_acc = 0.0f32;
        let mut fam_acc = 0.0f32;
        let repeats = 5;
        for seed in 0..repeats {
            let map = FaultMap::generate(rows, cols, rate, FaultModel::Random, seed)?;
            fap_acc += runner
                .run(&pretrained, &map, 0, StopRule::Exact, Mitigation::Fap, 0)?
                .pre_retrain_accuracy;
            fam_acc += runner
                .run(&pretrained, &map, 0, StopRule::Exact, Mitigation::Fam, 0)?
                .pre_retrain_accuracy;
        }
        println!(
            "{:.2}   {:>7.2}%  {:>7.2}%",
            rate,
            fap_acc / repeats as f32 * 100.0,
            fam_acc / repeats as f32 * 100.0
        );
    }
    println!("\nFAM maps the least-salient weights onto faulty columns, so it");
    println!("typically starts FAT from a higher accuracy — reducing the epochs");
    println!("needed to reach the constraint (mitigation ablation A4).");
    Ok(())
}
