//! Int8 deployment of a fault-aware-retrained model.
//!
//! The accelerator executes int8 weights, so the artifact Reduce actually
//! ships to a chip is the *quantised* FAT result. This example walks the
//! whole path: float baseline → int8 baseline → unprotected stuck-code
//! faults (catastrophic) → FAP+T → int8 re-deployment, checking the
//! accuracy constraint at every step.
//!
//! ```text
//! cargo run --release --example quantized_deployment
//! ```

use reduce_core::{FatRunner, Mitigation, StopRule, Workbench};
use reduce_nn::layers::Mode;
use reduce_systolic::{FaultMap, FaultModel, QuantizedTensor};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let workbench = Workbench::toy(9);
    let (rows, cols) = workbench.array_dims();
    let constraint = 0.90f32;
    let pretrained = workbench.pretrain(15)?;
    println!(
        "float baseline: {:.2}%",
        pretrained.baseline_accuracy * 100.0
    );

    let runner = FatRunner::new(workbench)?;

    // --- Quantise the clean model's GEMM weights to int8 -----------------
    type State = Vec<(String, reduce_tensor::Tensor)>;
    let quantize_weights =
        |state: &[(String, reduce_tensor::Tensor)]| -> Result<State, Box<dyn Error>> {
            let mut quantized = state.to_vec();
            for (_, tensor) in quantized.iter_mut().filter(|(_, t)| t.rank() == 2) {
                *tensor = QuantizedTensor::quantize(tensor)?.dequantize()?;
            }
            Ok(quantized)
        };
    let evaluate_state =
        |state: &[(String, reduce_tensor::Tensor)]| -> Result<f32, Box<dyn Error>> {
            let mut model = runner.workbench().model.build(runner.workbench().seed)?;
            model.load_state_dict(state)?;
            let test = runner.test_data();
            let logits = model.forward(test.features(), Mode::Eval)?;
            Ok(reduce_nn::accuracy(&logits, test.labels())?)
        };

    let int8_clean = evaluate_state(&quantize_weights(&pretrained.state)?)?;
    println!(
        "int8 baseline:  {:.2}%  (quantisation is nearly free)",
        int8_clean * 100.0
    );

    // --- A faulty chip -----------------------------------------------------
    let map = FaultMap::generate(rows, cols, 0.2, FaultModel::Random, 5)?;
    println!("\nchip: {map}");
    let unprotected = runner.unprotected_accuracy(&pretrained, &map, 6.0)?;
    println!(
        "unprotected (stuck-at-saturated weights): {:.2}%",
        unprotected * 100.0
    );

    // --- FAP + retraining --------------------------------------------------
    let outcome = runner.run(
        &pretrained,
        &map,
        8,
        StopRule::AtAccuracy(constraint),
        Mitigation::Fap,
        0,
    )?;
    println!(
        "FAP only: {:.2}%  →  FAP+T after {} epoch(s): {:.2}%",
        outcome.pre_retrain_accuracy * 100.0,
        outcome.epochs_run(),
        outcome.final_accuracy() * 100.0
    );

    // --- Re-quantise the retrained weights for shipment --------------------
    let shipped = quantize_weights(&outcome.final_state)?;
    let int8_faulty = evaluate_state(&shipped)?;
    println!(
        "shipped int8 FAT model: {:.2}%  (constraint {:.0}%: {})",
        int8_faulty * 100.0,
        constraint * 100.0,
        if int8_faulty >= constraint {
            "met"
        } else {
            "NOT met"
        }
    );
    println!(
        "\nnote: quantising after FAT preserves the masks — pruned weights are\n\
         exactly 0.0, which int8 code 0 represents exactly."
    );
    Ok(())
}
