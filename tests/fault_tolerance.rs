//! Fault-tolerance integration tests: job-level failure containment,
//! deterministic retry, checkpoint/resume and the chaos harness.
//!
//! The invariants exercised here are the PR's acceptance criteria:
//!
//! * a fleet with failures injected on `k` of `N` chips reports exactly
//!   `N − k` Ok and `k` Quarantined chips, identically at 1/2/8 threads;
//! * an interrupted characterisation resumed from its journal produces an
//!   analysis and a redacted run log byte-identical to an uninterrupted
//!   run's;
//! * retried jobs re-derive their seeds deterministically, so chaotic runs
//!   are exactly reproducible.

use reduce_repro::core::exec::ChaosPolicy;
use reduce_repro::core::telemetry::{Observer, RunLog};
use reduce_repro::core::{
    Checkpoint, ChipStatus, ExecConfig, FatRunner, FleetEvaluation, Mitigation, ResilienceAnalysis,
    ResilienceConfig, RetrainPolicy, Workbench,
};
use reduce_repro::systolic::{generate_fleet, Chip, FaultModel, FleetConfig, RateDistribution};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A shared in-memory `Write` target so tests can read back a `RunLog`.
#[derive(Clone, Default)]
struct VecSink(Arc<Mutex<Vec<u8>>>);

impl VecSink {
    fn contents(&self) -> String {
        let bytes = self.0.lock().expect("no poisoning").clone();
        String::from_utf8(bytes).expect("valid UTF-8")
    }
}

impl Write for VecSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("no poisoning").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn grid_config() -> ResilienceConfig {
    ResilienceConfig {
        fault_rates: vec![0.0, 0.1, 0.2],
        max_epochs: 4,
        repeats: 2,
        constraint: 0.88,
        fault_model: FaultModel::Random,
        strategy: Mitigation::Fap,
        seed: 11,
    }
}

fn toy_fleet(chips: usize) -> Vec<Chip> {
    generate_fleet(&FleetConfig {
        chips,
        rows: 8,
        cols: 8,
        rates: RateDistribution::Uniform { lo: 0.0, hi: 0.2 },
        model: FaultModel::Random,
        seed: 9,
    })
    .expect("valid fleet")
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("reduce_ft_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The headline acceptance criterion: k injected chip failures out of N
/// quarantine exactly those k chips — never their siblings, never the whole
/// fleet — with a report identical at every thread count.
#[test]
fn fleet_quarantine_is_exact_and_thread_invariant() {
    let wb = Workbench::toy(701);
    let pre = wb.pretrain(10).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let fleet = toy_fleet(6);
    let evaluate = |exec: &ExecConfig| {
        FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
            .source(&fleet)
            .collect_outcomes(true)
            .exec(exec)
            .run(&runner, &pre)
            .expect("contained failures are not fatal")
    };

    let baseline = evaluate(&ExecConfig::default());
    assert_eq!(baseline.evaluated, 6);
    assert!(baseline.quarantined.is_empty());

    // Chips 1 and 4 fail on every attempt; the retry budget cannot save
    // them, so they must be quarantined — and only them.
    let chaos = ChaosPolicy::fail_jobs(&[1, 4]);
    let reference = evaluate(
        &ExecConfig::new(1)
            .with_retry_budget(1)
            .with_chaos(chaos.clone()),
    );
    assert_eq!(reference.evaluated, 4, "N - k chips retrained");
    assert_eq!(reference.quarantined.len(), 2, "k chips quarantined");
    let quarantined_ids: Vec<usize> = reference.quarantined.iter().map(|q| q.chip_id).collect();
    assert_eq!(quarantined_ids, vec![1, 4]);
    for q in &reference.quarantined {
        assert_eq!(q.attempts, 2, "initial attempt + 1 retry");
        assert!(!q.error.is_empty());
    }
    assert_eq!(
        reference.status_counts(),
        [(ChipStatus::Ok, 4), (ChipStatus::Quarantined, 2)]
    );
    // Quarantined chips never perturb their siblings: the surviving chips
    // are bit-identical to the chaos-free baseline.
    let baseline_outcomes = baseline.outcomes.as_deref().expect("collected");
    let reference_outcomes = reference.outcomes.as_deref().expect("collected");
    assert_eq!(reference_outcomes.len(), 4);
    for chip in reference_outcomes {
        let clean = baseline_outcomes
            .iter()
            .find(|c| c.chip_id == chip.chip_id)
            .expect("present in baseline");
        assert_eq!(
            chip, clean,
            "chip {} perturbed by sibling failure",
            chip.chip_id
        );
    }
    for threads in [2usize, 8] {
        let par = evaluate(
            &ExecConfig::new(threads)
                .with_retry_budget(1)
                .with_chaos(chaos.clone()),
        );
        assert_eq!(par, reference, "{threads}-thread report differs");
    }
}

/// First-attempt chaos failures are healed by the retry budget with a
/// deterministically derived retry seed: the run succeeds completely and
/// reproduces exactly.
#[test]
fn retries_recover_deterministically() {
    let wb = Workbench::toy(702);
    let pre = wb.pretrain(10).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    // Jobs 0 and 3 fail on their first attempt only.
    let chaos = ChaosPolicy::fail_at(&[(0, 0), (3, 0)]);
    let run = |threads: usize| {
        ResilienceAnalysis::run_resumable(
            &runner,
            &pre,
            grid_config(),
            &ExecConfig::new(threads)
                .with_retry_budget(2)
                .with_chaos(chaos.clone()),
            None,
        )
        .expect("retries absorb first-attempt failures")
    };
    let reference = run(1);
    assert_eq!(reference.points().len(), 6, "3 rates x 2 repeats");
    assert!(reference.failures().is_empty(), "no quarantine needed");
    for threads in [2usize, 8] {
        let par = run(threads);
        assert_eq!(par.points(), reference.points());
        assert_eq!(par.summaries(), reference.summaries());
    }
    // A retried cell reruns under a salted seed, so it may legitimately
    // differ from a chaos-free run — but untouched cells must not.
    let clean = ResilienceAnalysis::run_resumable(
        &runner,
        &pre,
        grid_config(),
        &ExecConfig::default(),
        None,
    )
    .expect("clean run");
    for (p, c) in reference.points().iter().zip(clean.points()) {
        let job = (p.rate_index * 2 + p.repeat) as u64;
        if ![0u64, 3].contains(&job) {
            assert_eq!(p, c, "untouched cell {job} perturbed by sibling retries");
        }
    }
}

/// Exhausting the budget on grid cells quarantines the cell (recorded with
/// its cause) without failing the analysis or perturbing the other cells.
#[test]
fn grid_quarantine_excludes_only_the_failed_cells() {
    let wb = Workbench::toy(703);
    let pre = wb.pretrain(10).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let clean =
        ResilienceAnalysis::run_resumable(&runner, &pre, grid_config(), &ExecConfig::new(2), None)
            .expect("clean run");
    let chaos = ChaosPolicy::fail_jobs(&[2]); // rate index 1, repeat 0
    let analysis = ResilienceAnalysis::run_resumable(
        &runner,
        &pre,
        grid_config(),
        &ExecConfig::new(2).with_retry_budget(1).with_chaos(chaos),
        None,
    )
    .expect("contained failure is not fatal");
    assert_eq!(analysis.points().len(), 5);
    assert_eq!(analysis.failures().len(), 1);
    let failed = &analysis.failures()[0];
    assert_eq!((failed.rate_index, failed.repeat), (1, 0));
    assert_eq!(failed.attempts, 2);
    assert!(
        failed.error.contains("chaos"),
        "cause recorded: {}",
        failed.error
    );
    let summaries = analysis.summaries();
    assert_eq!(summaries[1].quarantined, 1);
    assert_eq!(summaries[0].quarantined, 0);
    for p in analysis.points() {
        let clean_point = clean
            .points()
            .iter()
            .find(|c| (c.rate_index, c.repeat) == (p.rate_index, p.repeat))
            .expect("present in clean run");
        assert_eq!(p, clean_point, "surviving cell perturbed");
    }
}

/// Runs a journaled, redacted characterisation and returns the analysis,
/// the run-log bytes, and the journal record count.
fn journaled_run(
    runner: &FatRunner,
    pre: &reduce_repro::core::Pretrained,
    checkpoint: &Checkpoint,
    threads: usize,
) -> (ResilienceAnalysis, String, usize) {
    let sink = VecSink::default();
    let log: Arc<dyn Observer> = Arc::new(RunLog::new(Box::new(sink.clone()), true));
    let exec = ExecConfig::new(threads).with_observer(log);
    let analysis =
        ResilienceAnalysis::run_resumable(runner, pre, grid_config(), &exec, Some(checkpoint))
            .expect("characterisation runs");
    let records = checkpoint.records().expect("journal readable").len();
    (analysis, sink.contents(), records)
}

/// The resume acceptance criterion: interrupt a journaled run mid-grid,
/// resume from the journal, and get artifacts byte-identical to an
/// uninterrupted run — even across different thread counts.
#[test]
fn interrupted_run_resumes_to_identical_artifacts() {
    let wb = Workbench::toy(704);
    let pre = wb.pretrain(10).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let dir = scratch_dir("resume");

    // Uninterrupted reference, single-threaded.
    let full_path = dir.join("full/journal.jsonl");
    let full_cp = Checkpoint::create(&full_path);
    let (reference, reference_log, reference_records) = journaled_run(&runner, &pre, &full_cp, 1);
    assert_eq!(reference_records, 6, "every grid cell journaled");

    // "Interrupted" run: complete it, then rebuild a 3-record prefix of
    // its journal in a sibling directory — exactly the state a killed
    // process leaves behind (appends are atomic, so a crash always leaves
    // a valid record prefix, whatever the on-disk layout).
    let cut_cp = Checkpoint::create(&dir.join("scratch/journal.jsonl"));
    let _ = journaled_run(&runner, &pre, &cut_cp, 4);
    let completed = cut_cp.records().expect("journal readable");
    let cut_path = dir.join("cut/journal.jsonl");
    let prefix_cp = Checkpoint::create(&cut_path);
    for record in completed.into_iter().take(3) {
        prefix_cp.append(record).expect("prefix journal writable");
    }

    // Resume at a different thread count: replays the 3 journaled cells,
    // computes the 3 missing ones.
    let resumed_cp = Checkpoint::resume(&cut_path).expect("valid prefix journal");
    assert_eq!(resumed_cp.records().expect("readable").len(), 3);
    let (resumed, resumed_log, resumed_records) = journaled_run(&runner, &pre, &resumed_cp, 4);

    assert_eq!(resumed.points(), reference.points());
    assert_eq!(resumed.summaries(), reference.summaries());
    assert_eq!(resumed.table(), reference.table());
    assert_eq!(resumed_records, 6, "journal completed on resume");
    assert_eq!(
        resumed_log, reference_log,
        "resumed redacted run log differs from uninterrupted"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// Fleet kill-and-resume across a shard boundary: with 2-record shards a
/// 3-record prefix spans one sealed shard plus a partial one; resuming
/// from it at a different thread count reproduces the report and the
/// redacted run log byte-for-byte.
#[test]
fn fleet_resume_crosses_shard_boundaries() {
    let wb = Workbench::toy(706);
    let pre = wb.pretrain(10).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let fleet = toy_fleet(6);
    let dir = scratch_dir("fleet_shards");

    let run = |cp: &Checkpoint, threads: usize| {
        let sink = VecSink::default();
        let log: Arc<dyn Observer> = Arc::new(RunLog::new(Box::new(sink.clone()), true));
        let exec = ExecConfig::new(threads).with_observer(log);
        let report = FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
            .source(&fleet)
            .batch_cap(1) // one chip per batch: 6 journal records
            .journal(cp)
            .exec(&exec)
            .run(&runner, &pre)
            .expect("fleet runs");
        (report, sink.contents())
    };

    // Uninterrupted reference: 6 records in 2-record shards.
    let full_cp = Checkpoint::create(&dir.join("full/journal.jsonl")).with_shard_records(2);
    let (reference, reference_log) = run(&full_cp, 1);
    let completed = full_cp.records().expect("journal readable");
    assert_eq!(completed.len(), 6, "every batch journaled");

    // Interrupt mid-shard: a 3-record prefix = shard 0 sealed + shard 1
    // partial.
    let cut_path = dir.join("cut/journal.jsonl");
    let prefix_cp = Checkpoint::create(&cut_path).with_shard_records(2);
    for record in completed.into_iter().take(3) {
        prefix_cp.append(record).expect("prefix journal writable");
    }
    assert!(dir.join("cut/journal-00000.jsonl").exists());
    assert!(dir.join("cut/journal-00001.jsonl").exists());

    let resumed_cp = Checkpoint::resume(&cut_path).expect("valid prefix journal");
    assert_eq!(resumed_cp.records().expect("readable").len(), 3);
    let (resumed, resumed_log) = run(&resumed_cp, 8);
    assert_eq!(resumed, reference, "resumed report differs");
    assert_eq!(
        resumed_log, reference_log,
        "resumed redacted run log differs from uninterrupted"
    );
    assert_eq!(resumed_cp.records().expect("readable").len(), 6);
    let _ = std::fs::remove_dir_all(dir);
}

/// Chaos + journal + resume compose: quarantined cells are journaled as
/// failures and replayed as failures, not retried forever.
#[test]
fn quarantined_cells_resume_as_quarantined() {
    let wb = Workbench::toy(705);
    let pre = wb.pretrain(10).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let dir = scratch_dir("chaos_resume");
    let path = dir.join("journal.jsonl");

    let chaos = ChaosPolicy::fail_jobs(&[5]);
    let cp = Checkpoint::create(&path);
    let exec = ExecConfig::new(2).with_retry_budget(1).with_chaos(chaos);
    let first = ResilienceAnalysis::run_resumable(&runner, &pre, grid_config(), &exec, Some(&cp))
        .expect("contained failure");
    assert_eq!(first.failures().len(), 1);

    // Resume with NO chaos policy: the journaled quarantine replays as-is
    // (the journal is the record of what happened, not a retry queue).
    let resumed_cp = Checkpoint::resume(&path).expect("valid journal");
    assert_eq!(resumed_cp.records().expect("readable").len(), 6);
    let resumed = ResilienceAnalysis::run_resumable(
        &runner,
        &pre,
        grid_config(),
        &ExecConfig::new(2),
        Some(&resumed_cp),
    )
    .expect("pure replay");
    assert_eq!(resumed.points(), first.points());
    assert_eq!(resumed.failures(), first.failures());
    let _ = std::fs::remove_dir_all(dir);
}
