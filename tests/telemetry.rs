//! Integration tests for the telemetry subsystem: run-log event sequences
//! must be byte-identical across thread counts (after timing redaction),
//! the `NullObserver` path must produce reports identical to unobserved
//! runs, and manifests must round-trip through disk.

use reduce_repro::core::telemetry::{
    FleetManifest, GridManifest, MetricsRecorder, Observer, RunLog, RunManifest,
};
use reduce_repro::core::{
    ExecConfig, FatRunner, FleetEvaluation, Mitigation, ResilienceAnalysis, ResilienceConfig,
    RetrainPolicy, Workbench,
};
use reduce_repro::systolic::{generate_fleet, FaultModel, FleetConfig, RateDistribution};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A shared in-memory `Write` target so the test can read back what a
/// `RunLog` wrote.
#[derive(Clone, Default)]
struct VecSink(Arc<Mutex<Vec<u8>>>);

impl VecSink {
    fn contents(&self) -> String {
        let bytes = self.0.lock().expect("no poisoning").clone();
        String::from_utf8(bytes).expect("valid UTF-8")
    }
}

impl Write for VecSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("no poisoning").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn grid_config() -> ResilienceConfig {
    ResilienceConfig::builder()
        .fault_rates(vec![0.0, 0.1, 0.2])
        .max_epochs(4)
        .repeats(2)
        .constraint(0.88)
        .fault_model(FaultModel::Random)
        .strategy(Mitigation::Fap)
        .seed(11)
        .build()
        .expect("valid preset")
}

fn toy_fleet() -> Vec<reduce_repro::systolic::Chip> {
    generate_fleet(&FleetConfig {
        chips: 4,
        rows: 8,
        cols: 8,
        rates: RateDistribution::Uniform { lo: 0.0, hi: 0.2 },
        model: FaultModel::Random,
        seed: 9,
    })
    .expect("valid fleet")
}

/// Runs characterisation + fleet evaluation with a redacted `RunLog`
/// attached and returns the log text.
fn logged_run(threads: usize) -> String {
    let wb = Workbench::toy(601);
    let pre = wb.pretrain(8).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let sink = VecSink::default();
    let log: Arc<dyn Observer> = Arc::new(RunLog::new(Box::new(sink.clone()), true));
    let exec = ExecConfig::new(threads).with_observer(log);
    ResilienceAnalysis::run(&runner, &pre, grid_config(), &exec).expect("characterisation runs");
    let fleet = toy_fleet();
    FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
        .source(&fleet)
        .exec(&exec)
        .run(&runner, &pre)
        .expect("valid run");
    sink.contents()
}

#[test]
fn redacted_run_logs_are_byte_identical_across_thread_counts() {
    let reference = logged_run(1);
    assert!(!reference.is_empty());
    // Sanity: the log carries every event class the pipeline emits.
    for needle in [
        "\"stage_started\"",
        "\"stage_finished\"",
        "\"epoch_completed\"",
        "\"point_finished\"",
        "\"chip_retrained\"",
    ] {
        assert!(reference.contains(needle), "log missing {needle}");
    }
    // Redaction nulls the only wall-clock field.
    assert!(reference.contains("\"seconds\":null"));
    for threads in [2usize, 8] {
        assert_eq!(
            logged_run(threads),
            reference,
            "{threads}-thread run log differs from 1-thread"
        );
    }
}

#[test]
fn observed_and_unobserved_runs_produce_identical_reports() {
    let wb = Workbench::toy(602);
    let pre = wb.pretrain(8).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let fleet = toy_fleet();
    let evaluate = |exec: &ExecConfig| {
        FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
            .source(&fleet)
            .exec(exec)
            .run(&runner, &pre)
            .expect("valid run")
    };

    // Default ExecConfig: the zero-cost NullObserver.
    let plain_exec = ExecConfig::default();
    let plain_analysis = ResilienceAnalysis::run(&runner, &pre, grid_config(), &plain_exec)
        .expect("characterisation runs");
    let plain_report = evaluate(&plain_exec);

    // Fully instrumented run.
    let metrics = Arc::new(MetricsRecorder::new());
    let observed_exec = ExecConfig::new(2).with_observer(metrics.clone());
    let observed_analysis = ResilienceAnalysis::run(&runner, &pre, grid_config(), &observed_exec)
        .expect("characterisation runs");
    let observed_report = evaluate(&observed_exec);

    assert_eq!(plain_analysis.points(), observed_analysis.points());
    assert_eq!(plain_analysis.table(), observed_analysis.table());
    assert_eq!(plain_report, observed_report);

    // And the recorder actually saw the work happen.
    let snap = metrics.snapshot();
    assert_eq!(snap.points_finished, 6, "3 rates x 2 repeats");
    assert_eq!(snap.chips_retrained, fleet.len());
    assert!(snap.epochs_completed > 0);
    assert!(metrics.render().contains("chips retrained"));
}

#[test]
fn manifest_round_trips_through_disk() {
    let grid = grid_config();
    let fleet_config = FleetConfig {
        chips: 4,
        rows: 8,
        cols: 8,
        rates: RateDistribution::Uniform { lo: 0.0, hi: 0.2 },
        model: FaultModel::Random,
        seed: 9,
    };
    let mut manifest = RunManifest::new("telemetry-test", "smoke");
    manifest.threads = Some(2);
    manifest.constraint = 0.88;
    manifest.workbench = "toy".to_string();
    manifest.grid = Some(GridManifest::from_config(&grid));
    manifest.policies = vec!["fixed:2".to_string()];
    manifest.fleet = Some(FleetManifest::from_config(&fleet_config));

    let dir = std::env::temp_dir().join("reduce_telemetry_manifest_test");
    let path = dir.join("manifest.json");
    manifest.save(&path).expect("temp dir writable");
    let loaded = RunManifest::load(&path).expect("just written");
    assert_eq!(loaded, manifest);
    assert_eq!(loaded.grid.as_ref().map(|g| g.fault_rates.len()), Some(3));
    assert_eq!(loaded.fleet.as_ref().map(|f| f.chips), Some(4));
    // A redacted manifest drops only the thread count.
    let mut redacted = manifest.clone();
    redacted.threads = None;
    assert_ne!(redacted.to_json(), manifest.to_json());
    assert_eq!(
        RunManifest::from_json(&redacted.to_json()).expect("parses"),
        redacted
    );
    let _ = std::fs::remove_dir_all(dir);
}
