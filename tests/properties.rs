//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary fault maps, layer shapes and policies — and, for the fault
//! tolerance layer, for arbitrary chaos policies.

use proptest::prelude::*;
use reduce_repro::core::exec::{ChaosOutcome, ChaosPolicy};
use reduce_repro::core::{
    ChipSource, ExecConfig, FatRunner, FleetEvaluation, Mitigation, Pretrained, ResilienceAnalysis,
    ResilienceConfig, ResilienceTable, RetrainPolicy, SeededChips, Statistic, TableEntry,
    Workbench,
};
use reduce_repro::systolic::{
    affected_weights, fam_mapping, fap_mask, generate_fleet, pruned_fraction, saliency_loss,
    FaultMap, FaultModel, FleetConfig, RateDistribution, SystolicArray,
};
use reduce_repro::tensor::{ops, Tensor};
use std::sync::OnceLock;

/// A 2-rate × 2-repeat grid small enough to characterise once per proptest
/// case.
fn chaos_grid() -> ResilienceConfig {
    ResilienceConfig {
        fault_rates: vec![0.0, 0.15],
        max_epochs: 3,
        repeats: 2,
        constraint: 0.88,
        fault_model: FaultModel::Random,
        strategy: Mitigation::Fap,
        seed: 17,
    }
}

/// Shared fixture for the chaos property: pretrain and characterise the
/// chaos-free reference once, not once per generated case.
fn chaos_fixture() -> (
    &'static FatRunner,
    &'static Pretrained,
    &'static ResilienceAnalysis,
) {
    static FIXTURE: OnceLock<(FatRunner, Pretrained, ResilienceAnalysis)> = OnceLock::new();
    let (runner, pre, clean) = FIXTURE.get_or_init(|| {
        let wb = Workbench::toy(801);
        let pre = wb.pretrain(8).expect("valid workbench");
        let runner = FatRunner::new(wb).expect("valid workbench");
        let clean = ResilienceAnalysis::run_resumable(
            &runner,
            &pre,
            chaos_grid(),
            &ExecConfig::default(),
            None,
        )
        .expect("clean run");
        (runner, pre, clean)
    });
    (runner, pre, clean)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The FAP mask equals the bypass emulation for any geometry and rate.
    #[test]
    fn mask_equals_bypass(
        rows in 2usize..10,
        cols in 2usize..10,
        out_dim in 1usize..24,
        in_dim in 1usize..24,
        rate in 0.0f64..0.5,
        seed in 0u64..500,
    ) {
        let map = FaultMap::generate(rows, cols, rate, FaultModel::Random, seed)
            .expect("valid rate");
        let array = SystolicArray::new(map.clone());
        let w = Tensor::rand_uniform([out_dim, in_dim], -1.0, 1.0, seed + 1);
        let x = Tensor::rand_uniform([3, in_dim], -1.0, 1.0, seed + 2);
        let hw = array.gemm(&w, &x).expect("conformable");
        let mask = fap_mask(out_dim, in_dim, &map).expect("nonzero dims");
        let sw = ops::matmul_nt(&x, &(&w * &mask).expect("same shape")).expect("conformable");
        prop_assert!(hw.approx_eq(&sw, 1e-3));
    }

    /// The closed-form pruned count always matches the materialised mask.
    #[test]
    fn affected_weights_matches_mask(
        rows in 2usize..12,
        cols in 2usize..12,
        out_dim in 1usize..40,
        in_dim in 1usize..40,
        rate in 0.0f64..0.6,
        seed in 0u64..500,
    ) {
        let map = FaultMap::generate(rows, cols, rate, FaultModel::Random, seed)
            .expect("valid rate");
        let mask = fap_mask(out_dim, in_dim, &map).expect("nonzero dims");
        let zeros = mask.data().iter().filter(|&&v| v == 0.0).count();
        prop_assert_eq!(affected_weights(out_dim, in_dim, &map), zeros);
        let frac = pruned_fraction(out_dim, in_dim, &map);
        prop_assert!((frac - zeros as f64 / (out_dim * in_dim) as f64).abs() < 1e-12);
    }

    /// FAM never loses more saliency than FAP and is always a permutation.
    #[test]
    fn fam_dominates_fap_in_saliency(
        rows in 2usize..8,
        cols in 2usize..8,
        out_dim in 2usize..16,
        in_dim in 2usize..16,
        rate in 0.0f64..0.4,
        seed in 0u64..300,
    ) {
        let map = FaultMap::generate(rows, cols, rate, FaultModel::Random, seed)
            .expect("valid rate");
        let w = Tensor::rand_uniform([out_dim, in_dim], -1.0, 1.0, seed + 9);
        let fap = fap_mask(out_dim, in_dim, &map).expect("nonzero dims");
        let fam = fam_mapping(&w, &map).expect("matrix");
        let fap_loss = saliency_loss(&w, &fap).expect("same shape");
        let fam_loss = saliency_loss(&w, &fam.mask).expect("same shape");
        prop_assert!(fam_loss <= fap_loss + 1e-4,
            "FAM loss {} exceeds FAP loss {}", fam_loss, fap_loss);
        let mut seen = vec![false; out_dim];
        for &p in &fam.position_of {
            prop_assert!(p < out_dim && !seen[p]);
            seen[p] = true;
        }
    }

    /// Fault-map generation hits the requested count exactly and is within
    /// the geometry.
    #[test]
    fn fault_map_counts(
        rows in 1usize..40,
        cols in 1usize..40,
        rate in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let map = FaultMap::generate(rows, cols, rate, FaultModel::Random, seed)
            .expect("valid rate");
        let expected = (rate * (rows * cols) as f64).round() as usize;
        prop_assert_eq!(map.faulty_count(), expected);
        for (r, c) in map.faulty_coords() {
            prop_assert!(r < rows && c < cols);
        }
    }

    /// Table interpolation is monotone between grid points when the grid
    /// statistic is monotone, and never undershoots the bracketing minimum.
    #[test]
    fn interpolation_brackets(
        e0 in 0usize..8,
        delta in 0usize..8,
        probe in 0.0f64..1.0,
    ) {
        let table = ResilienceTable::from_entries(vec![
            TableEntry { rate: 0.0, mean_epochs: e0 as f64, max_epochs: e0 },
            TableEntry { rate: 0.5, mean_epochs: (e0 + delta) as f64, max_epochs: e0 + delta },
        ], 32).expect("non-empty");
        let rate = probe * 0.5;
        let sel = table.epochs_for(rate, Statistic::Max).expect("valid rate");
        prop_assert!(sel.epochs >= e0);
        prop_assert!(sel.epochs <= e0 + delta);
    }

    /// Selections never exceed the table's epoch cap, for any statistic —
    /// in particular a margined mean must clamp to what the
    /// characterisation actually measured.
    #[test]
    fn selection_never_exceeds_epoch_cap(
        e0 in 0usize..40,
        e1 in 0usize..40,
        e2 in 0usize..40,
        cap in 1usize..24,
        margin in 0.0f64..64.0,
        probe in 0.0f64..1.0,
    ) {
        let entry = |rate: f64, e: usize| TableEntry {
            rate,
            mean_epochs: e as f64,
            max_epochs: e,
        };
        let table = ResilienceTable::from_entries(
            vec![entry(0.0, e0), entry(0.3, e1), entry(0.6, e2)],
            cap,
        ).expect("non-empty");
        for stat in [Statistic::Max, Statistic::Mean, Statistic::MeanPlusMargin(margin)] {
            let sel = table.epochs_for(probe, stat).expect("valid rate");
            prop_assert!(
                sel.epochs <= cap,
                "{:?} selected {} epochs beyond the cap {}", stat, sel.epochs, cap
            );
        }
    }

    /// For a monotone table, the selected epochs are monotone in the fault
    /// rate under every statistic.
    #[test]
    fn selection_monotone_in_rate_for_monotone_tables(
        e0 in 0usize..10,
        d1 in 0usize..10,
        d2 in 0usize..10,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        margin in 0.0f64..8.0,
    ) {
        let entry = |rate: f64, e: usize| TableEntry {
            rate,
            mean_epochs: e as f64,
            max_epochs: e,
        };
        let table = ResilienceTable::from_entries(
            vec![entry(0.0, e0), entry(0.25, e0 + d1), entry(0.5, e0 + d1 + d2)],
            64,
        ).expect("non-empty");
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for stat in [Statistic::Max, Statistic::Mean, Statistic::MeanPlusMargin(margin)] {
            let s_lo = table.epochs_for(lo, stat).expect("valid rate");
            let s_hi = table.epochs_for(hi, stat).expect("valid rate");
            prop_assert!(
                s_lo.epochs <= s_hi.epochs,
                "{:?} not monotone: {} @ {} > {} @ {}", stat, s_lo.epochs, lo, s_hi.epochs, hi
            );
        }
    }

    /// Any seeded chaos policy yields input-order-stable, thread-invariant
    /// analyses, and quarantined cells never perturb their siblings.
    #[test]
    fn chaos_is_thread_invariant_and_contained(
        chaos_seed in 0u64..1000,
        fail_rate in 0.0f64..0.9,
        budget in 0u32..3,
    ) {
        let (runner, pre, clean) = chaos_fixture();
        let chaos = ChaosPolicy::seeded(chaos_seed, fail_rate);
        let run = |threads: usize| {
            ResilienceAnalysis::run_resumable(
                runner,
                pre,
                chaos_grid(),
                &ExecConfig::new(threads)
                    .with_retry_budget(budget)
                    .with_chaos(chaos.clone()),
                None,
            )
            .expect("contained failures are never fatal")
        };
        let reference = run(1);
        // Every grid cell is accounted for exactly once, in input order.
        prop_assert_eq!(reference.points().len() + reference.failures().len(), 4);
        let mut keys: Vec<(usize, usize)> = reference
            .points()
            .iter()
            .map(|p| (p.rate_index, p.repeat))
            .chain(reference.failures().iter().map(|f| (f.rate_index, f.repeat)))
            .collect();
        keys.sort_unstable();
        prop_assert_eq!(keys, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        // Thread-count invariance of both outcomes and quarantine records.
        for threads in [2usize, 4] {
            let par = run(threads);
            prop_assert_eq!(par.points(), reference.points());
            prop_assert_eq!(par.failures(), reference.failures());
            prop_assert_eq!(par.summaries(), reference.summaries());
        }
        // A cell whose first attempt passed ran with salt 0 — bit-identical
        // to the chaos-free run, no matter what happened to its siblings.
        for p in reference.points() {
            let job = (p.rate_index * 2 + p.repeat) as u64;
            if matches!(chaos.decide(job, 0), ChaosOutcome::Pass) {
                let clean_point = clean
                    .points()
                    .iter()
                    .find(|c| (c.rate_index, c.repeat) == (p.rate_index, p.repeat))
                    .expect("clean run covers the grid");
                prop_assert_eq!(p, clean_point, "untouched cell perturbed by sibling chaos");
            }
        }
        // Quarantined cells are exactly those the policy fails on every
        // attempt within the budget.
        for f in reference.failures() {
            let job = (f.rate_index * 2 + f.repeat) as u64;
            prop_assert_eq!(f.attempts, budget + 1);
            for attempt in 0..=budget {
                prop_assert!(
                    !matches!(chaos.decide(job, attempt), ChaosOutcome::Pass),
                    "cell {} quarantined despite a passing attempt {}", job, attempt
                );
            }
        }
    }

    /// Streaming chips from a seeded source yields a report identical to
    /// materialising the fleet first — for any small fleet and any
    /// window/batch partitioning of the scheduler.
    #[test]
    fn streaming_equals_materialised_fleets(
        chips in 1usize..5,
        hi in 0.05f64..0.3,
        seed in 0u64..200,
        window in 1usize..6,
        batch_cap in 1usize..4,
    ) {
        let (runner, pre, _) = chaos_fixture();
        let config = FleetConfig {
            chips,
            rows: 8,
            cols: 8,
            rates: RateDistribution::Uniform { lo: 0.0, hi },
            model: FaultModel::Random,
            seed,
        };
        let evaluate = |source: &dyn ChipSource| {
            FleetEvaluation::new(RetrainPolicy::Fixed(1), 0.85)
                .source(source)
                .window(window)
                .batch_cap(batch_cap)
                .collect_outcomes(true)
                .run(runner, pre)
                .expect("valid run")
        };
        let materialised = generate_fleet(&config).expect("valid fleet");
        let streamed = SeededChips::new(config);
        prop_assert_eq!(evaluate(&materialised), evaluate(&streamed));
    }

    /// Union of fault maps is commutative and only grows the fault count.
    #[test]
    fn union_properties(
        rate_a in 0.0f64..0.3,
        rate_b in 0.0f64..0.3,
        seed in 0u64..200,
    ) {
        let a = FaultMap::generate(12, 12, rate_a, FaultModel::Random, seed).expect("valid");
        let b = FaultMap::generate(12, 12, rate_b, FaultModel::Random, seed + 1).expect("valid");
        let ab = a.union(&b).expect("same geometry");
        let ba = b.union(&a).expect("same geometry");
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.faulty_count() >= a.faulty_count().max(b.faulty_count()));
        prop_assert!(ab.faulty_count() <= a.faulty_count() + b.faulty_count());
    }
}
