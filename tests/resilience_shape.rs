//! Integration test asserting the *shape* of the paper's headline results
//! on the fast toy workbench: degradation grows with fault rate, retraining
//! recovers it, and the required retraining grows with the fault rate.

use reduce_repro::core::{
    ExecConfig, FatRunner, Mitigation, ResilienceAnalysis, ResilienceConfig, Statistic, StopRule,
    Workbench,
};
use reduce_repro::systolic::FaultModel;

#[test]
fn resilience_curves_have_paper_shape() {
    let wb = Workbench::toy(401);
    let pre = wb.pretrain(15).expect("valid workbench");
    // Constraint relative to the measured ceiling so the test is robust to
    // the seed's exact baseline (the library supports both conventions).
    let constraint = (pre.baseline_accuracy - 0.01).min(0.9);
    assert!(pre.baseline_accuracy >= constraint);
    let runner = FatRunner::new(wb).expect("valid workbench");
    let analysis = ResilienceAnalysis::run(
        &runner,
        &pre,
        ResilienceConfig {
            fault_rates: vec![0.0, 0.15, 0.35],
            max_epochs: 10,
            repeats: 3,
            constraint,
            fault_model: FaultModel::Random,
            strategy: Mitigation::Fap,
            seed: 5,
        },
        &ExecConfig::default(),
    )
    .expect("characterisation runs");
    let summaries = analysis.summaries();
    assert_eq!(summaries.len(), 3);

    // Fig. 2a shape #1: pre-retraining accuracy decreases with fault rate.
    let pre_acc: Vec<f32> = summaries
        .iter()
        .map(|s| s.mean_accuracy_at_level[0])
        .collect();
    assert!(
        pre_acc[0] > pre_acc[2] + 0.05,
        "no degradation across rates: {pre_acc:?}"
    );

    // Fig. 2a shape #2: at every rate, retraining improves over level 0.
    for s in summaries {
        let last = *s.mean_accuracy_at_level.last().expect("non-empty");
        assert!(
            last >= s.mean_accuracy_at_level[0] - 0.02,
            "retraining hurt at rate {}: {} -> {last}",
            s.rate,
            s.mean_accuracy_at_level[0]
        );
    }

    // Fig. 2b shape: epochs-to-constraint is monotone (non-strict) in rate
    // on the max statistic, and higher at the worst rate than at zero.
    let max_epochs: Vec<usize> = summaries.iter().map(|s| s.max_epochs).collect();
    assert!(max_epochs[0] <= max_epochs[1] && max_epochs[1] <= max_epochs[2]);
    assert!(
        max_epochs[2] > max_epochs[0],
        "no retraining gradient across rates: {max_epochs:?}"
    );

    // The mean is never above the max (and min never above the mean).
    for s in summaries {
        assert!(s.min_epochs as f64 <= s.mean_epochs + 1e-9);
        assert!(s.mean_epochs <= s.max_epochs as f64 + 1e-9);
    }

    // The table interpolates the same shape.
    let table = analysis.table();
    let lo = table
        .epochs_for(0.05, Statistic::Max)
        .expect("valid rate")
        .epochs;
    let hi = table
        .epochs_for(0.3, Statistic::Max)
        .expect("valid rate")
        .epochs;
    assert!(hi >= lo);
}

#[test]
fn early_stop_never_exceeds_exact_budget() {
    let wb = Workbench::toy(402);
    let constraint = 0.9;
    let (rows, cols) = wb.array_dims();
    let pre = wb.pretrain(12).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    for seed in 0..4u64 {
        let map =
            reduce_repro::systolic::FaultMap::generate(rows, cols, 0.2, FaultModel::Random, seed)
                .expect("valid rate");
        let exact = runner
            .run(&pre, &map, 8, StopRule::Exact, Mitigation::Fap, seed)
            .expect("valid run");
        let stopped = runner
            .run(
                &pre,
                &map,
                8,
                StopRule::AtAccuracy(constraint),
                Mitigation::Fap,
                seed,
            )
            .expect("valid run");
        assert!(stopped.epochs_run() <= exact.epochs_run());
        // If the stopped run claims it met the constraint, it really did.
        if let Some(k) = stopped.epochs_to_reach(constraint) {
            if k > 0 {
                assert!(stopped.accuracy_after_epoch[k - 1] >= constraint);
            }
        }
    }
}
