//! Cross-crate integration tests: the full Reduce pipeline (Step ① → ② →
//! ③) on the fast toy workbench, exercising every crate together.

use reduce_repro::core::{
    ExecConfig, FatRunner, Mitigation, Reduce, ResilienceConfig, RetrainPolicy, Statistic,
    StopRule, Workbench,
};
use reduce_repro::systolic::{generate_fleet, FaultMap, FaultModel, FleetConfig, RateDistribution};

fn fleet(chips: usize, hi: f64, seed: u64) -> Vec<reduce_repro::systolic::Chip> {
    generate_fleet(&FleetConfig {
        chips,
        rows: 8,
        cols: 8,
        rates: RateDistribution::Uniform { lo: 0.0, hi },
        model: FaultModel::Random,
        seed,
    })
    .expect("valid fleet config")
}

#[test]
fn full_pipeline_beats_fixed_baselines() {
    let constraint = 0.90;
    let mut reduce = Reduce::new(Workbench::toy(101), constraint, 15).expect("valid constraint");
    assert!(
        reduce.pretrained().baseline_accuracy >= constraint,
        "pre-trained baseline must satisfy the constraint on a fault-free chip"
    );
    let exec = ExecConfig::default();
    reduce
        .characterize(
            ResilienceConfig {
                fault_rates: vec![0.0, 0.1, 0.2, 0.3],
                max_epochs: 10,
                repeats: 3,
                constraint,
                fault_model: FaultModel::Random,
                strategy: Mitigation::Fap,
                seed: 7,
            },
            &exec,
        )
        .expect("characterisation runs");

    let chips = fleet(12, 0.3, 55);
    let reduce_max = reduce
        .deploy(&chips, RetrainPolicy::Reduce(Statistic::Max), &exec)
        .expect("deployment runs");
    let fixed_zero = reduce
        .deploy(&chips, RetrainPolicy::Fixed(0), &exec)
        .expect("deployment runs");
    let fixed_high = reduce
        .deploy(&chips, RetrainPolicy::Fixed(10), &exec)
        .expect("deployment runs");

    // The paper's headline: Reduce is at least as robust as no-retraining
    // and much cheaper than a uniformly high fixed budget.
    assert!(reduce_max.satisfied >= fixed_zero.satisfied);
    assert!(
        reduce_max.total_epochs < fixed_high.total_epochs,
        "Reduce(max) {} epochs vs Fixed(10) {}",
        reduce_max.total_epochs,
        fixed_high.total_epochs
    );
    // And it should satisfy (almost) every chip within the characterised
    // range.
    assert!(
        reduce_max.satisfied as f32 >= 0.8 * chips.len() as f32,
        "Reduce(max) satisfied only {}/{}",
        reduce_max.satisfied,
        chips.len()
    );
}

#[test]
fn reduce_max_never_cheaper_than_reduce_mean() {
    let constraint = 0.9;
    let mut reduce = Reduce::new(Workbench::toy(102), constraint, 12).expect("valid");
    let exec = ExecConfig::default();
    reduce
        .characterize(
            ResilienceConfig {
                fault_rates: vec![0.0, 0.15, 0.3],
                max_epochs: 8,
                repeats: 3,
                constraint,
                fault_model: FaultModel::Random,
                strategy: Mitigation::Fap,
                seed: 11,
            },
            &exec,
        )
        .expect("characterisation runs");
    let chips = fleet(8, 0.3, 56);
    let max_plan = reduce
        .plan(&chips, RetrainPolicy::Reduce(Statistic::Max), &exec)
        .expect("table ready");
    let mean_plan = reduce
        .plan(&chips, RetrainPolicy::Reduce(Statistic::Mean), &exec)
        .expect("table ready");
    for (mx, mn) in max_plan.iter().zip(&mean_plan) {
        assert!(
            mx.epochs >= mn.epochs,
            "max policy ({}) budgeted less than mean policy ({})",
            mx.epochs,
            mn.epochs
        );
    }
}

#[test]
fn per_chip_budgets_track_fault_rate() {
    let constraint = 0.9;
    let mut reduce = Reduce::new(Workbench::toy(103), constraint, 12).expect("valid");
    reduce
        .characterize(
            ResilienceConfig {
                fault_rates: vec![0.0, 0.1, 0.2, 0.3],
                max_epochs: 8,
                repeats: 2,
                constraint,
                fault_model: FaultModel::Random,
                strategy: Mitigation::Fap,
                seed: 13,
            },
            &ExecConfig::default(),
        )
        .expect("characterisation runs");
    let table = reduce.table().expect("characterised");
    // Interpolated budgets are monotone in fault rate if grid stats are.
    let stats: Vec<usize> = table.entries().iter().map(|e| e.max_epochs).collect();
    let grid_monotone = stats.windows(2).all(|w| w[0] <= w[1]);
    if grid_monotone {
        let mut last = 0usize;
        for i in 0..=30 {
            let rate = 0.3 * i as f64 / 30.0;
            let e = table
                .epochs_for(rate, Statistic::Max)
                .expect("valid rate")
                .epochs;
            assert!(
                e >= last,
                "budget not monotone at rate {rate}: {e} < {last}"
            );
            last = e;
        }
    }
}

#[test]
fn fat_respects_masks_across_whole_pipeline() {
    // Run a full FAT and verify the deployed state is exactly zero at
    // every position the chip's fault map prunes — the hardware contract.
    let wb = Workbench::toy(104);
    let (rows, cols) = wb.array_dims();
    let pre = wb.pretrain(10).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let map = FaultMap::generate(rows, cols, 0.2, FaultModel::Random, 17).expect("valid");
    let outcome = runner
        .run(&pre, &map, 5, StopRule::Exact, Mitigation::Fap, 3)
        .expect("run succeeds");
    // Recompute the masks independently and check the deployed weights.
    for (name, tensor) in &outcome.final_state {
        if tensor.rank() != 2 {
            continue;
        }
        if !name.contains("weight") {
            continue;
        }
        let (out_dim, in_dim) = tensor.shape().as_matrix().expect("weight matrix");
        let mask = reduce_repro::systolic::fap_mask(out_dim, in_dim, &map).expect("valid");
        for (w, m) in tensor.data().iter().zip(mask.data()) {
            if *m == 0.0 {
                assert_eq!(*w, 0.0, "deployed weight not zero on a faulty PE ({name})");
            }
        }
    }
}

#[test]
fn bypass_emulation_agrees_with_masked_training_path() {
    // The systolic emulator (hardware semantics) and the mask+dense-GEMM
    // path (training semantics) must produce identical layer outputs.
    use reduce_repro::systolic::SystolicArray;
    use reduce_repro::tensor::{ops, Tensor};
    let map = FaultMap::generate(8, 8, 0.3, FaultModel::Random, 21).expect("valid");
    let array = SystolicArray::new(map.clone());
    let w = Tensor::rand_uniform([48, 32], -1.0, 1.0, 1);
    let x = Tensor::rand_uniform([16, 32], -1.0, 1.0, 2);
    let hw_out = array.gemm(&w, &x).expect("conformable");
    let mask = reduce_repro::systolic::fap_mask(48, 32, &map).expect("valid");
    let masked = (&w * &mask).expect("same shape");
    let sw_out = ops::matmul_nt(&x, &masked).expect("conformable");
    assert!(hw_out.approx_eq(&sw_out, 1e-4));
}

#[test]
fn paper_array_geometry_end_to_end() {
    // 256x256 array (the paper's) with a chip fault map driving masks for
    // a toy model: exercises the tiling path where layers are smaller than
    // the array.
    let mut wb = Workbench::toy(105);
    wb.array = (256, 256);
    let pre = wb.pretrain(8).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let map = FaultMap::generate(256, 256, 0.02, FaultModel::Random, 31).expect("valid rate");
    let outcome = runner
        .run(&pre, &map, 1, StopRule::Exact, Mitigation::Fap, 0)
        .expect("run succeeds");
    // Layers smaller than the array see only the top-left corner of the
    // fault map, so the pruned fraction is typically below the chip rate.
    assert!(outcome.pruned_fraction < 0.1);
    assert!(outcome.final_accuracy() > 0.5);
}

#[test]
fn deterministic_fleet_reports() {
    let constraint = 0.9;
    let run = || {
        let mut reduce = Reduce::new(Workbench::toy(106), constraint, 8).expect("valid");
        let exec = ExecConfig::default();
        reduce
            .characterize(
                ResilienceConfig {
                    fault_rates: vec![0.0, 0.2],
                    max_epochs: 4,
                    repeats: 2,
                    constraint,
                    fault_model: FaultModel::Random,
                    strategy: Mitigation::Fap,
                    seed: 19,
                },
                &exec,
            )
            .expect("characterisation runs");
        let chips = fleet(4, 0.2, 57);
        reduce
            .deploy(&chips, RetrainPolicy::Reduce(Statistic::Max), &exec)
            .expect("deployment runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must give identical reports");
}
