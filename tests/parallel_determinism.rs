//! Cross-thread determinism of the shared executor (`reduce_core::exec`):
//! the parallel Step-① characterisation and Step-③ fleet evaluation must
//! be byte-identical to their sequential paths at any thread count, and
//! worker panics must surface as typed errors instead of aborts.

use reduce_repro::core::{
    exec, ExecConfig, FatRunner, FleetEvaluation, Mitigation, ReduceError, ResilienceAnalysis,
    ResilienceConfig, RetrainPolicy, Workbench,
};
use reduce_repro::systolic::{generate_fleet, FaultModel, FleetConfig, RateDistribution};

fn grid_config() -> ResilienceConfig {
    ResilienceConfig {
        fault_rates: vec![0.0, 0.1, 0.2],
        max_epochs: 4,
        repeats: 2,
        constraint: 0.88,
        fault_model: FaultModel::Random,
        strategy: Mitigation::Fap,
        seed: 11,
    }
}

#[test]
fn characterisation_is_identical_across_thread_counts() {
    let wb = Workbench::toy(501);
    let pre = wb.pretrain(10).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let seq = ResilienceAnalysis::run(&runner, &pre, grid_config(), &ExecConfig::default())
        .expect("characterisation runs");
    // The grid is rate-major with contiguous repeats, and every point
    // carries its grid index.
    for (i, p) in seq.points().iter().enumerate() {
        assert_eq!(p.rate_index, i / 2);
        assert_eq!(p.repeat, i % 2);
    }
    for threads in [0usize, 1, 2, 8] {
        let par = ResilienceAnalysis::run(&runner, &pre, grid_config(), &ExecConfig::new(threads))
            .expect("characterisation runs");
        assert_eq!(par.points(), seq.points(), "{threads}-thread points differ");
        assert_eq!(
            par.summaries(),
            seq.summaries(),
            "{threads}-thread summaries differ"
        );
        assert_eq!(par.table(), seq.table(), "{threads}-thread table differs");
    }
}

#[test]
fn fleet_evaluation_is_identical_across_thread_counts() {
    let wb = Workbench::toy(502);
    let pre = wb.pretrain(10).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let fleet = generate_fleet(&FleetConfig {
        chips: 5,
        rows: 8,
        cols: 8,
        rates: RateDistribution::Uniform { lo: 0.0, hi: 0.2 },
        model: FaultModel::Random,
        seed: 9,
    })
    .expect("valid fleet");
    // A 2-chip intake window forces several scheduler windows, so the
    // batched pipeline itself is exercised across thread counts.
    let evaluate = |exec: &ExecConfig| {
        FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
            .source(&fleet)
            .window(2)
            .collect_outcomes(true)
            .exec(exec)
            .run(&runner, &pre)
            .expect("valid run")
    };
    let seq = evaluate(&ExecConfig::default());
    for threads in [0usize, 1, 2, 8] {
        let par = evaluate(&ExecConfig::new(threads));
        assert_eq!(par, seq, "{threads}-thread report differs from sequential");
    }
}

#[test]
fn executor_preserves_input_order_and_contains_panics() {
    let items: Vec<u64> = (0..40).collect();
    for threads in [0usize, 1, 2, 8] {
        let out =
            exec::parallel_map(&items, threads, |i, &x| Ok((i, x * x))).expect("no job fails");
        for (i, (idx, sq)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*sq, (i * i) as u64);
        }
    }
    // A panicking job becomes ReduceError::Internal, not a process abort.
    let res: Result<Vec<u64>, ReduceError> = exec::parallel_map(&items, 4, |_, &x| {
        assert!(x < 10, "injected failure");
        Ok(x)
    });
    match res {
        Err(ReduceError::Internal { invariant }) => {
            assert!(
                invariant.contains("panic"),
                "unexpected message: {invariant}"
            );
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }
}
