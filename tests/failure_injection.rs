//! Failure-injection integration tests: degenerate inputs must produce
//! typed errors (never panics) at every layer of the stack.

use reduce_repro::core::{
    ExecConfig, Mitigation, Reduce, ReduceError, ResilienceConfig, ResilienceTable, RetrainPolicy,
    Statistic, TableEntry, Workbench,
};
use reduce_repro::data::{blobs, Dataset};
use reduce_repro::nn::{models, CrossEntropyLoss, Sgd, TrainConfig, Trainer};
use reduce_repro::systolic::{FaultMap, FaultModel};
use reduce_repro::tensor::Tensor;

#[test]
fn all_faulty_chip_is_handled_gracefully() {
    // A chip whose entire array is dead: every weight masked, accuracy at
    // chance, but nothing panics and retraining runs (uselessly).
    let wb = Workbench::toy(201);
    let (rows, cols) = wb.array_dims();
    let pre = wb.pretrain(5).expect("valid workbench");
    let runner = reduce_repro::core::FatRunner::new(wb).expect("valid workbench");
    let dead = FaultMap::generate(rows, cols, 1.0, FaultModel::Random, 0).expect("valid");
    let outcome = runner
        .run(
            &pre,
            &dead,
            2,
            reduce_repro::core::StopRule::Exact,
            Mitigation::Fap,
            0,
        )
        .expect("degenerate chip still runs");
    assert!((outcome.pruned_fraction - 1.0).abs() < 1e-6);
    // All-zero network: accuracy is at chance level (4 classes).
    assert!(outcome.final_accuracy() < 0.5);
}

#[test]
fn empty_and_inconsistent_datasets_error() {
    assert!(Dataset::new(Tensor::zeros([4, 2]), vec![0, 1], 2).is_err());
    let d = blobs(10, 2, 2, 1.0, 0.1, 0).expect("valid");
    assert!(d.subset(&[99]).is_err());
    assert!(d.split(2.0, 0).is_err());
}

#[test]
fn trainer_rejects_empty_data_not_panics() {
    let mut model = models::mlp(&[2, 4, 2], 0).expect("valid dims");
    let mut trainer = Trainer::new(Sgd::new(0.1), CrossEntropyLoss, TrainConfig::default());
    let err = trainer.train_epoch(&mut model, &Tensor::zeros([0, 2]), &[]);
    assert!(err.is_err());
}

#[test]
fn mask_shape_mismatch_is_typed_error() {
    let mut model = models::mlp(&[4, 8, 2], 0).expect("valid dims");
    // Wrong count.
    assert!(model.set_weight_masks(&[None]).is_err());
    // Wrong shape.
    let bad = vec![Some(Tensor::ones([3, 3])), None];
    assert!(model.set_weight_masks(&bad).is_err());
    // Non-binary mask.
    let bad = vec![Some(Tensor::full([8, 4], 0.5)), None];
    assert!(model.set_weight_masks(&bad).is_err());
}

#[test]
fn resilience_errors_are_typed() {
    let wb = Workbench::toy(202);
    let mut reduce = Reduce::new(wb, 0.9, 3).expect("valid");
    // Empty grid: rejected both by the builder (at construction) and by
    // the struct-literal escape hatch (at run time).
    let builder_err = ResilienceConfig::builder().fault_rates(vec![]).build();
    assert!(matches!(
        builder_err,
        Err(ReduceError::InvalidConfig { .. })
    ));
    let err = reduce.characterize(
        ResilienceConfig {
            fault_rates: vec![],
            max_epochs: 2,
            repeats: 1,
            constraint: 0.9,
            fault_model: FaultModel::Random,
            strategy: Mitigation::Fap,
            seed: 0,
        },
        &ExecConfig::default(),
    );
    assert!(matches!(err, Err(ReduceError::InvalidConfig { .. })));
    // Reduce policy without characterisation.
    let chip_err = RetrainPolicy::Reduce(Statistic::Max).epochs_for_chip(None, 0.1);
    assert!(matches!(
        chip_err,
        Err(ReduceError::MissingCharacterization { .. })
    ));
}

#[test]
fn table_lookup_rejects_garbage_rates() {
    let t = ResilienceTable::from_entries(
        vec![TableEntry {
            rate: 0.0,
            mean_epochs: 0.0,
            max_epochs: 0,
        }],
        4,
    )
    .expect("non-empty");
    assert!(t.epochs_for(f64::NAN, Statistic::Max).is_err());
    assert!(t.epochs_for(f64::INFINITY, Statistic::Max).is_err());
    assert!(t.epochs_for(-0.5, Statistic::Max).is_err());
}

#[test]
fn fault_map_geometry_errors() {
    assert!(FaultMap::fault_free(0, 10).is_err());
    assert!(FaultMap::generate(4, 4, 2.0, FaultModel::Random, 0).is_err());
    assert!(FaultMap::from_coords(4, 4, &[(9, 0)]).is_err());
    let a = FaultMap::fault_free(4, 4).expect("nonzero");
    let b = FaultMap::fault_free(5, 4).expect("nonzero");
    assert!(a.union(&b).is_err());
}

#[test]
fn errors_display_and_chain() {
    use std::error::Error as _;
    let e: ReduceError = FaultMap::fault_free(0, 0).expect_err("degenerate").into();
    assert!(e.to_string().contains("systolic"));
    assert!(e.source().is_some());
}

#[test]
fn poisoned_checkpoint_rejected() {
    let mut model = models::mlp(&[2, 3, 2], 0).expect("valid dims");
    let mut state = model.state_dict();
    // Truncate.
    state.pop();
    assert!(model.load_state_dict(&state).is_err());
    // Reshape an entry.
    let mut state = model.state_dict();
    state[0].1 = Tensor::zeros([1, 1]);
    assert!(model.load_state_dict(&state).is_err());
}
