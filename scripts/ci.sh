#!/usr/bin/env bash
# Tier-1 verification: everything a PR must pass before merge.
#
#   build → tests → xtask lint (ratcheted) → clippy -D warnings → fmt check
#
# Run from anywhere inside the repo. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo xtask lint --format json"
cargo xtask lint --format json

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -q -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci: all stages green"
