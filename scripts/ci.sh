#!/usr/bin/env bash
# Tier-1 verification: everything a PR must pass before merge.
#
#   build → tests → xtask lint (ratcheted) → xtask graph --check (effect
#   analysis) → clippy -D warnings → fmt check
#   → smoke determinism gate (parallel ≡ sequential artifacts)
#   → kill-and-resume + storage-fault sweep (every IO op crash-tested)
#
# Run from anywhere inside the repo. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo xtask lint --format json"
cargo xtask lint --format json

echo "==> cargo xtask graph --check"
# Effect analysis: every parallel job root (and the journal replay path)
# must infer effect-free through the sanctioned islands.
cargo xtask graph --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -q -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> smoke determinism gate (fig2 --threads 1 vs --threads 4)"
# The parallel Step-① characterisation must be byte-identical to the
# sequential run: CSV points, the saved resilience table, and — with
# --redact-timing — the telemetry run log and manifest too.
det_dir="$(mktemp -d)"
trap 'rm -rf "$det_dir"' EXIT
mkdir -p "$det_dir/t1" "$det_dir/t4"
cargo run -q -p reduce-bench --release --bin fig2 -- \
    --scale smoke --threads 1 --csv "$det_dir/t1" \
    --table-out "$det_dir/t1/table.json" \
    --out "$det_dir/t1" --redact-timing >/dev/null
cargo run -q -p reduce-bench --release --bin fig2 -- \
    --scale smoke --threads 4 --csv "$det_dir/t4" \
    --table-out "$det_dir/t4/table.json" \
    --out "$det_dir/t4" --redact-timing >/dev/null
diff "$det_dir/t1/fig2_resilience.csv" "$det_dir/t4/fig2_resilience.csv"
diff "$det_dir/t1/table.json" "$det_dir/t4/table.json"
diff "$det_dir/t1/run_log.jsonl" "$det_dir/t4/run_log.jsonl"
diff "$det_dir/t1/manifest.json" "$det_dir/t4/manifest.json"
echo "    parallel characterisation artifacts (csv, table, run log, manifest)"
echo "    are byte-identical to sequential"

echo "==> smoke determinism gate (fig3 --threads 1 vs --threads 4)"
# Same gate for the full pipeline (characterise + fleet deploy): the
# redacted run log — including the per-stage workspace_used counters —
# and the manifest must not depend on the thread count.
mkdir -p "$det_dir/f3t1" "$det_dir/f3t4"
cargo run -q -p reduce-bench --release --bin fig3 -- \
    --scale smoke --policy reduce-max --threads 1 \
    --out "$det_dir/f3t1" --redact-timing >/dev/null
cargo run -q -p reduce-bench --release --bin fig3 -- \
    --scale smoke --policy reduce-max --threads 4 \
    --out "$det_dir/f3t4" --redact-timing >/dev/null
diff "$det_dir/f3t1/run_log.jsonl" "$det_dir/f3t4/run_log.jsonl"
diff "$det_dir/f3t1/manifest.json" "$det_dir/f3t4/manifest.json"
grep -q '"event":"workspace_used"' "$det_dir/f3t1/run_log.jsonl"
grep -q '"workspace": \[{"stage"' "$det_dir/f3t1/manifest.json"
echo "    parallel deployment artifacts (run log incl. workspace counters,"
echo "    manifest) are byte-identical to sequential"

echo "==> kill-and-resume gate (fig2 chaos run, interrupted ≡ uninterrupted)"
# A run interrupted mid-characterisation (--halt-after exits 3 after N
# journal appends) and resumed with --resume must publish byte-identical
# redacted artifacts to an uninterrupted run — including under seeded
# chaos with retries and quarantine. The journal itself is completion-
# ordered and is deliberately never diffed.
chaos="--scale smoke --retries 2 --chaos-rate 0.35 --chaos-seed 7 --redact-timing"
mkdir -p "$det_dir/ref" "$det_dir/cut"
cargo run -q -p reduce-bench --release --bin fig2 -- \
    $chaos --threads 1 --csv "$det_dir/ref" --out "$det_dir/ref" >/dev/null
rc=0
cargo run -q -p reduce-bench --release --bin fig2 -- \
    $chaos --threads 4 --csv "$det_dir/cut" --out "$det_dir/cut" \
    --halt-after 3 >/dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "expected --halt-after to exit 3, got $rc"; exit 1; }
cargo run -q -p reduce-bench --release --bin fig2 -- \
    $chaos --threads 4 --csv "$det_dir/cut" --resume "$det_dir/cut" >/dev/null
diff "$det_dir/ref/fig2_resilience.csv" "$det_dir/cut/fig2_resilience.csv"
diff "$det_dir/ref/run_log.jsonl" "$det_dir/cut/run_log.jsonl"
diff "$det_dir/ref/manifest.json" "$det_dir/cut/manifest.json"
grep -q '"event":"job_failed"' "$det_dir/ref/run_log.jsonl"
echo "    interrupted+resumed chaos run artifacts (csv, run log, manifest)"
echo "    are byte-identical to the uninterrupted run"

echo "==> storage-fault sweep gate (fig2 chaos run, every artifact IO op)"
# ALICE-style crash sweep: arm the deterministic IO-fault injector at
# every artifact IO operation index of the chaos campaign in turn. Each
# armed run must die with exit 4 (the simulated crash), journal-tool must
# classify the surviving journal (repairing the rare corrupt middles),
# and --resume must publish byte-identical redacted artifacts to the
# uninterrupted reference. Fault kinds rotate so torn writes, short
# writes, ENOSPC, and failed renames all land on every phase of the run.
jt() { cargo run -q -p reduce-bench --release --bin journal-tool -- "$@"; }
jt verify "$det_dir/cut" >/dev/null || {
    echo "resumed kill-and-resume journal did not verify clean"; exit 1; }
sweep_dir="$det_dir/sweep"
mkdir -p "$sweep_dir/probe"
rc=0
cargo run -q -p reduce-bench --release --bin fig2 -- \
    $chaos --threads 4 --csv "$sweep_dir/probe" --out "$sweep_dir/probe" \
    --io-fault enospc@1000000 >/dev/null 2>"$sweep_dir/probe.err" || rc=$?
[ "$rc" -eq 0 ] || { echo "op-count probe failed ($rc)"; cat "$sweep_dir/probe.err"; exit 1; }
total_ops=$(grep -oE "beyond the run's [0-9]+" "$sweep_dir/probe.err" | grep -oE '[0-9]+')
[ -n "$total_ops" ] && [ "$total_ops" -ge 30 ] || {
    echo "probe reported too few artifact IO ops: '${total_ops:-none}'"; exit 1; }
kinds=(torn short enospc rename-fail)
repaired=0
for ((i = 0; i < total_ops; i++)); do
    kind=${kinds[i % 4]}
    cut="$sweep_dir/cut"
    rm -rf "$cut"
    mkdir -p "$cut"
    rc=0
    cargo run -q -p reduce-bench --release --bin fig2 -- \
        $chaos --threads 4 --csv "$cut" --out "$cut" \
        --io-fault "$kind@$i" >/dev/null 2>&1 || rc=$?
    [ "$rc" -eq 4 ] || { echo "fault $kind@$i: expected crash exit 4, got $rc"; exit 1; }
    vrc=0
    jt verify "$cut" >/dev/null || vrc=$?
    case "$vrc" in
        0|2) ;;
        3) jt repair "$cut" >/dev/null || { echo "fault $kind@$i: repair failed"; exit 1; }
           repaired=$((repaired + 1)) ;;
        *) echo "fault $kind@$i: journal-tool verify exited $vrc"; exit 1 ;;
    esac
    cargo run -q -p reduce-bench --release --bin fig2 -- \
        $chaos --threads 4 --csv "$cut" --resume "$cut" >/dev/null
    diff "$det_dir/ref/fig2_resilience.csv" "$cut/fig2_resilience.csv"
    diff "$det_dir/ref/run_log.jsonl" "$cut/run_log.jsonl"
    diff "$det_dir/ref/manifest.json" "$cut/manifest.json"
    jt verify "$cut" >/dev/null || {
        echo "fault $kind@$i: resumed journal did not verify clean"; exit 1; }
done
echo "    $total_ops fault points x {torn,short,enospc,rename-fail}: every"
echo "    crash resumed to byte-identical artifacts ($repaired needed repair)"

echo "==> GEMM kernel-comparison gate (gemm_bench --check)"
# Every registered GEMM kernel must agree with the naive reference on the
# full workload set (exact for the blocked kernels, FMA tolerance for the
# packed ones) — the binary exits non-zero on any gate failure. The JSON
# document it writes must also keep the checked-in schema: numeric
# literals are normalised away (timings and error magnitudes vary run to
# run) but structure, names and the "ok" booleans must match
# BENCH_gemm.json byte for byte.
mkdir -p "$det_dir/gemm"
cargo run -q -p reduce-bench --release --bin gemm_bench -- \
    --check --out "$det_dir/gemm/BENCH_gemm.json" --threads 2 >/dev/null
normalise_nums() { sed -E 's/-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?/N/g' "$1"; }
diff <(normalise_nums BENCH_gemm.json) \
     <(normalise_nums "$det_dir/gemm/BENCH_gemm.json")
echo "    all kernels pass their correctness gates; BENCH_gemm.json schema"
echo "    matches the checked-in document"

echo "==> large-fleet streaming gate (fig3 --fleet-size 20000)"
# The streaming fleet pipeline must hold memory constant at 10^4+ chips:
# chips come from a seeded source (never a materialised Vec), outcomes
# fold into a constant-size report, and the journal is sharded. Gate on
# the process peak RSS and require the throughput line.
fleet_out="$det_dir/fleet"
mkdir -p "$fleet_out"
cp BENCH_fleet.json "$fleet_out/checked_in.json"
cargo run -q -p reduce-bench --release --bin fig3 -- \
    --scale smoke --policy fixed:0 --fleet-size 20000 --threads 4 \
    > "$fleet_out/stdout.txt"
grep -E "chips/sec" "$fleet_out/stdout.txt"
rss_kb=$(grep -oE 'peak_rss_kb=[0-9]+' "$fleet_out/stdout.txt" | cut -d= -f2)
[ -n "$rss_kb" ] || { echo "fig3 did not report peak_rss_kb"; exit 1; }
[ "$rss_kb" -lt 786432 ] || { echo "peak RSS ${rss_kb} kB breaks the 768 MB ceiling"; exit 1; }
# The run rewrites the repo-root BENCH_fleet.json; gate its schema
# against the checked-in document (numeric literals normalised away,
# like BENCH_gemm.json) and put the checked-in copy back.
diff <(normalise_nums BENCH_fleet.json) <(normalise_nums "$fleet_out/checked_in.json")
cp "$fleet_out/checked_in.json" BENCH_fleet.json
echo "    20000-chip streamed fleet held peak RSS at ${rss_kb} kB (< 768 MB ceiling);"
echo "    BENCH_fleet.json schema matches the checked-in document"

echo "==> eFAT strategy gate (clustered beats per-chip Reduce, deterministically)"
# The cluster-aware pipeline must earn its keep on the same seeded smoke
# fleet: eFAT spends strictly fewer aggregate epochs than per-chip
# Reduce at equal-or-better yield. It must also keep the determinism
# contract with clustering enabled — redacted artifacts byte-identical
# across thread counts and across kill-and-resume.
efat_dir="$det_dir/efat"
mkdir -p "$efat_dir/t1" "$efat_dir/t4" "$efat_dir/ref" "$efat_dir/cut"
cargo run -q -p reduce-bench --release --bin fig3 -- \
    --scale smoke --strategy all --threads 1 \
    --out "$efat_dir/t1" --redact-timing > "$efat_dir/stdout.txt"
cargo run -q -p reduce-bench --release --bin fig3 -- \
    --scale smoke --strategy all --threads 4 \
    --out "$efat_dir/t4" --redact-timing >/dev/null
diff "$efat_dir/t1/run_log.jsonl" "$efat_dir/t4/run_log.jsonl"
diff "$efat_dir/t1/manifest.json" "$efat_dir/t4/manifest.json"
grep -q '"event":"cluster_formed"' "$efat_dir/t1/run_log.jsonl"
grep -q '"event":"warm_start_hit"' "$efat_dir/t1/run_log.jsonl"
# Comparison-table columns, counted from the right: epochs_saved,
# warm_starts, clusters, total_epochs, yield%, satisfied, chips.
table_field() { # $1: row pattern, $2: offset from NF
    awk -v pat="$1" -v off="$2" \
        '/^— strategy comparison/{s=1; next} s && $0 ~ pat {print $(NF-off); exit}' \
        "$efat_dir/stdout.txt"
}
reduce_epochs=$(table_field '^Reduce \\(max\\) +[0-9]' 3)
reduce_sat=$(table_field '^Reduce \\(max\\) +[0-9]' 5)
efat_epochs=$(table_field '\\+ eFAT' 3)
efat_sat=$(table_field '\\+ eFAT' 5)
[ -n "$reduce_epochs" ] && [ -n "$efat_epochs" ] || {
    echo "could not parse the strategy comparison table"; exit 1; }
[ "$efat_epochs" -lt "$reduce_epochs" ] || {
    echo "eFAT ($efat_epochs epochs) must spend strictly fewer than per-chip Reduce ($reduce_epochs)"
    exit 1; }
[ "$efat_sat" -ge "$reduce_sat" ] || {
    echo "eFAT yield ($efat_sat) fell below per-chip Reduce ($reduce_sat)"; exit 1; }
echo "    eFAT: $efat_epochs aggregate epochs vs Reduce's $reduce_epochs at yield $efat_sat>=$reduce_sat"
# Kill mid-run (exit 3 after 9 journal appends cuts into the clustered
# fleet batches), resume, and require byte-identical artifacts to an
# uninterrupted run.
cargo run -q -p reduce-bench --release --bin fig3 -- \
    --scale smoke --strategy efat --threads 1 \
    --out "$efat_dir/ref" --redact-timing >/dev/null
rc=0
cargo run -q -p reduce-bench --release --bin fig3 -- \
    --scale smoke --strategy efat --threads 4 \
    --out "$efat_dir/cut" --redact-timing --halt-after 9 >/dev/null || rc=$?
[ "$rc" -eq 3 ] || { echo "expected --halt-after to exit 3, got $rc"; exit 1; }
cargo run -q -p reduce-bench --release --bin fig3 -- \
    --scale smoke --strategy efat --threads 4 \
    --resume "$efat_dir/cut" --redact-timing >/dev/null
diff "$efat_dir/ref/run_log.jsonl" "$efat_dir/cut/run_log.jsonl"
diff "$efat_dir/ref/manifest.json" "$efat_dir/cut/manifest.json"
jt verify "$efat_dir/cut" >/dev/null || {
    echo "resumed eFAT journal did not verify clean"; exit 1; }
echo "    clustered artifacts are byte-identical across thread counts and"
echo "    across kill-and-resume (journal verifies clean after resume)"

echo "ci: all stages green"
