//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::Range;

/// A length specification for collection strategies: either exact or a
/// half-open range, mirroring proptest's `SizeRange` conversions.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and length drawn from a
/// [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Builds a `Vec` strategy: `vec(element, len)` or `vec(element, lo..hi)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
