//! Vendored, offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! `Just`, weighted [`prop_oneof!`] unions and
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the panic from the plain
//!   `assert!`; inputs are printed by the assertion message only.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   fully qualified test name (FNV-1a hash), so runs are bit-reproducible
//!   across machines and invocations — there is no environment override
//!   and no `proptest-regressions` persistence. This is stricter than
//!   upstream and intentional: the Reduce framework's tooling forbids
//!   ambient entropy everywhere, test harnesses included.

pub mod strategy;

pub mod collection;

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy producing fair booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Mirror of proptest's `Config`, reduced to the knobs used in-tree.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Explicit rejection of a test case (`return Err(...)` in a body).
    /// This stand-in's `prop_assert!` panics instead of constructing one.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirror of the `prop` module re-export in proptest's prelude.
    pub mod prop {
        pub use crate::{bool, collection};
    }
}

/// Derives a deterministic per-test RNG from the test's qualified name.
pub fn rng_for(test_name: &str) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    // FNV-1a over the name: stable across runs, platforms and compilers.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::rngs::SmallRng::seed_from_u64(hash)
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against `cases` seeded random
/// instantiations of its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng =
                $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(
                    let $pat =
                        $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                )*
                // The closure lets property bodies `return Ok(())` early,
                // as real proptest allows.
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property rejected: {}", e.0);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Picks one of several strategies per draw, optionally weighted
/// (`weight => strategy`). All branches must yield the same value type.
/// Unweighted branches draw with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<(
            u32,
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        )> = vec![$(($weight as u32, ::std::boxed::Box::new($strat))),+];
        $crate::strategy::Union::new_weighted(options)
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Asserts a condition inside a property body (panics on failure, like a
/// plain `assert!` — this stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}
