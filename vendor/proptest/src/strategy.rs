//! The `Strategy` trait and the combinators/instances used in-tree.

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an associated type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply draws a fresh value from a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick a follow-up strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies borrowed by reference generate like their referent.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut SmallRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Strategy that always yields a clone of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of strategies yielding the same value type — the
/// engine behind [`crate::prop_oneof!`]. Each draw first picks a branch
/// with probability proportional to its weight, then draws from it.
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the weights sum to zero — a union that can never pick a
    /// branch is a bug at the definition site, not at draw time.
    pub fn new_weighted(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut SmallRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strat) in &self.options {
            if pick < *weight {
                return strat.new_value(rng);
            }
            pick -= *weight;
        }
        unreachable!("pick < sum of weights")
    }
}
