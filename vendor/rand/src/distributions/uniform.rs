//! Uniform sampling from `Range` / `RangeInclusive` expressions, powering
//! `Rng::gen_range`.

use crate::distributions::{Distribution, Standard};
use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that `Rng::gen_range` can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// Panics on an empty range, mirroring upstream `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                // Modulo reduction: the bias is at most span/2^64, which is
                // negligible for the in-tree spans and keeps the stream
                // deterministic and branch-free.
                let off = rng.next_u64() % (span as u64);
                self.start.wrapping_add(off as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = rng.next_u64() % (span + 1);
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

uniform_float!(f32, f64);
