//! Vendored, fully deterministic stand-in for the `rand` 0.8 crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *subset* of `rand`'s API it actually uses:
//! [`rngs::SmallRng`] (xoshiro256++, the same algorithm `rand` 0.8 uses on
//! 64-bit targets), [`SeedableRng::seed_from_u64`] (SplitMix64 seeding, as
//! upstream), the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`)
//! and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Everything here is deliberately deterministic: there is no `thread_rng`,
//! no `from_entropy`, and no `rand::random` — the Reduce framework requires
//! every stochastic path to be driven by an explicit `u64` seed, and the
//! `cargo xtask lint` determinism lints forbid the ambient-entropy entry
//! points outright. Omitting them from the vendored crate turns those lint
//! violations into compile errors.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the same expansion upstream `rand` 0.8 uses, so seeds produce
    /// well-mixed initial states even for small integers.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// Supports `Range` and `RangeInclusive` over the primitive integer and
    /// float types. Panics (as upstream does) on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // And actually permutes with overwhelming probability.
        assert_ne!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = SmallRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
        let many: Vec<usize> = (0..9).collect();
        for _ in 0..100 {
            let &c = many.choose(&mut rng).expect("non-empty");
            assert!(c < 9);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(6);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
