//! Sequence helpers: seeded shuffling and choosing.

use crate::{Rng, RngCore};

/// Random operations over slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, seeded by `rng`).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen reference, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}
