//! Concrete generators. `SmallRng` is xoshiro256++ — the algorithm the real
//! `rand` 0.8 selects for `SmallRng` on 64-bit platforms.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic, non-cryptographic generator
/// (xoshiro256++ by Blackman & Vigna).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // xoshiro requires a non-zero state; expand an all-zero seed
        // through SplitMix64 instead (matching upstream behaviour).
        if seed.iter().all(|&b| b == 0) {
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            *word = u64::from_le_bytes(bytes);
        }
        SmallRng { s }
    }
}

/// The "standard" generator. Upstream uses ChaCha12 here; for this offline
/// stand-in it is an alias for the same deterministic xoshiro256++ core,
/// which is all the workspace needs (nothing in-tree requires a
/// cryptographically strong stream).
pub type StdRng = SmallRng;
