//! Vendored, offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report and
//! configuration types so they are wire-ready, but no in-tree code ever
//! serialises them (there is no `serde_json` or other format crate in the
//! dependency graph, and the build environment cannot fetch one). This
//! stand-in keeps the annotations compiling — and the types honest about
//! their intent — by providing the two trait names plus inert derive
//! macros that expand to nothing.
//!
//! Swapping back to real `serde` is a one-line change in the workspace
//! `Cargo.toml` once a registry is reachable; no call sites change.

/// Marker for types that intend to be serialisable.
///
/// Inert in this stand-in: the derive expands to nothing, so no impls
/// exist. Nothing in-tree bounds on this trait.
pub trait Serialize {}

/// Marker for types that intend to be deserialisable.
///
/// Inert in this stand-in, like [`Serialize`].
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
