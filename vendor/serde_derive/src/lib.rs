//! Inert `Serialize`/`Deserialize` derives.
//!
//! The vendored `serde` stand-in (see its crate docs) provides the trait
//! names; these derives intentionally expand to nothing, so annotated types
//! compile without pulling in a full serialisation framework.

use proc_macro::TokenStream;

/// Expands to nothing; keeps `#[derive(Serialize)]` compiling offline.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; keeps `#[derive(Deserialize)]` compiling offline.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
