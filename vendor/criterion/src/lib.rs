//! Vendored, offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`sample_size`/`finish`, the
//! `criterion_group!`/`criterion_main!` macros and a `Bencher` with
//! `iter` — backed by a simple median-of-samples wall-clock timer instead
//! of criterion's statistical machinery. Results print as
//! `<group>/<name>  time: <median> (min .. max)` per benchmark.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, re-exported for bench code that
/// imports it from `criterion` rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 24 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_budget: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_budget` samples of
    /// `iters_per_sample` iterations each.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: aim for samples of at least ~1ms, capped for slow fns.
        let t0 = Instant::now();
        std_black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1);
        self.iters_per_sample = u64::try_from(per_sample).unwrap_or(1).min(10_000);
        for _ in 0..self.sample_budget {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_budget: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter.first().copied().unwrap_or(median);
    let hi = per_iter.last().copied().unwrap_or(median);
    println!(
        "{name:<48} time: {} ({} .. {})",
        fmt_seconds(median),
        fmt_seconds(lo),
        fmt_seconds(hi)
    );
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a bench group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
