//! Step-② selection cost: resilience-table lookups are the *cheap* part of
//! Reduce — nanoseconds per chip against minutes of retraining.

use criterion::{criterion_group, criterion_main, Criterion};
use reduce_core::{ResilienceTable, RetrainPolicy, Statistic, TableEntry};
use std::hint::black_box;

fn table(points: usize) -> ResilienceTable {
    let entries = (0..points)
        .map(|i| {
            let rate = 0.3 * i as f64 / (points - 1) as f64;
            TableEntry {
                rate,
                mean_epochs: 40.0 * rate * rate * 10.0,
                max_epochs: (60.0 * rate * rate * 10.0) as usize + 1,
            }
        })
        .collect();
    ResilienceTable::from_entries(entries, 64).expect("non-empty")
}

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_select");
    for points in [4usize, 16, 64] {
        let t = table(points);
        group.bench_function(&format!("interpolate_{points}pt_table"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let rate = (i % 1000) as f64 / 1000.0 * 0.35;
                t.epochs_for(black_box(rate), Statistic::Max)
                    .expect("valid rate")
            })
        });
    }
    let t = table(16);
    group.bench_function("plan_100_chip_fleet", |b| {
        let rates: Vec<f64> = (0..100).map(|i| 0.3 * i as f64 / 99.0).collect();
        let policy = RetrainPolicy::Reduce(Statistic::Max);
        b.iter(|| {
            rates
                .iter()
                .map(|&r| {
                    policy
                        .epochs_for_chip(Some(black_box(&t)), r)
                        .expect("valid rate")
                })
                .map(|s| s.epochs)
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
