//! GEMM kernels: dense vs fault-masked vs bypass-level emulation.
//!
//! The key performance claim encoded here: applying a FAP mask costs one
//! elementwise multiply, after which the masked GEMM runs at dense speed —
//! while the per-element bypass emulation (the semantic oracle) is far
//! slower, which is why training uses the mask path.

use criterion::{criterion_group, criterion_main, Criterion};
use reduce_systolic::{fap_mask, FaultMap, FaultModel, SystolicArray};
use reduce_tensor::{ops, Tensor};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let w = Tensor::rand_uniform([128, 128], -1.0, 1.0, 1);
    let x = Tensor::rand_uniform([32, 128], -1.0, 1.0, 2);
    let map = FaultMap::generate(32, 32, 0.05, FaultModel::Random, 3).expect("valid rate");
    let mask = fap_mask(128, 128, &map).expect("nonzero dims");
    let masked_w = (&w * &mask).expect("same shape");
    let array = SystolicArray::new(map);

    group.bench_function("dense_128x128_b32", |b| {
        b.iter(|| ops::matmul_nt(black_box(&x), black_box(&w)).expect("conformable"))
    });
    group.bench_function("masked_128x128_b32", |b| {
        b.iter(|| ops::matmul_nt(black_box(&x), black_box(&masked_w)).expect("conformable"))
    });
    group.bench_function("mask_derive_and_apply", |b| {
        b.iter(|| {
            let m = fap_mask(128, 128, array.fault_map()).expect("nonzero dims");
            (black_box(&w) * &m).expect("same shape")
        })
    });
    group.bench_function("bypass_emulation_128x128_b32", |b| {
        b.iter(|| {
            array
                .gemm(black_box(&w), black_box(&x))
                .expect("conformable")
        })
    });
    group.finish();

    let mut group = c.benchmark_group("gemm_variants");
    let a = Tensor::rand_uniform([64, 96], -1.0, 1.0, 4);
    let bmat = Tensor::rand_uniform([96, 48], -1.0, 1.0, 5);
    group.bench_function("matmul", |b| {
        b.iter(|| ops::matmul(black_box(&a), black_box(&bmat)).expect("conformable"))
    });
    let at = Tensor::rand_uniform([96, 64], -1.0, 1.0, 6);
    group.bench_function("matmul_tn", |b| {
        b.iter(|| ops::matmul_tn(black_box(&at), black_box(&bmat)).expect("conformable"))
    });
    let bt = Tensor::rand_uniform([48, 96], -1.0, 1.0, 7);
    group.bench_function("matmul_nt", |b| {
        b.iter(|| ops::matmul_nt(black_box(&a), black_box(&bt)).expect("conformable"))
    });
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
