//! Fault-map generation and mask derivation at the paper's 256×256 scale.

use criterion::{criterion_group, criterion_main, Criterion};
use reduce_systolic::{affected_weights, fap_mask, FaultMap, FaultModel};
use std::hint::black_box;

fn bench_fault_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_map");
    group.bench_function("generate_random_256x256_2pct", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            FaultMap::generate(256, 256, 0.02, FaultModel::Random, black_box(seed))
                .expect("valid rate")
        })
    });
    group.bench_function("generate_clustered_256x256_2pct", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            FaultMap::generate(
                256,
                256,
                0.02,
                FaultModel::Clustered {
                    clusters: 4,
                    sigma: 12.0,
                },
                black_box(seed),
            )
            .expect("valid rate")
        })
    });

    let map = FaultMap::generate(256, 256, 0.02, FaultModel::Random, 9).expect("valid rate");
    // VGG11 conv5: (512, 4608) GEMM weights.
    group.bench_function("fap_mask_vgg_conv5", |b| {
        b.iter(|| fap_mask(512, 4608, black_box(&map)).expect("nonzero dims"))
    });
    group.bench_function("affected_weights_closed_form", |b| {
        b.iter(|| affected_weights(512, 4608, black_box(&map)))
    });
    group.finish();
}

criterion_group!(benches, bench_fault_map);
criterion_main!(benches);
