//! Cycle-model evaluation cost for full-network cost accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use reduce_core::{ModelSpec, Workbench};
use reduce_systolic::CostModel;
use std::hint::black_box;

fn bench_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("systolic_cost");
    let cm = CostModel::paper();
    let wb = Workbench::paper_scale(500, 500, 1);
    let shapes = wb.model.gemm_shapes(32).expect("valid spec");

    group.bench_function("vgg_nano_epoch_cycles", |b| {
        b.iter(|| cm.epoch_cycles(black_box(&shapes), 500, 32).expect("valid"))
    });

    let full = ModelSpec::Vgg(reduce_nn::models::VggConfig::full(10));
    let full_shapes = full.gemm_shapes(128).expect("valid spec");
    group.bench_function("vgg11_full_epoch_cycles", |b| {
        b.iter(|| {
            cm.epoch_cycles(black_box(&full_shapes), 50_000, 128)
                .expect("valid")
        })
    });

    group.bench_function("gemm_shapes_derivation", |b| {
        b.iter(|| wb.model.gemm_shapes(black_box(32)).expect("valid spec"))
    });
    group.finish();
}

criterion_group!(benches, bench_cost);
criterion_main!(benches);
