//! O(1) CoW snapshots vs deep state copies — the memory-model claim behind
//! the zero-copy model lifecycle.
//!
//! `Sequential::snapshot`/`restore` bump reference counts on the shared
//! copy-on-write storage, so their cost is independent of parameter count
//! and byte volume; the deep-copy baseline (what snapshotting cost before
//! the CoW storage landed) scales with model size. Benched on both the
//! toy MLP and the paper-scale nano-VGG so the size-independence is
//! visible: snapshot time stays flat while deep-copy time grows with the
//! parameter count.

use criterion::{criterion_group, criterion_main, Criterion};
use reduce_core::Workbench;
use reduce_nn::Sequential;
use reduce_tensor::Tensor;
use std::hint::black_box;

fn deep_state_copy(model: &Sequential) -> Vec<(String, Tensor)> {
    model
        .state_dict()
        .into_iter()
        .map(|(name, t)| {
            let copy = Tensor::from_vec(t.data().to_vec(), t.dims().to_vec()).expect("same volume");
            (name, copy)
        })
        .collect()
}

fn bench_snapshot_vs_clone(c: &mut Criterion) {
    let toy = Workbench::toy(1);
    let vgg = Workbench::paper_scale(32, 32, 1);
    let models = [("toy_mlp", &toy), ("nano_vgg", &vgg)];

    for (name, wb) in models {
        let model = wb.model.build(wb.seed).expect("valid spec");
        let mut group = c.benchmark_group(&format!("snapshot_vs_clone/{name}"));

        group.bench_function("cow_snapshot", |b| b.iter(|| black_box(&model).snapshot()));

        group.bench_function("cow_snapshot_and_restore", |b| {
            let snapshot = model.snapshot();
            let mut target = wb.model.build(wb.seed).expect("valid spec");
            b.iter(|| {
                target
                    .restore(black_box(&snapshot))
                    .expect("matching architecture")
            })
        });

        group.bench_function("deep_state_copy", |b| {
            b.iter(|| deep_state_copy(black_box(&model)))
        });

        group.bench_function("deep_copy_and_load", |b| {
            let state = deep_state_copy(&model);
            let mut target = wb.model.build(wb.seed).expect("valid spec");
            b.iter(|| {
                target
                    .load_state_dict(black_box(&state))
                    .expect("matching architecture")
            })
        });

        group.finish();
    }
}

criterion_group!(benches, bench_snapshot_vs_clone);
criterion_main!(benches);
