//! One resilience-characterisation probe: mask a pre-trained model with a
//! fresh fault map and evaluate it (the unit of work Step ① repeats
//! `rates × repeats` times).

use criterion::{criterion_group, criterion_main, Criterion};
use reduce_core::{FatRunner, Mitigation, StopRule, Workbench};
use reduce_systolic::{FaultMap, FaultModel};
use std::hint::black_box;

fn bench_probe(c: &mut Criterion) {
    let wb = Workbench::toy(1);
    let (rows, cols) = wb.array_dims();
    let pretrained = wb.pretrain(10).expect("valid workbench");
    let runner = FatRunner::new(wb).expect("valid workbench");
    let map = FaultMap::generate(rows, cols, 0.15, FaultModel::Random, 3).expect("valid rate");

    let mut group = c.benchmark_group("resilience_probe");
    group.sample_size(20);
    group.bench_function("mask_and_evaluate", |b| {
        b.iter(|| {
            runner
                .run(
                    black_box(&pretrained),
                    black_box(&map),
                    0,
                    StopRule::Exact,
                    Mitigation::Fap,
                    0,
                )
                .expect("valid run")
        })
    });
    group.bench_function("mask_evaluate_one_fat_epoch", |b| {
        b.iter(|| {
            runner
                .run(
                    black_box(&pretrained),
                    black_box(&map),
                    1,
                    StopRule::Exact,
                    Mitigation::Fap,
                    0,
                )
                .expect("valid run")
        })
    });
    group.bench_function("fam_mask_and_evaluate", |b| {
        b.iter(|| {
            runner
                .run(
                    black_box(&pretrained),
                    black_box(&map),
                    0,
                    StopRule::Exact,
                    Mitigation::Fam,
                    0,
                )
                .expect("valid run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);
