//! Training-step cost: masked vs unmasked epochs on the toy workbench —
//! the per-epoch price every policy's "epochs" currency converts to.

use criterion::{criterion_group, criterion_main, Criterion};
use reduce_core::Workbench;
use reduce_systolic::{fap_mask, FaultMap, FaultModel};
use std::hint::black_box;

fn bench_train_step(c: &mut Criterion) {
    let wb = Workbench::toy(1);
    let (train, _) = wb.datasets().expect("valid workbench");
    let mut group = c.benchmark_group("train_step");
    group.sample_size(20);

    group.bench_function("toy_epoch_unmasked", |b| {
        let mut model = wb.model.build(wb.seed).expect("valid spec");
        let mut trainer = wb.trainer(0);
        b.iter(|| {
            trainer
                .train_epoch(&mut model, black_box(train.features()), train.labels())
                .expect("valid data")
        })
    });

    group.bench_function("toy_epoch_masked_20pct", |b| {
        let mut model = wb.model.build(wb.seed).expect("valid spec");
        let map = FaultMap::generate(8, 8, 0.2, FaultModel::Random, 2).expect("valid rate");
        let masks: Vec<_> = model
            .weight_params()
            .iter()
            .map(|p| {
                let d = p.value().dims();
                Some(fap_mask(d[0], d[1], &map).expect("nonzero dims"))
            })
            .collect();
        model.set_weight_masks(&masks).expect("count matches");
        let mut trainer = wb.fat_trainer(0);
        b.iter(|| {
            trainer
                .train_epoch(&mut model, black_box(train.features()), train.labels())
                .expect("valid data")
        })
    });

    group.bench_function("toy_evaluate", |b| {
        let mut model = wb.model.build(wb.seed).expect("valid spec");
        b.iter(|| {
            wb.evaluate(&mut model, black_box(&train))
                .expect("valid data")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_train_step);
criterion_main!(benches);
