//! Allocating vs workspace-reusing GEMM: `matmul` vs `matmul_into`.
//!
//! The `_into` variants write into a caller-provided output tensor, which
//! is how the nn layers keep steady-state training epochs allocation-free:
//! the output buffer comes from the shape-keyed `Workspace` arena instead
//! of a fresh heap allocation per step. This bench isolates the per-call
//! cost of that allocation (and the CoW uniqueness check on the reused
//! output) for all three GEMM orientations.

use criterion::{criterion_group, criterion_main, Criterion};
use reduce_tensor::ops::gemm::{packed_into, reference, GemmVariant};
use reduce_tensor::{ops, Tensor};
use std::hint::black_box;

fn bench_matmul_into_vs_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_into_vs_matmul");
    let a = Tensor::rand_uniform([64, 96], -1.0, 1.0, 1);
    let b = Tensor::rand_uniform([96, 48], -1.0, 1.0, 2);

    group.bench_function("matmul_alloc", |bch| {
        bch.iter(|| ops::matmul(black_box(&a), black_box(&b)).expect("conformable"))
    });
    group.bench_function("matmul_into_reused", |bch| {
        let mut out = Tensor::zeros([64, 48]);
        bch.iter(|| {
            ops::matmul_into(black_box(&a), black_box(&b), &mut out).expect("conformable");
        })
    });

    let at = Tensor::rand_uniform([96, 64], -1.0, 1.0, 3);
    group.bench_function("matmul_tn_alloc", |bch| {
        bch.iter(|| ops::matmul_tn(black_box(&at), black_box(&b)).expect("conformable"))
    });
    group.bench_function("matmul_tn_into_reused", |bch| {
        let mut out = Tensor::zeros([64, 48]);
        bch.iter(|| {
            ops::matmul_tn_into(black_box(&at), black_box(&b), &mut out).expect("conformable");
        })
    });

    let bt = Tensor::rand_uniform([48, 96], -1.0, 1.0, 4);
    group.bench_function("matmul_nt_alloc", |bch| {
        bch.iter(|| ops::matmul_nt(black_box(&a), black_box(&bt)).expect("conformable"))
    });
    group.bench_function("matmul_nt_into_reused", |bch| {
        let mut out = Tensor::zeros([64, 48]);
        bch.iter(|| {
            ops::matmul_nt_into(black_box(&a), black_box(&bt), &mut out).expect("conformable");
        })
    });
    group.finish();
}

/// Blocked baseline vs the packed register-blocked kernel on a 256³
/// product — the acceptance shape for the packed GEMM work. The public
/// `matmul_into` dispatches to the packed path here, so the third entry
/// shows what production callers actually get.
fn bench_packed_vs_blocked(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_packed_vs_blocked_256");
    let a = Tensor::rand_uniform([256, 256], -1.0, 1.0, 5);
    let b = Tensor::rand_uniform([256, 256], -1.0, 1.0, 6);
    let mut out = Tensor::zeros([256, 256]);

    group.bench_function("blocked_256", |bch| {
        bch.iter(|| {
            reference::blocked_into(GemmVariant::NN, black_box(&a), black_box(&b), &mut out)
                .expect("conformable");
        })
    });
    group.bench_function("packed_256", |bch| {
        bch.iter(|| {
            packed_into(GemmVariant::NN, black_box(&a), black_box(&b), &mut out)
                .expect("conformable");
        })
    });
    group.bench_function("matmul_into_dispatched_256", |bch| {
        bch.iter(|| {
            ops::matmul_into(black_box(&a), black_box(&b), &mut out).expect("conformable");
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul_into_vs_matmul,
    bench_packed_vs_blocked
);
criterion_main!(benches);
