//! # reduce-bench
//!
//! Experiment drivers for the Reduce reproduction: the figure-regeneration
//! binaries (`fig2`, `fig3`, `ablation`) and the Criterion micro-benchmarks
//! share the presets and argument handling defined here.
//!
//! Every experiment runs at one of three [`Scale`]s:
//!
//! * `smoke` — the toy MLP workbench; seconds; used by CI and `--scale
//!   smoke`;
//! * `default` — the paper-scale nano-VGG workbench at sizes that finish in
//!   minutes on a laptop CPU;
//! * `full` — larger datasets/fleets for tighter statistics (tens of
//!   minutes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;

use reduce_core::artifact::{install_io_policy, FaultKind, FaultyIo, IoPolicy, IoPolicyGuard};
use reduce_core::exec::ChaosPolicy;
use reduce_core::telemetry::{Event, Observer};
use reduce_core::{Checkpoint, ExecConfig, ReduceError, ResilienceConfig, Workbench};
use reduce_systolic::{FaultModel, FleetConfig, RateDistribution};
use std::path::PathBuf;
use std::sync::Arc;

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Toy workbench, seconds.
    Smoke,
    /// Paper-scale workbench, minutes.
    #[default]
    Default,
    /// Paper-scale workbench, tens of minutes.
    Full,
}

impl Scale {
    /// Parses `smoke`/`default`/`full`.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] for anything else.
    pub fn parse(s: &str) -> Result<Self, ReduceError> {
        match s {
            "smoke" => Ok(Scale::Smoke),
            "default" => Ok(Scale::Default),
            "full" => Ok(Scale::Full),
            other => Err(ReduceError::InvalidConfig {
                what: format!("unknown scale {other:?} (expected smoke|default|full)"),
            }),
        }
    }

    /// The workbench this scale runs on.
    pub fn workbench(&self, seed: u64) -> Workbench {
        match self {
            Scale::Smoke => Workbench::toy(seed),
            Scale::Default => Workbench::paper_scale(500, 500, seed),
            Scale::Full => Workbench::paper_scale(1500, 1000, seed),
        }
    }

    /// Pre-training epochs for the fault-free baseline.
    pub fn pretrain_epochs(&self) -> usize {
        match self {
            Scale::Smoke => 15,
            Scale::Default => 40,
            Scale::Full => 60,
        }
    }

    /// The accuracy constraint (the paper uses 91 %).
    pub fn constraint(&self) -> f32 {
        match self {
            Scale::Smoke => 0.90,
            Scale::Default | Scale::Full => 0.91,
        }
    }

    /// The Step-① characterisation grid.
    ///
    /// # Panics
    ///
    /// Never — the preset parameters are statically valid; the builder
    /// result is unwrapped through a compile-time-known fallback.
    pub fn resilience_config(&self) -> ResilienceConfig {
        let builder = match self {
            Scale::Smoke => ResilienceConfig::builder()
                .max_rate(0.3)
                .points(4)
                .max_epochs(8)
                .repeats(2)
                .constraint(self.constraint()),
            Scale::Default => ResilienceConfig::builder()
                .fault_rates(vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30])
                .max_epochs(16)
                .repeats(5)
                .constraint(self.constraint()),
            Scale::Full => ResilienceConfig::builder()
                .fault_rates(vec![0.0, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30])
                .max_epochs(20)
                .repeats(5)
                .constraint(self.constraint()),
        };
        builder.build().unwrap_or_else(|_| {
            // The presets above are all valid; this branch is unreachable
            // but keeps the accessor infallible for callers.
            ResilienceConfig {
                fault_rates: vec![0.0],
                max_epochs: 1,
                repeats: 1,
                constraint: self.constraint(),
                fault_model: FaultModel::Random,
                strategy: Default::default(),
                seed: 0xC0FFEE,
            }
        })
    }

    /// The Fig. 3 fleet (the paper evaluates 100 chips).
    pub fn fleet_config(&self, array: (usize, usize), chips: Option<usize>) -> FleetConfig {
        let default_chips = match self {
            Scale::Smoke => 12,
            Scale::Default | Scale::Full => 100,
        };
        FleetConfig {
            chips: chips.unwrap_or(default_chips),
            rows: array.0,
            cols: array.1,
            rates: RateDistribution::Uniform { lo: 0.0, hi: 0.3 },
            model: FaultModel::Random,
            seed: 0xF1EE7,
        }
    }

    /// The fixed-policy epoch budgets compared in Fig. 3c–e
    /// (low / medium / high).
    pub fn fixed_budgets(&self) -> [usize; 3] {
        match self {
            Scale::Smoke => [1, 3, 8],
            Scale::Default => [1, 5, 12],
            Scale::Full => [1, 6, 16],
        }
    }
}

/// The fault-tolerance options shared by the experiment binaries; splice
/// into the `value_keys` of [`parse_args`].
///
/// * `--retries N` — per-job retry budget before quarantine (default 0);
/// * `--chaos-rate P` / `--chaos-seed S` — seeded deterministic fault
///   injection: each `(job, attempt)` fails with probability `P`;
/// * `--out DIR` (declared by each binary) — also journals completed jobs
///   to `DIR/journal.jsonl`;
/// * `--resume DIR` — replay `DIR/journal.jsonl`, run only missing jobs,
///   and rewrite the artifacts in `DIR` (conflicts with `--out`; pass the
///   same remaining flags as the interrupted run);
/// * `--halt-after N` — exit the process after `N` journal appends
///   (deterministic mid-run "kill" for crash testing);
/// * `--io-fault KIND@INDEX` / `--io-fault-seed S` — inject one storage
///   fault (`torn`, `short`, `enospc` or `rename-fail`) at the `INDEX`-th
///   artifact IO operation inside the run directory, after which the
///   backend stays offline — an ALICE-style crash point. The binary exits
///   with code 4 when the fault fires, or prints `io-fault: unfired` to
///   stderr when `INDEX` lies beyond the run's operation count.
pub const FAULT_VALUE_KEYS: [&str; 7] = [
    "--resume",
    "--retries",
    "--chaos-rate",
    "--chaos-seed",
    "--halt-after",
    "--io-fault",
    "--io-fault-seed",
];

/// Resolves the run directory from `--out` / `--resume`.
///
/// Returns `(dir, resuming)`: `--resume DIR` implies the run directory is
/// `DIR` and existing journal entries are replayed.
///
/// # Errors
///
/// Returns [`ReduceError::InvalidConfig`] when both `--out` and
/// `--resume` are given.
pub fn resolve_run_dir(args: &ParsedArgs) -> Result<(Option<PathBuf>, bool), ReduceError> {
    match (args.value("--out"), args.value("--resume")) {
        (Some(_), Some(_)) => Err(ReduceError::InvalidConfig {
            what: "--out conflicts with --resume (resume rewrites the artifacts in its own \
                   directory)"
                .to_string(),
        }),
        (Some(out), None) => Ok((Some(PathBuf::from(out)), false)),
        (None, Some(dir)) => Ok((Some(PathBuf::from(dir)), true)),
        (None, None) => Ok((None, false)),
    }
}

/// Applies `--retries` / `--chaos-rate` / `--chaos-seed` to an executor
/// config.
///
/// # Errors
///
/// Returns [`ReduceError::InvalidConfig`] for non-numeric values, a rate
/// outside `[0, 1]`, or `--chaos-seed` without `--chaos-rate`.
pub fn apply_fault_args(
    args: &ParsedArgs,
    mut exec: ExecConfig,
) -> Result<ExecConfig, ReduceError> {
    if let Some(s) = args.value("--retries") {
        let budget: u32 = s.parse().map_err(|_| ReduceError::InvalidConfig {
            what: format!("bad --retries value {s:?} (expected a count)"),
        })?;
        exec = exec.with_retry_budget(budget);
    }
    match (args.value("--chaos-rate"), args.value("--chaos-seed")) {
        (Some(rate), seed) => {
            let rate: f64 = rate.parse().map_err(|_| ReduceError::InvalidConfig {
                what: format!("bad --chaos-rate value {rate:?} (expected a probability)"),
            })?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(ReduceError::InvalidConfig {
                    what: format!("--chaos-rate {rate} not in [0, 1]"),
                });
            }
            let seed: u64 = match seed {
                Some(s) => s.parse().map_err(|_| ReduceError::InvalidConfig {
                    what: format!("bad --chaos-seed value {s:?} (expected a u64)"),
                })?,
                None => 0,
            };
            exec = exec.with_chaos(ChaosPolicy::seeded(seed, rate));
        }
        (None, Some(_)) => {
            return Err(ReduceError::InvalidConfig {
                what: "--chaos-seed without --chaos-rate has no effect".to_string(),
            })
        }
        (None, None) => {}
    }
    Ok(exec)
}

/// A deterministic storage fault armed from `--io-fault`, alive for the
/// duration of the run. Dropping it uninstalls the injection policy.
pub struct IoFault {
    _guard: IoPolicyGuard,
    /// The injection backend, for querying [`FaultyIo::fired`] /
    /// [`FaultyIo::ops_seen`] at exit.
    pub io: Arc<FaultyIo>,
    kind: FaultKind,
    index: u64,
}

/// Parses `--io-fault KIND@INDEX` (+ optional `--io-fault-seed S`) and
/// installs the fault-injecting IO policy, scoped to the run directory.
/// `None` when the flag is absent.
///
/// # Errors
///
/// Returns [`ReduceError::InvalidConfig`] for a malformed spec, a seed
/// without `--io-fault`, or `--io-fault` without a run directory.
pub fn install_io_fault(
    args: &ParsedArgs,
    dir: Option<&std::path::Path>,
) -> Result<Option<IoFault>, ReduceError> {
    let Some(spec) = args.value("--io-fault") else {
        if args.value("--io-fault-seed").is_some() {
            return Err(ReduceError::InvalidConfig {
                what: "--io-fault-seed without --io-fault has no effect".to_string(),
            });
        }
        return Ok(None);
    };
    let Some(dir) = dir else {
        return Err(ReduceError::InvalidConfig {
            what: "--io-fault needs a run directory (pass --out or --resume)".to_string(),
        });
    };
    let (kind, index) = spec
        .split_once('@')
        .ok_or_else(|| ReduceError::InvalidConfig {
            what: format!("bad --io-fault value {spec:?} (expected KIND@INDEX)"),
        })?;
    let kind = FaultKind::parse(kind)?;
    let index: u64 = index.parse().map_err(|_| ReduceError::InvalidConfig {
        what: format!("bad --io-fault index in {spec:?} (expected a count)"),
    })?;
    let seed: u64 = match args.value("--io-fault-seed") {
        Some(s) => s.parse().map_err(|_| ReduceError::InvalidConfig {
            what: format!("bad --io-fault-seed value {s:?} (expected a u64)"),
        })?,
        None => 0xC0FFEE,
    };
    let io = Arc::new(FaultyIo::armed(dir, seed, index, kind));
    let guard = install_io_policy(IoPolicy::Faulty(io.clone()));
    Ok(Some(IoFault {
        _guard: guard,
        io,
        kind,
        index,
    }))
}

/// Converts a run's outcome plus its armed [`IoFault`] into the process
/// exit code: **4** when the injected fault fired (the simulated crash —
/// whatever error it surfaced as), **0** on success, **1** on an ordinary
/// error. An armed-but-unfired fault prints `io-fault: unfired` to stderr
/// so sweep harnesses know the op index lies beyond the run.
pub fn finish_io_fault(
    result: Result<(), Box<dyn std::error::Error>>,
    fault: Option<IoFault>,
) -> std::process::ExitCode {
    if let Some(fault) = &fault {
        if fault.io.fired() {
            eprintln!(
                "io-fault: injected {} at op {} fired; exiting as crashed",
                fault.kind.name(),
                fault.index
            );
            return std::process::ExitCode::from(4);
        }
        eprintln!(
            "io-fault: unfired ({} beyond the run's {} artifact IO op(s))",
            fault.index,
            fault.io.ops_seen()
        );
    }
    match result {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::from(1)
        }
    }
}

/// Routes journal self-healing telemetry to stderr. Heal events must
/// never reach `run_log.jsonl`: the run log is byte-diffed against
/// uninterrupted reference runs in CI, and healing is a property of the
/// crash being recovered from, not of the workload.
pub struct HealNotices;

impl Observer for HealNotices {
    fn on_event(&self, event: &Event) {
        match event {
            Event::ShardTruncated {
                shard,
                kept,
                dropped_bytes,
            } => eprintln!(
                "journal heal: shard {shard} truncated to {kept} record(s) \
                 ({dropped_bytes} B of damaged tail dropped)"
            ),
            Event::RecordDropped { shard, record } => {
                eprintln!("journal heal: dropped shard {shard} record {record}");
            }
            _ => {}
        }
    }
}

/// Opens the journal for a run directory: fresh for `--out`, replayed for
/// `--resume`, with `--halt-after` applied. `None` when the run has no
/// directory (nothing to checkpoint into). Resume verifies the journal
/// and self-heals tail damage, reporting heals on stderr via
/// [`HealNotices`].
///
/// # Errors
///
/// Returns [`ReduceError::InvalidConfig`] for a malformed journal or a
/// non-numeric `--halt-after`, and [`ReduceError::JournalCorrupt`] for
/// damage `journal-tool repair` must clear first.
pub fn open_journal(
    args: &ParsedArgs,
    dir: Option<&std::path::Path>,
    resuming: bool,
) -> Result<Option<Checkpoint>, ReduceError> {
    let Some(dir) = dir else {
        if args.value("--halt-after").is_some() {
            return Err(ReduceError::InvalidConfig {
                what: "--halt-after needs a journal (pass --out or --resume)".to_string(),
            });
        }
        return Ok(None);
    };
    let path = dir.join("journal.jsonl");
    let checkpoint = if resuming {
        Checkpoint::resume_observed(&path, &HealNotices)?
    } else {
        Checkpoint::create(&path)
    };
    if let Some(s) = args.value("--halt-after") {
        let n: usize = s.parse().map_err(|_| ReduceError::InvalidConfig {
            what: format!("bad --halt-after value {s:?} (expected a count)"),
        })?;
        checkpoint.set_halt_after(n);
    }
    Ok(Some(checkpoint))
}

/// Strictly parsed command-line arguments for the experiment binaries.
///
/// Produced by [`parse_args`], which — unlike the silent helpers it
/// replaced — rejects unknown `--flags`, so a typo like `--treads 4` is
/// an error instead of an accidentally sequential run.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    values: Vec<(String, String)>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl ParsedArgs {
    /// The value of `--key value` / `--key=value`, if present.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the bare flag `key` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// The `i`-th positional argument, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Parses `--threads N`: defaults to `1` (sequential); `0` asks the
    /// executor to auto-size from the available hardware parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] for a non-numeric value or
    /// a count above [`MAX_THREADS`] — a mistyped `--threads 40000`
    /// should fail here, not when the executor tries to spawn that many
    /// workers.
    pub fn threads(&self) -> Result<usize, ReduceError> {
        match self.value("--threads") {
            Some(s) => {
                let n: usize = s.parse().map_err(|_| ReduceError::InvalidConfig {
                    what: format!("bad --threads value {s:?} (expected a count; 0 = auto)"),
                })?;
                if n > MAX_THREADS {
                    return Err(ReduceError::InvalidConfig {
                        what: format!(
                            "--threads {n} out of range (0 = auto, at most {MAX_THREADS})"
                        ),
                    });
                }
                Ok(n)
            }
            None => Ok(1),
        }
    }
}

/// Upper bound accepted by [`ParsedArgs::threads`]: generous for any
/// machine this framework targets, small enough that a mistyped value is
/// caught at the command line.
pub const MAX_THREADS: usize = 512;

/// Parses an argument list against an explicit grammar: `value_keys` take
/// a value (`--key value` or `--key=value`), `flag_keys` are bare
/// booleans, and at most `max_positionals` non-flag arguments are
/// accepted. Anything else — an unknown `--option`, a value-less value
/// key, a repeated option (first-wins lookups would otherwise silently
/// drop the later value), or an extra positional — is an error.
///
/// # Errors
///
/// Returns [`ReduceError::InvalidConfig`] naming the offending argument
/// and listing the accepted options.
pub fn parse_args(
    raw: &[String],
    value_keys: &[&str],
    flag_keys: &[&str],
    max_positionals: usize,
) -> Result<ParsedArgs, ReduceError> {
    let grammar = || {
        let mut opts: Vec<&str> = value_keys.iter().chain(flag_keys).copied().collect();
        opts.sort_unstable();
        opts.join(", ")
    };
    let mut parsed = ParsedArgs::default();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        if let Some(rest) = arg.strip_prefix("--") {
            let (key_body, inline) = match rest.split_once('=') {
                Some((k, v)) => (k, Some(v)),
                None => (rest, None),
            };
            let key = format!("--{key_body}");
            if value_keys.contains(&key.as_str()) {
                if parsed.values.iter().any(|(k, _)| *k == key) {
                    return Err(ReduceError::InvalidConfig {
                        what: format!("duplicate option {key} (accepted: {})", grammar()),
                    });
                }
                let value = match inline {
                    Some(v) => v.to_string(),
                    None => it
                        .next()
                        .cloned()
                        .ok_or_else(|| ReduceError::InvalidConfig {
                            what: format!("{key} needs a value"),
                        })?,
                };
                parsed.values.push((key, value));
            } else if flag_keys.contains(&key.as_str()) {
                if inline.is_some() {
                    return Err(ReduceError::InvalidConfig {
                        what: format!("{key} is a flag and takes no value"),
                    });
                }
                if parsed.flags.contains(&key) {
                    return Err(ReduceError::InvalidConfig {
                        what: format!("duplicate option {key} (accepted: {})", grammar()),
                    });
                }
                parsed.flags.push(key);
            } else {
                return Err(ReduceError::InvalidConfig {
                    what: format!("unknown option {arg:?} (accepted: {})", grammar()),
                });
            }
        } else {
            if parsed.positionals.len() >= max_positionals {
                return Err(ReduceError::InvalidConfig {
                    what: format!("unexpected argument {arg:?} (accepted: {})", grammar()),
                });
            }
            parsed.positionals.push(arg.clone());
        }
    }
    Ok(parsed)
}

/// Rejects a command line that combines `key` with any option it
/// excludes. `excluded` lists the full exclusion set as
/// `(option, was_set)` pairs; the error mirrors the accepted-option
/// grammar of [`parse_args`] by naming every mutually exclusive option
/// (sorted, comma-joined), not just the first collision — so the user
/// learns the whole rule from one failure.
///
/// # Errors
///
/// Returns [`ReduceError::InvalidConfig`] when `key_set` and at least
/// one excluded option are both present.
pub fn reject_conflicts(
    key: &str,
    key_set: bool,
    excluded: &[(&str, bool)],
) -> Result<(), ReduceError> {
    if !key_set {
        return Ok(());
    }
    let hit: Vec<&str> = excluded
        .iter()
        .filter(|(_, set)| *set)
        .map(|(k, _)| *k)
        .collect();
    if hit.is_empty() {
        return Ok(());
    }
    let mut set: Vec<&str> = excluded.iter().map(|(k, _)| *k).collect();
    set.sort_unstable();
    Err(ReduceError::InvalidConfig {
        what: format!(
            "{key} conflicts with {} (mutually exclusive with {key}: {})",
            hit.join(", "),
            set.join(", ")
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke").expect("known"), Scale::Smoke);
        assert_eq!(Scale::parse("default").expect("known"), Scale::Default);
        assert_eq!(Scale::parse("full").expect("known"), Scale::Full);
        assert!(Scale::parse("big").is_err());
    }

    #[test]
    fn presets_are_consistent() {
        for scale in [Scale::Smoke, Scale::Default, Scale::Full] {
            let wb = scale.workbench(1);
            let rc = scale.resilience_config();
            assert!(!rc.fault_rates.is_empty());
            assert!(rc.max_epochs > 0);
            assert!(scale.constraint() > 0.5);
            let fc = scale.fleet_config(wb.array_dims(), None);
            assert!(fc.chips > 0);
            assert_eq!((fc.rows, fc.cols), wb.array_dims());
            let budgets = scale.fixed_budgets();
            assert!(budgets[0] < budgets[1] && budgets[1] < budgets[2]);
        }
    }

    fn to_args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// The fig3 streaming exclusion set, with only `hit` present.
    fn fleet_size_conflict(hit: &str) -> ReduceError {
        reject_conflicts(
            "--fleet-size",
            true,
            &[
                ("--chips", hit == "--chips"),
                ("--csv", hit == "--csv"),
                ("--per-chip", hit == "--per-chip"),
            ],
        )
        .expect_err("conflicting pair must be rejected")
    }

    #[test]
    fn fleet_size_conflicts_with_chips() {
        let err = fleet_size_conflict("--chips").to_string();
        assert!(err.contains("--fleet-size conflicts with --chips"), "{err}");
        assert!(
            err.contains("mutually exclusive with --fleet-size: --chips, --csv, --per-chip"),
            "error must name the full exclusion set: {err}"
        );
    }

    #[test]
    fn fleet_size_conflicts_with_per_chip() {
        let err = fleet_size_conflict("--per-chip").to_string();
        assert!(
            err.contains("--fleet-size conflicts with --per-chip"),
            "{err}"
        );
        assert!(
            err.contains("mutually exclusive with --fleet-size: --chips, --csv, --per-chip"),
            "error must name the full exclusion set: {err}"
        );
    }

    #[test]
    fn fleet_size_conflicts_with_csv() {
        let err = fleet_size_conflict("--csv").to_string();
        assert!(err.contains("--fleet-size conflicts with --csv"), "{err}");
        assert!(
            err.contains("mutually exclusive with --fleet-size: --chips, --csv, --per-chip"),
            "error must name the full exclusion set: {err}"
        );
    }

    #[test]
    fn strategy_conflicts_with_policy() {
        let err = reject_conflicts("--strategy", true, &[("--policy", true)])
            .expect_err("conflicting pair must be rejected")
            .to_string();
        assert!(err.contains("--strategy conflicts with --policy"), "{err}");
        assert!(
            err.contains("mutually exclusive with --strategy: --policy"),
            "{err}"
        );
    }

    #[test]
    fn non_conflicting_combinations_pass() {
        reject_conflicts("--fleet-size", false, &[("--chips", true), ("--csv", true)])
            .expect("exclusions only apply when the key is set");
        reject_conflicts(
            "--fleet-size",
            true,
            &[("--chips", false), ("--csv", false)],
        )
        .expect("no excluded option present");
    }

    #[test]
    fn parse_args_accepts_the_declared_grammar() {
        let parsed = parse_args(
            &to_args(&["--scale", "smoke", "--csv=out.csv", "--flag", "study"]),
            &["--scale", "--csv"],
            &["--flag"],
            1,
        )
        .expect("valid arguments");
        assert_eq!(parsed.value("--scale"), Some("smoke"));
        assert_eq!(parsed.value("--csv"), Some("out.csv"));
        assert_eq!(parsed.value("--missing"), None);
        assert!(parsed.flag("--flag"));
        assert!(!parsed.flag("--other"));
        assert_eq!(parsed.positional(0), Some("study"));
        assert_eq!(parsed.positional(1), None);
    }

    #[test]
    fn parse_args_rejects_unknown_and_malformed_options() {
        // The typo that motivated strict parsing: --treads must error.
        let err = parse_args(&to_args(&["--treads", "4"]), &["--threads"], &[], 0)
            .expect_err("typo rejected");
        assert!(err.to_string().contains("--treads"));
        assert!(err.to_string().contains("--threads"), "lists accepted opts");
        // A value key with no value.
        assert!(parse_args(&to_args(&["--scale"]), &["--scale"], &[], 0).is_err());
        // A flag given a value.
        assert!(parse_args(&to_args(&["--flag=x"]), &[], &["--flag"], 0).is_err());
        // Too many positionals.
        assert!(parse_args(&to_args(&["a", "b"]), &[], &[], 1).is_err());
    }

    #[test]
    fn parse_args_rejects_duplicate_options() {
        // Lookups are first-wins, so a repeated option would silently drop
        // the later value; it must be an error in the standard format.
        let err = parse_args(
            &to_args(&["--scale", "smoke", "--scale", "full"]),
            &["--scale", "--threads"],
            &["--flag"],
            0,
        )
        .expect_err("duplicate value key rejected");
        assert!(err.to_string().contains("duplicate option --scale"));
        assert!(err.to_string().contains("accepted:"), "lists accepted opts");
        assert!(err.to_string().contains("--threads"), "lists accepted opts");
        // Mixed spellings (`--k v` then `--k=v`) are still duplicates.
        assert!(parse_args(
            &to_args(&["--scale", "smoke", "--scale=full"]),
            &["--scale"],
            &[],
            0
        )
        .is_err());
        // Repeated bare flags too.
        let err = parse_args(&to_args(&["--flag", "--flag"]), &[], &["--flag"], 0)
            .expect_err("duplicate flag rejected");
        assert!(err.to_string().contains("duplicate option --flag"));
        assert!(err.to_string().contains("accepted:"));
    }

    #[test]
    fn threads_arg() {
        let parse =
            |v: &[&str]| parse_args(&to_args(v), &["--threads"], &[], 0).and_then(|p| p.threads());
        assert_eq!(parse(&[]).expect("default"), 1);
        assert_eq!(parse(&["--threads", "4"]).expect("numeric"), 4);
        assert_eq!(parse(&["--threads", "0"]).expect("auto"), 0);
        assert_eq!(parse(&["--threads=2"]).expect("inline"), 2);
        assert!(parse(&["--threads", "many"]).is_err());
        // Range bound: the top of the range is fine, overflow is not.
        assert_eq!(parse(&["--threads", "512"]).expect("at bound"), MAX_THREADS);
        let err = parse(&["--threads", "40000"]).expect_err("overflow rejected");
        assert!(err.to_string().contains("out of range"));
        assert!(err.to_string().contains("40000"));
    }

    #[test]
    fn fleet_chip_override() {
        let fc = Scale::Default.fleet_config((32, 32), Some(7));
        assert_eq!(fc.chips, 7);
    }

    fn fault_parse(v: &[&str]) -> Result<ParsedArgs, ReduceError> {
        let mut keys = vec!["--out"];
        keys.extend(FAULT_VALUE_KEYS);
        parse_args(&to_args(v), &keys, &[], 0)
    }

    #[test]
    fn fault_args_wire_the_executor() {
        let args = fault_parse(&["--retries", "2", "--chaos-rate", "0.5", "--chaos-seed", "9"])
            .expect("valid");
        let exec = apply_fault_args(&args, ExecConfig::default()).expect("valid values");
        assert_eq!(exec.retry_budget(), 2);
        assert!(exec.chaos().is_some());
        // Defaults: no retries, no chaos.
        let exec = apply_fault_args(&fault_parse(&[]).expect("valid"), ExecConfig::default())
            .expect("empty is fine");
        assert_eq!(exec.retry_budget(), 0);
        assert!(exec.chaos().is_none());
        // Malformed values and a seed without a rate are errors.
        let bad = fault_parse(&["--retries", "many"]).expect("parses as strings");
        assert!(apply_fault_args(&bad, ExecConfig::default()).is_err());
        let bad = fault_parse(&["--chaos-rate", "1.5"]).expect("parses as strings");
        assert!(apply_fault_args(&bad, ExecConfig::default()).is_err());
        let bad = fault_parse(&["--chaos-seed", "9"]).expect("parses as strings");
        assert!(apply_fault_args(&bad, ExecConfig::default()).is_err());
    }

    #[test]
    fn resume_conflicts_with_out() {
        let args = fault_parse(&["--out", "a", "--resume", "b"]).expect("parses as strings");
        assert!(resolve_run_dir(&args).is_err());
        let (dir, resuming) = resolve_run_dir(&fault_parse(&["--resume", "b"]).expect("valid"))
            .expect("resume alone is fine");
        assert_eq!(dir, Some(PathBuf::from("b")));
        assert!(resuming);
        let (dir, resuming) = resolve_run_dir(&fault_parse(&["--out", "a"]).expect("valid"))
            .expect("out alone is fine");
        assert_eq!(dir, Some(PathBuf::from("a")));
        assert!(!resuming);
    }

    #[test]
    fn io_fault_args_parse_and_validate() {
        use std::path::Path;
        // Well-formed spec with a run dir installs the policy.
        let args = fault_parse(&["--io-fault", "torn@3", "--io-fault-seed", "7"]).expect("valid");
        let fault = install_io_fault(&args, Some(Path::new("/tmp/run")))
            .expect("valid spec")
            .expect("installed");
        assert!(!fault.io.fired());
        drop(fault); // uninstalls; later tests may install their own
                     // Every documented kind parses.
        for kind in ["torn", "short", "enospc", "rename-fail"] {
            let args = fault_parse(&["--io-fault", &format!("{kind}@0")]).expect("valid");
            assert!(install_io_fault(&args, Some(Path::new("/tmp/run")))
                .expect("valid spec")
                .is_some());
        }
        // Absent flag is a no-op.
        let args = fault_parse(&[]).expect("valid");
        assert!(install_io_fault(&args, Some(Path::new("/tmp/run")))
            .expect("absent is fine")
            .is_none());
        // Malformed specs are errors.
        for bad in ["torn", "torn@", "torn@many", "sideways@3", "@3"] {
            let args = fault_parse(&["--io-fault", bad]).expect("parses as strings");
            assert!(
                install_io_fault(&args, Some(Path::new("/tmp/run"))).is_err(),
                "{bad:?} must be rejected"
            );
        }
        // A seed without a fault, and a fault without a run dir.
        let args = fault_parse(&["--io-fault-seed", "7"]).expect("parses as strings");
        assert!(install_io_fault(&args, Some(Path::new("/tmp/run"))).is_err());
        let args = fault_parse(&["--io-fault", "torn@3"]).expect("parses as strings");
        assert!(install_io_fault(&args, None).is_err());
    }

    #[test]
    fn halt_after_needs_a_journal() {
        let args = fault_parse(&["--halt-after", "3"]).expect("parses as strings");
        assert!(open_journal(&args, None, false).is_err());
        let args = fault_parse(&[]).expect("valid");
        assert!(open_journal(&args, None, false)
            .expect("no dir, no journal")
            .is_none());
    }
}
