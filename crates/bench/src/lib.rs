//! # reduce-bench
//!
//! Experiment drivers for the Reduce reproduction: the figure-regeneration
//! binaries (`fig2`, `fig3`, `ablation`) and the Criterion micro-benchmarks
//! share the presets and argument handling defined here.
//!
//! Every experiment runs at one of three [`Scale`]s:
//!
//! * `smoke` — the toy MLP workbench; seconds; used by CI and `--scale
//!   smoke`;
//! * `default` — the paper-scale nano-VGG workbench at sizes that finish in
//!   minutes on a laptop CPU;
//! * `full` — larger datasets/fleets for tighter statistics (tens of
//!   minutes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use reduce_core::{ReduceError, ResilienceConfig, Workbench};
use reduce_systolic::{FaultModel, FleetConfig, RateDistribution};

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Toy workbench, seconds.
    Smoke,
    /// Paper-scale workbench, minutes.
    #[default]
    Default,
    /// Paper-scale workbench, tens of minutes.
    Full,
}

impl Scale {
    /// Parses `smoke`/`default`/`full`.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] for anything else.
    pub fn parse(s: &str) -> Result<Self, ReduceError> {
        match s {
            "smoke" => Ok(Scale::Smoke),
            "default" => Ok(Scale::Default),
            "full" => Ok(Scale::Full),
            other => Err(ReduceError::InvalidConfig {
                what: format!("unknown scale {other:?} (expected smoke|default|full)"),
            }),
        }
    }

    /// The workbench this scale runs on.
    pub fn workbench(&self, seed: u64) -> Workbench {
        match self {
            Scale::Smoke => Workbench::toy(seed),
            Scale::Default => Workbench::paper_scale(500, 500, seed),
            Scale::Full => Workbench::paper_scale(1500, 1000, seed),
        }
    }

    /// Pre-training epochs for the fault-free baseline.
    pub fn pretrain_epochs(&self) -> usize {
        match self {
            Scale::Smoke => 15,
            Scale::Default => 40,
            Scale::Full => 60,
        }
    }

    /// The accuracy constraint (the paper uses 91 %).
    pub fn constraint(&self) -> f32 {
        match self {
            Scale::Smoke => 0.90,
            Scale::Default | Scale::Full => 0.91,
        }
    }

    /// The Step-① characterisation grid.
    pub fn resilience_config(&self) -> ResilienceConfig {
        match self {
            Scale::Smoke => ResilienceConfig {
                repeats: 2,
                ..ResilienceConfig::grid(0.3, 4, 8, self.constraint())
            },
            Scale::Default => ResilienceConfig {
                fault_rates: vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30],
                max_epochs: 16,
                repeats: 5,
                constraint: self.constraint(),
                fault_model: FaultModel::Random,
                strategy: Default::default(),
                seed: 0xC0FFEE,
            },
            Scale::Full => ResilienceConfig {
                fault_rates: vec![0.0, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30],
                max_epochs: 20,
                repeats: 5,
                constraint: self.constraint(),
                fault_model: FaultModel::Random,
                strategy: Default::default(),
                seed: 0xC0FFEE,
            },
        }
    }

    /// The Fig. 3 fleet (the paper evaluates 100 chips).
    pub fn fleet_config(&self, array: (usize, usize), chips: Option<usize>) -> FleetConfig {
        let default_chips = match self {
            Scale::Smoke => 12,
            Scale::Default | Scale::Full => 100,
        };
        FleetConfig {
            chips: chips.unwrap_or(default_chips),
            rows: array.0,
            cols: array.1,
            rates: RateDistribution::Uniform { lo: 0.0, hi: 0.3 },
            model: FaultModel::Random,
            seed: 0xF1EE7,
        }
    }

    /// The fixed-policy epoch budgets compared in Fig. 3c–e
    /// (low / medium / high).
    pub fn fixed_budgets(&self) -> [usize; 3] {
        match self {
            Scale::Smoke => [1, 3, 8],
            Scale::Default => [1, 5, 12],
            Scale::Full => [1, 6, 16],
        }
    }
}

/// Extracts `--key value` from an argument list (first occurrence).
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Parses `--threads N` for the experiment binaries: defaults to `1`
/// (sequential), and `0` asks the executor to auto-size from the
/// available hardware parallelism.
///
/// # Errors
///
/// Returns [`ReduceError::InvalidConfig`] for a non-numeric value.
pub fn arg_threads(args: &[String]) -> Result<usize, ReduceError> {
    match arg_value(args, "--threads") {
        Some(s) => s.parse().map_err(|_| ReduceError::InvalidConfig {
            what: format!("bad --threads value {s:?} (expected a count; 0 = auto)"),
        }),
        None => Ok(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke").expect("known"), Scale::Smoke);
        assert_eq!(Scale::parse("default").expect("known"), Scale::Default);
        assert_eq!(Scale::parse("full").expect("known"), Scale::Full);
        assert!(Scale::parse("big").is_err());
    }

    #[test]
    fn presets_are_consistent() {
        for scale in [Scale::Smoke, Scale::Default, Scale::Full] {
            let wb = scale.workbench(1);
            let rc = scale.resilience_config();
            assert!(!rc.fault_rates.is_empty());
            assert!(rc.max_epochs > 0);
            assert!(scale.constraint() > 0.5);
            let fc = scale.fleet_config(wb.array_dims(), None);
            assert!(fc.chips > 0);
            assert_eq!((fc.rows, fc.cols), wb.array_dims());
            let budgets = scale.fixed_budgets();
            assert!(budgets[0] < budgets[1] && budgets[1] < budgets[2]);
        }
    }

    #[test]
    fn arg_helpers() {
        let args: Vec<String> = ["--scale", "smoke", "--flag"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--scale").as_deref(), Some("smoke"));
        assert_eq!(arg_value(&args, "--missing"), None);
        assert!(arg_flag(&args, "--flag"));
        assert!(!arg_flag(&args, "--other"));
    }

    #[test]
    fn threads_arg() {
        let to_args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert_eq!(arg_threads(&to_args(&[])).expect("default"), 1);
        assert_eq!(
            arg_threads(&to_args(&["--threads", "4"])).expect("numeric"),
            4
        );
        assert_eq!(arg_threads(&to_args(&["--threads", "0"])).expect("auto"), 0);
        assert!(arg_threads(&to_args(&["--threads", "many"])).is_err());
    }

    #[test]
    fn fleet_chip_override() {
        let fc = Scale::Default.fleet_config((32, 32), Some(7));
        assert_eq!(fc.chips, 7);
    }
}
