//! Regenerates **Fig. 2** of the paper: the resilience characterisation of
//! the DNN (Step ① of Reduce).
//!
//! * Part (a): accuracy vs fault rate at different amounts of fault-aware
//!   training;
//! * Part (b): epochs of FAT required at each fault rate to reach the
//!   accuracy constraint — min/mean/max over repeats (the error bars that
//!   motivate selecting by the max).
//!
//! ```text
//! cargo run -p reduce-bench --release --bin fig2 -- \
//!     [--scale smoke|default|full] [--part a|b|both] [--threads N] \
//!     [--csv DIR] [--table-out PATH] [--out DIR] [--redact-timing] \
//!     [--retries N] [--chaos-rate P] [--chaos-seed S] \
//!     [--resume DIR] [--halt-after N] \
//!     [--io-fault KIND@INDEX] [--io-fault-seed S]
//! ```
//!
//! `--threads N` fans the Step-① `(rate, repeat)` grid out over `N`
//! workers on the deterministic executor (`0` = auto-size from the
//! hardware); the printed curves, tables and CSV output are byte-identical
//! at any thread count. `--out DIR` additionally writes a JSON-lines
//! `run_log.jsonl`, a `manifest.json` and a `journal.jsonl` of completed
//! grid cells; with `--redact-timing` the log and manifest are
//! byte-identical at any thread count too (CI diffs them).
//!
//! Fault tolerance: `--retries N` retries each failing grid cell up to `N`
//! times with a deterministically derived retry seed before quarantining
//! it; `--chaos-rate P --chaos-seed S` injects seeded failures to exercise
//! that path. An interrupted run (e.g. via `--halt-after N`, which exits
//! the process after `N` journal appends) is continued with
//! `--resume DIR`: journaled cells are replayed, only missing cells are
//! computed, and the rewritten redacted artifacts are byte-identical to an
//! uninterrupted run's.
//!
//! Storage faults: `--io-fault KIND@INDEX` (with optional
//! `--io-fault-seed S`) injects one deterministic storage fault — `torn`,
//! `short`, `enospc` or `rename-fail` — at the `INDEX`-th artifact IO
//! operation inside the run directory, after which the artifact backend
//! stays offline (a simulated crash). The process exits with code **4**
//! when the fault fires; a subsequent `--resume` self-heals the journal
//! and completes the run.

use reduce_bench::{
    apply_fault_args, finish_io_fault, install_io_fault, open_journal, parse_args, resolve_run_dir,
    IoFault, Scale, FAULT_VALUE_KEYS,
};
use reduce_core::telemetry::{
    self, Fanout, GridManifest, MetricsRecorder, Observer, RunLog, RunManifest, Stage,
    StageWorkspace,
};
use reduce_core::{report, ExecConfig, FatRunner, ResilienceAnalysis};
use std::error::Error;
use std::sync::Arc;

fn main() -> std::process::ExitCode {
    let mut fault = None;
    let result = run(&mut fault);
    finish_io_fault(result, fault)
}

fn run(fault: &mut Option<IoFault>) -> Result<(), Box<dyn Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut value_keys = vec![
        "--scale",
        "--part",
        "--threads",
        "--csv",
        "--table-out",
        "--out",
    ];
    value_keys.extend(FAULT_VALUE_KEYS);
    let args = parse_args(&raw, &value_keys, &["--redact-timing"], 0)?;
    let scale = Scale::parse(args.value("--scale").unwrap_or("default"))?;
    let part = args.value("--part").unwrap_or("both").to_string();
    let threads = args.threads()?;
    let redact = args.flag("--redact-timing");
    let (out_dir, resuming) = resolve_run_dir(&args)?;
    *fault = install_io_fault(&args, out_dir.as_deref())?;

    let metrics = Arc::new(MetricsRecorder::new());
    let mut sinks: Vec<Arc<dyn Observer>> = vec![metrics.clone()];
    let run_log = match &out_dir {
        Some(dir) => {
            let log = Arc::new(RunLog::create(&dir.join("run_log.jsonl"), redact)?);
            sinks.push(log.clone());
            Some(log)
        }
        None => None,
    };
    let observer: Arc<dyn Observer> = Arc::new(Fanout::new(sinks));
    let exec = apply_fault_args(
        &args,
        ExecConfig::new(threads).with_observer(observer.clone()),
    )?;
    let journal = open_journal(&args, out_dir.as_deref(), resuming)?;
    if resuming {
        if let Some(cp) = &journal {
            println!(
                "resuming from {} ({} grid cell(s) already journaled)\n",
                cp.path().display(),
                cp.records()?.len()
            );
        }
    }

    let workbench = scale.workbench(1);
    let config = scale.resilience_config();
    println!(
        "Fig. 2 — resilience characterisation ({scale:?} scale)\n\
         model/task: paper-scale substitution per DESIGN.md; constraint {:.0}%\n",
        config.constraint * 100.0
    );

    println!(
        "pre-training fault-free baseline ({} epochs)…",
        scale.pretrain_epochs()
    );
    let pretrained = telemetry::timed_stage(observer.as_ref(), Stage::Pretrain, || {
        workbench.pretrain(scale.pretrain_epochs())
    })?;
    println!(
        "baseline accuracy {:.2}%\n",
        pretrained.baseline_accuracy * 100.0
    );

    let runner = FatRunner::new(workbench)?;
    println!(
        "running {} rates × {} repeats × {} epochs ({} thread{})…",
        config.fault_rates.len(),
        config.repeats,
        config.max_epochs,
        threads,
        if threads == 1 { "" } else { "s" }
    );
    let max_epochs = config.max_epochs;
    let grid_manifest = GridManifest::from_config(&config);
    let analysis =
        ResilienceAnalysis::run_resumable(&runner, &pretrained, config, &exec, journal.as_ref())?;
    println!("characterisation done\n");
    if !analysis.failures().is_empty() {
        println!("quarantined grid cells (excluded from the summaries below):");
        for f in analysis.failures() {
            println!(
                "  rate {:.4} repeat {} — {} attempt(s): {}",
                f.rate, f.repeat, f.attempts, f.error
            );
        }
        println!();
    }

    if part == "a" || part == "both" {
        println!("— Fig. 2a: mean accuracy vs fault rate at each FAT level —");
        let levels: Vec<usize> = [0usize, 1, 2, 4, 8, max_epochs]
            .into_iter()
            .filter(|&l| l <= max_epochs)
            .collect();
        println!("{}", report::render_resilience_curves(&analysis, &levels));
    }
    if part == "b" || part == "both" {
        println!("— Fig. 2b: epochs to reach the constraint (min/mean/max over repeats) —");
        println!("{}", report::render_epochs_to_constraint(&analysis));
        println!(
            "paper's observation: the min–max spread widens with fault rate, so\n\
             selecting retraining amounts by the mean risks undertraining —\n\
             Reduce therefore uses the max (Fig. 3a vs 3b)."
        );
    }
    if let Some(dir) = args.value("--csv") {
        let (header, rows) = report::resilience_csv(&analysis);
        let path = std::path::Path::new(dir).join("fig2_resilience.csv");
        report::write_csv(&path, &header, &rows)?;
        println!("raw points written to {}", path.display());
    }
    if let Some(path) = args.value("--table-out") {
        analysis.table().save(std::path::Path::new(path))?;
        println!("resilience table saved to {path} (reusable via fig3 --table)");
    }
    if let Some(dir) = &out_dir {
        let mut manifest = RunManifest::new("fig2", args.value("--scale").unwrap_or("default"));
        manifest.threads = if redact { None } else { Some(threads) };
        manifest.constraint = scale.constraint();
        manifest.workbench = format!("{:?}", scale.workbench(1).model);
        manifest.grid = Some(grid_manifest);
        // Workspace counters are deterministic per configuration, so the
        // manifest stays byte-identical across thread counts.
        manifest.workspace = metrics
            .snapshot()
            .workspace
            .iter()
            .map(|(stage, w)| StageWorkspace {
                stage: stage.clone(),
                hits: w.hits,
                misses: w.misses,
                bytes_allocated: w.bytes_allocated,
            })
            .collect();
        manifest.save(&dir.join("manifest.json"))?;
        println!("run log and manifest written to {}", dir.display());
    }
    if let Some(log) = run_log {
        log.flush()?;
    }
    println!("{}", metrics.render());
    Ok(())
}
