//! Regenerates **Fig. 2** of the paper: the resilience characterisation of
//! the DNN (Step ① of Reduce).
//!
//! * Part (a): accuracy vs fault rate at different amounts of fault-aware
//!   training;
//! * Part (b): epochs of FAT required at each fault rate to reach the
//!   accuracy constraint — min/mean/max over repeats (the error bars that
//!   motivate selecting by the max).
//!
//! ```text
//! cargo run -p reduce-bench --release --bin fig2 -- \
//!     [--scale smoke|default|full] [--part a|b|both] [--threads N]
//! ```
//!
//! `--threads N` fans the Step-① `(rate, repeat)` grid out over `N`
//! workers on the deterministic executor (`0` = auto-size from the
//! hardware); the printed curves, tables and CSV output are byte-identical
//! at any thread count.

use reduce_bench::{arg_threads, arg_value, Scale};
use reduce_core::{report, FatRunner, ResilienceAnalysis};
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::parse(&arg_value(&args, "--scale").unwrap_or_else(|| "default".into()))?;
    let part = arg_value(&args, "--part").unwrap_or_else(|| "both".into());
    let threads = arg_threads(&args)?;

    let workbench = scale.workbench(1);
    let config = scale.resilience_config();
    println!(
        "Fig. 2 — resilience characterisation ({scale:?} scale)\n\
         model/task: paper-scale substitution per DESIGN.md; constraint {:.0}%\n",
        config.constraint * 100.0
    );

    let t0 = Instant::now();
    println!(
        "pre-training fault-free baseline ({} epochs)…",
        scale.pretrain_epochs()
    );
    let pretrained = workbench.pretrain(scale.pretrain_epochs())?;
    let pretrain_time = t0.elapsed();
    println!(
        "baseline accuracy {:.2}%  [{pretrain_time:.1?}]\n",
        pretrained.baseline_accuracy * 100.0
    );

    let runner = FatRunner::new(workbench)?;
    println!(
        "running {} rates × {} repeats × {} epochs ({} thread{})…",
        config.fault_rates.len(),
        config.repeats,
        config.max_epochs,
        threads,
        if threads == 1 { "" } else { "s" }
    );
    let max_epochs = config.max_epochs;
    let t_char = Instant::now();
    let analysis = ResilienceAnalysis::run_parallel(&runner, &pretrained, config, threads)?;
    let characterise_time = t_char.elapsed();
    println!("characterisation done  [{characterise_time:.1?}]\n");

    if part == "a" || part == "both" {
        println!("— Fig. 2a: mean accuracy vs fault rate at each FAT level —");
        let levels: Vec<usize> = [0usize, 1, 2, 4, 8, max_epochs]
            .into_iter()
            .filter(|&l| l <= max_epochs)
            .collect();
        println!("{}", report::render_resilience_curves(&analysis, &levels));
    }
    if part == "b" || part == "both" {
        println!("— Fig. 2b: epochs to reach the constraint (min/mean/max over repeats) —");
        println!("{}", report::render_epochs_to_constraint(&analysis));
        println!(
            "paper's observation: the min–max spread widens with fault rate, so\n\
             selecting retraining amounts by the mean risks undertraining —\n\
             Reduce therefore uses the max (Fig. 3a vs 3b)."
        );
    }
    if let Some(dir) = arg_value(&args, "--csv") {
        let (header, rows) = report::resilience_csv(&analysis);
        let path = std::path::Path::new(&dir).join("fig2_resilience.csv");
        report::write_csv(&path, &header, &rows)?;
        println!("raw points written to {}", path.display());
    }
    if let Some(path) = arg_value(&args, "--table-out") {
        analysis.table().save(std::path::Path::new(&path))?;
        println!("resilience table saved to {path} (reusable via fig3 --table)");
    }
    println!(
        "stage timings: pretrain {pretrain_time:.1?} · characterisation {characterise_time:.1?} \
         ({threads} thread{})",
        if threads == 1 { "" } else { "s" }
    );
    println!("total wall time {:.1?}", t0.elapsed());
    Ok(())
}
