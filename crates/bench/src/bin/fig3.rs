//! Regenerates **Fig. 3** of the paper: Reduce vs fixed-policy retraining
//! over a fleet of faulty chips.
//!
//! * (a) Reduce with the max statistic; (b) Reduce with the mean statistic;
//! * (c)–(e) fixed budgets (low/medium/high);
//! * (f) the summary: chips meeting the constraint vs total retraining
//!   epochs.
//!
//! ```text
//! cargo run -p reduce-bench --release --bin fig3 -- \
//!     [--scale smoke|default|full] [--policy reduce-max|reduce-mean|fixed:N|all] \
//!     [--strategy reduce|efat|fixed|all] \
//!     [--chips N | --fleet-size N] [--threads N] [--table PATH] [--csv DIR] \
//!     [--out DIR] [--redact-timing] [--cost] [--early-stop] [--per-chip] \
//!     [--retries N] [--chaos-rate P] [--chaos-seed S] \
//!     [--resume DIR] [--halt-after N] \
//!     [--io-fault KIND@INDEX] [--io-fault-seed S]
//! ```
//!
//! `--threads N` parallelises both the Step-① characterisation grid and
//! the per-chip fleet retraining on the deterministic executor (`0` =
//! auto-size); reports are byte-identical at any thread count. `--out DIR`
//! writes a JSON-lines `run_log.jsonl`, a `manifest.json` and a
//! `journal.jsonl` of completed grid cells and chips; with
//! `--redact-timing` the log and manifest are byte-identical at any
//! thread count too.
//!
//! Fault tolerance: `--retries N` retries each failing grid cell / chip up
//! to `N` times with a deterministically derived retry seed before
//! quarantining it (a quarantined chip is reported, not fatal);
//! `--chaos-rate P --chaos-seed S` injects seeded failures to exercise
//! that path. An interrupted run (e.g. via `--halt-after N`) is continued
//! with `--resume DIR`: journaled jobs are replayed and only missing ones
//! are computed. `--io-fault KIND@INDEX` (`torn`|`short`|`enospc`|
//! `rename-fail`, optional `--io-fault-seed S`) injects one deterministic
//! storage fault at the `INDEX`-th artifact IO operation in the run
//! directory and exits with code **4** when it fires — the crash half of
//! the storage-fault sweep; `--resume` then self-heals the journal.
//!
//! Large fleets: chips are streamed from a seeded [`SeededChips`] source
//! and evaluated through the constant-memory [`FleetEvaluation`] pipeline,
//! so `--fleet-size N` scales to 10⁵–10⁶ chips without materialising the
//! fleet. Because per-chip outcomes are the one O(fleet) collection left,
//! `--fleet-size` conflicts with `--per-chip` and `--csv` (and with
//! `--chips`, which it replaces). Deploy throughput (chips/sec) and
//! `peak_rss_kb` are printed after the summary, and a machine-readable
//! `BENCH_fleet.json` is written to the current directory.
//!
//! Strategy comparison: `--strategy reduce|efat|fixed|all` pits whole
//! *retraining strategies* against each other on the same seeded fleet —
//! per-chip Reduce (max statistic), eFAT (the same policy with
//! fault-similarity clustering and warm-started members), and the
//! mid-range fixed budget — and replaces the Fig. 3f summary with a
//! cost table carrying cluster and warm-start accounting. Because the
//! mode picks its own policy list, it conflicts with `--policy`.

use reduce_bench::{
    apply_fault_args, finish_io_fault, install_io_fault, open_journal, parse_args,
    reject_conflicts, resolve_run_dir, IoFault, Scale, FAULT_VALUE_KEYS,
};
use reduce_core::telemetry::{
    self, Fanout, FleetManifest, GridManifest, MetricsRecorder, Observer, RunLog, RunManifest,
    Stage, StageWorkspace, Stopwatch, ThroughputManifest,
};
use reduce_core::{
    artifact, report, ExecConfig, FleetEvaluation, FleetStrategy, Reduce, ReduceError,
    RetrainPolicy, SeededChips, Statistic,
};
use reduce_systolic::ClusterConfig;
use std::error::Error;
use std::path::Path;
use std::sync::Arc;

fn parse_policy(s: &str) -> Result<Vec<RetrainPolicy>, ReduceError> {
    match s {
        "reduce-max" => Ok(vec![RetrainPolicy::Reduce(Statistic::Max)]),
        "reduce-mean" => Ok(vec![RetrainPolicy::Reduce(Statistic::Mean)]),
        "all" => Ok(Vec::new()), // filled in per scale
        other => {
            if let Some(n) = other.strip_prefix("fixed:") {
                let epochs = n.parse().map_err(|_| ReduceError::InvalidConfig {
                    what: format!("bad fixed policy {other:?}"),
                })?;
                Ok(vec![RetrainPolicy::Fixed(epochs)])
            } else {
                Err(ReduceError::InvalidConfig {
                    what: format!("unknown policy {other:?} (reduce-max|reduce-mean|fixed:N|all)"),
                })
            }
        }
    }
}

/// Resolves `--strategy` into the `(policy, fleet strategy)` runs of the
/// Reduce-vs-eFAT-vs-fixed comparison. `mid` is the scale's mid-range
/// fixed budget, so the fixed baseline matches Fig. 3's panel (d).
fn parse_strategy(s: &str, mid: usize) -> Result<Vec<(RetrainPolicy, FleetStrategy)>, ReduceError> {
    let reduce = (
        RetrainPolicy::Reduce(Statistic::Max),
        FleetStrategy::PerChip,
    );
    let efat = (
        RetrainPolicy::Reduce(Statistic::Max),
        FleetStrategy::Clustered(ClusterConfig::default()),
    );
    let fixed = (RetrainPolicy::Fixed(mid), FleetStrategy::PerChip);
    match s {
        "reduce" => Ok(vec![reduce]),
        "efat" => Ok(vec![efat]),
        "fixed" => Ok(vec![fixed]),
        "all" => Ok(vec![reduce, efat, fixed]),
        other => Err(ReduceError::InvalidConfig {
            what: format!("unknown strategy {other:?} (reduce|efat|fixed|all)"),
        }),
    }
}

/// Renders the `BENCH_fleet.json` throughput document. Key order and
/// separators are fixed; numeric literals are the only run-to-run
/// variation, which the CI stage normalises away before diffing.
fn render_fleet_bench(
    chips: usize,
    seconds: f64,
    chips_per_sec: f64,
    aggregate_epochs: usize,
    peak_rss_kb: u64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"reduce-bench/fleet-throughput/v1\",\n");
    s.push_str(&format!("  \"chips\": {chips},\n"));
    s.push_str(&format!("  \"seconds\": {seconds:e},\n"));
    s.push_str(&format!("  \"chips_per_sec\": {chips_per_sec:e},\n"));
    s.push_str(&format!("  \"aggregate_epochs\": {aggregate_epochs},\n"));
    s.push_str(&format!("  \"peak_rss_kb\": {peak_rss_kb}\n"));
    s.push_str("}\n");
    s
}

fn main() -> std::process::ExitCode {
    let mut fault = None;
    let result = run(&mut fault);
    finish_io_fault(result, fault)
}

fn run(fault: &mut Option<IoFault>) -> Result<(), Box<dyn Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut value_keys = vec![
        "--scale",
        "--policy",
        "--strategy",
        "--chips",
        "--fleet-size",
        "--threads",
        "--table",
        "--csv",
        "--out",
    ];
    value_keys.extend(FAULT_VALUE_KEYS);
    let args = parse_args(
        &raw,
        &value_keys,
        &["--cost", "--early-stop", "--per-chip", "--redact-timing"],
        0,
    )?;
    let scale = Scale::parse(args.value("--scale").unwrap_or("default"))?;
    let policy_arg = args.value("--policy").map(str::to_string);
    let strategy_arg = args.value("--strategy").map(str::to_string);
    let chips: Option<usize> = match args.value("--chips") {
        Some(s) => Some(s.parse()?),
        None => None,
    };
    let fleet_size: Option<usize> = match args.value("--fleet-size") {
        Some(s) => Some(s.parse()?),
        None => None,
    };
    // Streaming runs never collect the O(fleet) per-chip outcomes, and a
    // strategy comparison picks its own policy list.
    reject_conflicts(
        "--fleet-size",
        fleet_size.is_some(),
        &[
            ("--chips", chips.is_some()),
            ("--csv", args.value("--csv").is_some()),
            ("--per-chip", args.flag("--per-chip")),
        ],
    )?;
    reject_conflicts(
        "--strategy",
        strategy_arg.is_some(),
        &[("--policy", policy_arg.is_some())],
    )?;
    let threads = args.threads()?;
    let redact = args.flag("--redact-timing");
    let (out_dir, resuming) = resolve_run_dir(&args)?;
    *fault = install_io_fault(&args, out_dir.as_deref())?;

    let metrics = Arc::new(MetricsRecorder::new());
    let mut sinks: Vec<Arc<dyn Observer>> = vec![metrics.clone()];
    let run_log = match &out_dir {
        Some(dir) => {
            let log = Arc::new(RunLog::create(&dir.join("run_log.jsonl"), redact)?);
            sinks.push(log.clone());
            Some(log)
        }
        None => None,
    };
    let observer: Arc<dyn Observer> = Arc::new(Fanout::new(sinks));
    let exec = apply_fault_args(
        &args,
        ExecConfig::new(threads).with_observer(observer.clone()),
    )?;
    let journal = open_journal(&args, out_dir.as_deref(), resuming)?;
    if resuming {
        if let Some(cp) = &journal {
            println!(
                "resuming from {} ({} job(s) already journaled)\n",
                cp.path().display(),
                cp.records()?.len()
            );
        }
    }

    let [lo, mid, hi] = scale.fixed_budgets();
    let runs: Vec<(RetrainPolicy, FleetStrategy)> = match &strategy_arg {
        Some(s) => parse_strategy(s, mid)?,
        None => {
            let mut policies = parse_policy(policy_arg.as_deref().unwrap_or("all"))?;
            if policies.is_empty() {
                policies = vec![
                    RetrainPolicy::Reduce(Statistic::Max),
                    RetrainPolicy::Reduce(Statistic::Mean),
                    RetrainPolicy::Fixed(lo),
                    RetrainPolicy::Fixed(mid),
                    RetrainPolicy::Fixed(hi),
                ];
            }
            policies
                .into_iter()
                .map(|p| (p, FleetStrategy::PerChip))
                .collect()
        }
    };

    let workbench = scale.workbench(1);
    let workbench_spec = format!("{:?}", workbench.model);
    let array = workbench.array_dims();
    let constraint = scale.constraint();
    println!(
        "Fig. 3 — policy comparison over a fleet ({scale:?} scale, constraint {:.0}%)\n",
        constraint * 100.0
    );

    println!("step 0: pre-training fault-free baseline…");
    let mut reduce = telemetry::timed_stage(observer.as_ref(), Stage::Pretrain, || {
        Reduce::new(workbench, constraint, scale.pretrain_epochs())
    })?;
    println!(
        "  baseline accuracy {:.2}%",
        reduce.pretrained().baseline_accuracy * 100.0
    );

    let needs_table = runs.iter().any(|(p, _)| p.needs_table());
    let loaded_table = match args.value("--table") {
        Some(path) => {
            let table = reduce_core::ResilienceTable::load(std::path::Path::new(path))?;
            println!("step 1: resilience table loaded from {path} (characterisation skipped)");
            Some(table)
        }
        None => None,
    };
    let mut grid_manifest = None;
    if needs_table && loaded_table.is_none() {
        println!("step 1: resilience characterisation…");
        let config = scale.resilience_config();
        grid_manifest = Some(GridManifest::from_config(&config));
        reduce.characterize_resumable(config, &exec, journal.as_ref())?;
        println!(
            "  done  [{threads} thread{}]",
            if threads == 1 { "" } else { "s" }
        );
    }

    let fleet_config = scale.fleet_config(array, chips.or(fleet_size));
    // Chips are streamed from the seeded source — never materialised as a
    // Vec — so memory stays constant at any --fleet-size.
    let source = SeededChips::new(fleet_config);
    let collect_outcomes = args.flag("--per-chip") || args.value("--csv").is_some();
    println!(
        "steps 2+3: retraining {} chips per policy (streamed)…\n",
        fleet_config.chips
    );

    let deploy_clock = Stopwatch::start();
    let mut reports = Vec::new();
    for (policy, fleet_strategy) in runs {
        let table = if policy.needs_table() {
            match &loaded_table {
                Some(t) => Some(t.clone()),
                None => Some(reduce.table()?),
            }
        } else {
            None
        };
        let mut eval = FleetEvaluation::new(policy, constraint)
            .source(&source)
            .fleet_strategy(fleet_strategy)
            .early_stop(args.flag("--early-stop"))
            .collect_outcomes(collect_outcomes)
            .exec(&exec);
        if args.flag("--cost") {
            eval = eval.cost_model(reduce_systolic::CostModel::small(array.0, array.1));
        }
        if let Some(table) = table.as_ref() {
            eval = eval.table(table);
        }
        if let Some(cp) = journal.as_ref() {
            eval = eval.journal(cp);
        }
        let report = eval.run(reduce.runner(), reduce.pretrained())?;
        let quarantined = if report.quarantined.is_empty() {
            String::new()
        } else {
            format!("  quarantined {:>3}", report.quarantined.len())
        };
        println!(
            "{:<22} satisfied {:>3}/{:<3}  total epochs {:>5}{}",
            report.policy, report.satisfied, report.evaluated, report.total_epochs, quarantined,
        );
        if args.flag("--per-chip") {
            println!("{}", report::render_fleet_chips(&report));
        }
        reports.push(report);
    }
    let deploy_seconds = deploy_clock.seconds();
    let deployed_chips: usize = reports
        .iter()
        .map(|r| r.evaluated + r.quarantined_count())
        .sum();
    let chips_per_sec = if deploy_seconds > 0.0 {
        deployed_chips as f64 / deploy_seconds
    } else {
        0.0
    };
    println!(
        "\ndeploy throughput: {deployed_chips} chips in {deploy_seconds:.2}s = \
         {chips_per_sec:.1} chips/sec"
    );
    let rss_kb = peak_rss_kb();
    if let Some(kb) = rss_kb {
        println!("peak_rss_kb={kb}");
    }
    if fleet_size.is_some() {
        let aggregate_epochs: usize = reports.iter().map(|r| r.total_epochs).sum();
        let doc = render_fleet_bench(
            deployed_chips,
            deploy_seconds,
            chips_per_sec,
            aggregate_epochs,
            rss_kb.unwrap_or(0),
        );
        artifact::write_atomic(Path::new("BENCH_fleet.json"), &doc)?;
        println!("fleet throughput written to BENCH_fleet.json");
    }

    if strategy_arg.is_some() {
        println!("\n— strategy comparison (Reduce vs eFAT vs fixed) —");
        println!("{}", report::render_strategy_comparison(&reports));
    } else {
        println!("\n— Fig. 3f summary —");
        println!("{}", report::render_fleet_summary(&reports));
    }
    if args.flag("--cost") {
        let cm = reduce_systolic::CostModel::small(array.0, array.1);
        println!("accelerator-side retraining cost (cost-model estimate):");
        for r in &reports {
            if let Some(cycles) = r.retrain_cycles {
                println!(
                    "  {:<22} {:>16} cycles  = {:>8.2} s on-chip",
                    r.policy,
                    cycles,
                    cm.cycles_to_seconds(cycles)
                );
            }
        }
        println!();
    }
    println!("total retraining epochs (lower is better at equal yield):");
    let bars: Vec<(String, f64)> = reports
        .iter()
        .map(|r| (r.policy.clone(), r.total_epochs as f64))
        .collect();
    println!("{}", report::render_bars(&bars, 40));
    println!("chips meeting the {:.0}% constraint:", constraint * 100.0);
    let bars: Vec<(String, f64)> = reports
        .iter()
        .map(|r| (r.policy.clone(), r.satisfied as f64))
        .collect();
    println!("{}", report::render_bars(&bars, 40));
    if let Some(dir) = args.value("--csv") {
        for r in &reports {
            let (header, rows) = report::fleet_csv(r);
            let slug: String = r
                .policy
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let path = std::path::Path::new(dir).join(format!("fig3_{slug}.csv"));
            report::write_csv(&path, &header, &rows)?;
            println!("per-chip rows written to {}", path.display());
        }
    }
    if let Some(dir) = &out_dir {
        let mut manifest = RunManifest::new("fig3", args.value("--scale").unwrap_or("default"));
        manifest.threads = if redact { None } else { Some(threads) };
        manifest.constraint = constraint;
        manifest.workbench = workbench_spec;
        manifest.grid = grid_manifest;
        manifest.policies = reports.iter().map(|r| r.policy.clone()).collect();
        // Workspace counters are deterministic per configuration, so the
        // manifest stays byte-identical across thread counts.
        manifest.workspace = metrics
            .snapshot()
            .workspace
            .iter()
            .map(|(stage, w)| StageWorkspace {
                stage: stage.clone(),
                hits: w.hits,
                misses: w.misses,
                bytes_allocated: w.bytes_allocated,
            })
            .collect();
        manifest.throughput = if redact {
            None
        } else {
            Some(ThroughputManifest {
                chips: deployed_chips,
                seconds: deploy_seconds,
                chips_per_sec,
            })
        };
        manifest.fleet = Some(FleetManifest::from_config(&fleet_config));
        manifest.save(&dir.join("manifest.json"))?;
        println!("run log and manifest written to {}", dir.display());
    }
    if let Some(log) = run_log {
        log.flush()?;
    }
    println!("{}", metrics.render());
    Ok(())
}

/// Peak resident-set size in kB (`VmHWM` from `/proc/self/status`), if
/// the platform exposes it — the large-fleet CI gate asserts constant
/// memory with it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
