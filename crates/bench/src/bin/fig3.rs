//! Regenerates **Fig. 3** of the paper: Reduce vs fixed-policy retraining
//! over a fleet of faulty chips.
//!
//! * (a) Reduce with the max statistic; (b) Reduce with the mean statistic;
//! * (c)–(e) fixed budgets (low/medium/high);
//! * (f) the summary: chips meeting the constraint vs total retraining
//!   epochs.
//!
//! ```text
//! cargo run -p reduce-bench --release --bin fig3 -- \
//!     [--scale smoke|default|full] [--policy reduce-max|reduce-mean|fixed:N|all] \
//!     [--chips N] [--threads N]
//! ```
//!
//! `--threads N` parallelises both the Step-① characterisation grid and
//! the per-chip fleet retraining on the deterministic executor (`0` =
//! auto-size); reports are byte-identical at any thread count.

use reduce_bench::{arg_flag, arg_threads, arg_value, Scale};
use reduce_core::{report, Reduce, ReduceError, RetrainPolicy, Statistic};
use reduce_systolic::generate_fleet;
use std::error::Error;
use std::time::Instant;

fn parse_policy(s: &str) -> Result<Vec<RetrainPolicy>, ReduceError> {
    match s {
        "reduce-max" => Ok(vec![RetrainPolicy::Reduce(Statistic::Max)]),
        "reduce-mean" => Ok(vec![RetrainPolicy::Reduce(Statistic::Mean)]),
        "all" => Ok(Vec::new()), // filled in per scale
        other => {
            if let Some(n) = other.strip_prefix("fixed:") {
                let epochs = n.parse().map_err(|_| ReduceError::InvalidConfig {
                    what: format!("bad fixed policy {other:?}"),
                })?;
                Ok(vec![RetrainPolicy::Fixed(epochs)])
            } else {
                Err(ReduceError::InvalidConfig {
                    what: format!("unknown policy {other:?} (reduce-max|reduce-mean|fixed:N|all)"),
                })
            }
        }
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::parse(&arg_value(&args, "--scale").unwrap_or_else(|| "default".into()))?;
    let policy_arg = arg_value(&args, "--policy").unwrap_or_else(|| "all".into());
    let chips: Option<usize> = match arg_value(&args, "--chips") {
        Some(s) => Some(s.parse()?),
        None => None,
    };
    let threads = arg_threads(&args)?;

    let mut policies = parse_policy(&policy_arg)?;
    if policies.is_empty() {
        let [lo, mid, hi] = scale.fixed_budgets();
        policies = vec![
            RetrainPolicy::Reduce(Statistic::Max),
            RetrainPolicy::Reduce(Statistic::Mean),
            RetrainPolicy::Fixed(lo),
            RetrainPolicy::Fixed(mid),
            RetrainPolicy::Fixed(hi),
        ];
    }

    let workbench = scale.workbench(1);
    let array = workbench.array_dims();
    let constraint = scale.constraint();
    println!(
        "Fig. 3 — policy comparison over a fleet ({scale:?} scale, constraint {:.0}%)\n",
        constraint * 100.0
    );

    let t0 = Instant::now();
    println!("step 0: pre-training fault-free baseline…");
    let mut reduce = Reduce::new(workbench, constraint, scale.pretrain_epochs())?;
    println!(
        "  baseline accuracy {:.2}%  [{:.1?}]",
        reduce.pretrained().baseline_accuracy * 100.0,
        t0.elapsed()
    );

    let needs_table = policies.iter().any(RetrainPolicy::needs_table);
    let loaded_table = match arg_value(&args, "--table") {
        Some(path) => {
            let table = reduce_core::ResilienceTable::load(std::path::Path::new(&path))?;
            println!("step 1: resilience table loaded from {path} (characterisation skipped)");
            Some(table)
        }
        None => None,
    };
    if needs_table && loaded_table.is_none() {
        println!("step 1: resilience characterisation…");
        let t_char = Instant::now();
        reduce.characterize_parallel(scale.resilience_config(), threads)?;
        println!(
            "  done  [{:.1?}, {threads} thread{}]",
            t_char.elapsed(),
            if threads == 1 { "" } else { "s" }
        );
    }

    let fleet = generate_fleet(&scale.fleet_config(array, chips))?;
    println!("steps 2+3: retraining {} chips per policy…\n", fleet.len());

    let mut reports = Vec::new();
    for policy in policies {
        let tp = Instant::now();
        let table = if policy.needs_table() {
            match &loaded_table {
                Some(t) => Some(t.clone()),
                None => Some(reduce.table()?),
            }
        } else {
            None
        };
        let mut config = reduce_core::FleetEvalConfig::new(policy, constraint);
        if arg_flag(&args, "--cost") {
            config.cost_model = Some(reduce_systolic::CostModel::small(array.0, array.1));
        }
        config.early_stop = arg_flag(&args, "--early-stop");
        let report = reduce_core::evaluate_fleet_parallel(
            reduce.runner(),
            reduce.pretrained(),
            &fleet,
            table.as_ref(),
            &config,
            threads,
        )?;
        println!(
            "{:<22} satisfied {:>3}/{:<3}  total epochs {:>5}  [{:.1?}]",
            report.policy,
            report.satisfied,
            report.chips.len(),
            report.total_epochs,
            tp.elapsed()
        );
        if arg_flag(&args, "--per-chip") {
            println!("{}", report::render_fleet_chips(&report));
        }
        reports.push(report);
    }

    println!("\n— Fig. 3f summary —");
    println!("{}", report::render_fleet_summary(&reports));
    if arg_flag(&args, "--cost") {
        let cm = reduce_systolic::CostModel::small(array.0, array.1);
        println!("accelerator-side retraining cost (cost-model estimate):");
        for r in &reports {
            if let Some(cycles) = r.retrain_cycles {
                println!(
                    "  {:<22} {:>16} cycles  = {:>8.2} s on-chip",
                    r.policy,
                    cycles,
                    cm.cycles_to_seconds(cycles)
                );
            }
        }
        println!();
    }
    println!("total retraining epochs (lower is better at equal yield):");
    let bars: Vec<(String, f64)> = reports
        .iter()
        .map(|r| (r.policy.clone(), r.total_epochs as f64))
        .collect();
    println!("{}", report::render_bars(&bars, 40));
    println!("chips meeting the {:.0}% constraint:", constraint * 100.0);
    let bars: Vec<(String, f64)> = reports
        .iter()
        .map(|r| (r.policy.clone(), r.satisfied as f64))
        .collect();
    println!("{}", report::render_bars(&bars, 40));
    if let Some(dir) = arg_value(&args, "--csv") {
        for r in &reports {
            let (header, rows) = report::fleet_csv(r);
            let slug: String = r
                .policy
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            let path = std::path::Path::new(&dir).join(format!("fig3_{slug}.csv"));
            report::write_csv(&path, &header, &rows)?;
            println!("per-chip rows written to {}", path.display());
        }
    }
    println!("total wall time {:.1?}", t0.elapsed());
    Ok(())
}
