//! GEMM kernel-comparison harness driver.
//!
//! Runs every registered kernel (naive, blocked, packed, the production
//! dispatch, and the executor-parallel path) over the shared workload
//! set, gates each against the naive reference **before** timing, and
//! writes the machine-readable comparison to `BENCH_gemm.json`.
//!
//! ```text
//! cargo run -p reduce-bench --release --bin gemm_bench -- \
//!     [--out PATH] [--reps N] [--threads N] [--check]
//! ```
//!
//! * `--out PATH` — where to write the JSON document (default
//!   `BENCH_gemm.json` in the current directory);
//! * `--reps N` — timed calls per surviving cell (default 5);
//! * `--threads N` — worker count for the `packed-par` kernel
//!   (`0` = auto);
//! * `--check` — correctness gates only, no timing: all
//!   `seconds_per_call` fields are written as `0`. CI uses this mode and
//!   schema-diffs the output against the checked-in document.
//!
//! The process exits non-zero if any kernel fails its gate, so the
//! harness doubles as a correctness test in CI.

use reduce_bench::kernels::{compare, registry, workloads, Gate};
use reduce_bench::parse_args;
use reduce_core::{artifact, ReduceError};
use std::error::Error;
use std::path::Path;

fn main() -> Result<(), Box<dyn Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&raw, &["--out", "--reps", "--threads"], &["--check"], 0)?;
    let out_path = args.value("--out").unwrap_or("BENCH_gemm.json").to_string();
    let threads = args.threads()?;
    let check_only = args.flag("--check");
    let reps = match args.value("--reps") {
        Some(s) => s.parse::<usize>().map_err(|_| ReduceError::InvalidConfig {
            what: format!("bad --reps value {s:?} (expected a count)"),
        })?,
        None => 5,
    };

    let kernels = registry(threads);
    let set = workloads();
    println!(
        "GEMM kernel comparison: {} kernels x {} workloads x 3 variants ({})",
        kernels.len(),
        set.len(),
        if check_only {
            "correctness gates only".to_string()
        } else {
            format!("{reps} timed reps per cell")
        }
    );

    let results = compare(&kernels, &set, reps, check_only)?;

    let mut failures = 0usize;
    for r in &results {
        for c in &r.cells {
            if !c.ok {
                failures += 1;
                println!(
                    "FAIL {:<10} {:>12} {} ({} gate, max_abs_err {:e})",
                    c.kernel,
                    r.workload.label(),
                    r.variant.name(),
                    c.gate.name(),
                    c.max_abs_err
                );
            }
        }
    }

    // Compact stdout summary: per workload, the NN timing of each kernel
    // relative to the blocked reference (the pre-PR production kernel).
    if !check_only {
        println!();
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "shape (nn)", "naive", "blocked", "packed", "dispatch", "packed-par"
        );
        for r in results.iter().filter(|r| r.variant.name() == "nn") {
            let mut row = format!("{:<12}", r.workload.label());
            for name in ["naive", "blocked", "packed", "dispatch", "packed-par"] {
                let cell = r.cells.iter().find(|c| c.kernel == name);
                row.push_str(&match cell {
                    Some(c) if c.ok => format!(" {:>11.1}us", c.seconds_per_call * 1e6),
                    Some(_) => format!(" {:>12}", "FAILED"),
                    None => format!(" {:>12}", "-"),
                });
            }
            println!("{row}");
        }
    }

    let gated = results
        .iter()
        .flat_map(|r| &r.cells)
        .filter(|c| c.gate == Gate::Exact)
        .count();
    println!(
        "\n{} cells checked ({} exact-gated, {} tolerance-gated), {} failure(s)",
        results.iter().map(|r| r.cells.len()).sum::<usize>(),
        gated,
        results.iter().map(|r| r.cells.len()).sum::<usize>() - gated,
        failures
    );

    let doc = reduce_bench::kernels::render_json(&results, reps, threads);
    artifact::write_atomic(Path::new(&out_path), &doc)?;
    println!("comparison written to {out_path}");

    if failures > 0 {
        return Err(Box::new(ReduceError::InvalidConfig {
            what: format!("{failures} kernel cell(s) failed the correctness gate"),
        }));
    }
    Ok(())
}
