//! `journal-tool` — verify, repair and summarise resume journals.
//!
//! The journals the experiment binaries write (`journal.jsonl` plus its
//! shard files) carry per-record CRC32 framing, sealed-shard footers and a
//! digest manifest (format v3). This tool is the operator's interface to
//! that integrity data:
//!
//! ```text
//! journal-tool verify PATH    # exit 0 clean, 2 healable, 3 corrupt
//! journal-tool repair PATH    # truncate to the valid prefix, fix manifest
//! journal-tool stat   PATH    # record counts, shard layout, byte sizes
//! ```
//!
//! `PATH` is the journal file or the run directory containing
//! `journal.jsonl`. `verify` and `stat` never modify anything. `repair`
//! performs the explicit truncation that self-healing resume refuses to do
//! on its own (dropping valid records stranded after a corrupt middle),
//! printing each heal action to stderr. Exit code 1 reports usage or
//! filesystem errors.

use reduce_bench::HealNotices;
use reduce_core::{inspect_journal, repair_journal, JournalStatus};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: journal-tool verify|repair|stat PATH\n\
                     PATH is a journal file or a run directory containing journal.jsonl";

/// Resolves the journal path: a directory means `DIR/journal.jsonl`.
fn journal_path(arg: &str) -> PathBuf {
    let path = Path::new(arg);
    if path.is_dir() {
        path.join("journal.jsonl")
    } else {
        path.to_path_buf()
    }
}

fn verify(path: &Path, verbose: bool) -> ExitCode {
    let health = match inspect_journal(path) {
        Ok(health) => health,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    println!(
        "{}: {} (v{}, {} record(s), {} sealed shard(s), {} B)",
        path.display(),
        health.status.name(),
        health.version,
        health.records,
        health.sealed_shards,
        health.total_bytes,
    );
    if verbose {
        if health.shard_records > 0 {
            println!("  shard size: {} record(s)", health.shard_records);
        }
        for (kind, count) in &health.kinds {
            println!("  {kind}: {count}");
        }
    }
    for note in &health.notes {
        println!("  note: {note}");
    }
    match health.status {
        JournalStatus::Clean => ExitCode::SUCCESS,
        JournalStatus::Healable => ExitCode::from(2),
        JournalStatus::Corrupt => ExitCode::from(3),
    }
}

fn repair(path: &Path) -> ExitCode {
    match repair_journal(path, &HealNotices) {
        Ok(summary) => {
            if summary.was_clean {
                println!("{}: already clean, nothing to repair", path.display());
            } else {
                println!(
                    "{}: repaired — kept {} record(s), dropped {} record(s) / {} B",
                    path.display(),
                    summary.kept,
                    summary.dropped_records,
                    summary.dropped_bytes,
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, target) = match args.as_slice() {
        [command, target] => (command.as_str(), journal_path(target)),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(1);
        }
    };
    match command {
        "verify" => verify(&target, false),
        "stat" => verify(&target, true),
        "repair" => repair(&target),
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            ExitCode::from(1)
        }
    }
}
