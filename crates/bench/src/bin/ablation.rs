//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! ```text
//! cargo run -p reduce-bench --release --bin ablation -- <study> \
//!     [--scale smoke|default|full] [--threads N] [--out DIR] [--redact-timing]
//! ```
//!
//! `--threads N` parallelises the characterisation and fleet-deployment
//! stages of the `grid`, `margin` and `early-stop` studies on the
//! deterministic executor (`0` = auto-size); study output is
//! byte-identical at any thread count. `--out DIR` writes a JSON-lines
//! `run_log.jsonl` and a `manifest.json` for the run.
//!
//! Studies:
//!
//! * `fault-model` (A2) — random vs clustered fault maps: does spatial
//!   clustering change the damage / retraining need at equal fault rate?
//! * `grid` (A3) — characterisation-grid granularity: how much does a
//!   coarse grid's interpolation mis-budget chips vs a fine grid?
//! * `mitigation` (A4) — FAP vs FAM (SalvageDNN mapping) as the starting
//!   point for retraining;
//! * `margin` (A1) — max vs mean vs mean+margin selection statistics;
//! * `early-stop` — epochs saved by stopping FAT at the constraint instead
//!   of spending the whole budget.

use reduce_bench::{parse_args, Scale};
use reduce_core::telemetry::{self, Fanout, MetricsRecorder, Observer, RunLog, RunManifest, Stage};
use reduce_core::{ExecConfig, FatRunner, Mitigation, Reduce, RetrainPolicy, Statistic, StopRule};
use reduce_systolic::{generate_fleet, FaultMap, FaultModel};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(
        &raw,
        &["--scale", "--threads", "--out"],
        &["--redact-timing"],
        1,
    )?;
    let study = args.positional(0).unwrap_or("help").to_string();
    let scale = Scale::parse(args.value("--scale").unwrap_or("smoke"))?;
    let threads = args.threads()?;
    let redact = args.flag("--redact-timing");
    let out_dir = args.value("--out").map(std::path::PathBuf::from);

    let metrics = Arc::new(MetricsRecorder::new());
    let mut sinks: Vec<Arc<dyn Observer>> = vec![metrics.clone()];
    let run_log = match &out_dir {
        Some(dir) => {
            let log = Arc::new(RunLog::create(&dir.join("run_log.jsonl"), redact)?);
            sinks.push(log.clone());
            Some(log)
        }
        None => None,
    };
    let observer: Arc<dyn Observer> = Arc::new(Fanout::new(sinks));
    let exec = ExecConfig::new(threads).with_observer(observer.clone());

    match study.as_str() {
        "fault-model" => fault_model(scale)?,
        "grid" => grid(scale, &exec)?,
        "mitigation" => mitigation(scale)?,
        "margin" => margin(scale, &exec)?,
        "early-stop" => early_stop(scale, &exec)?,
        "bn-recal" => bn_recal()?,
        "unprotected" => unprotected(scale)?,
        _ => {
            eprintln!(
                "usage: ablation \
                 <fault-model|grid|mitigation|margin|early-stop|bn-recal|unprotected> \
                 [--scale smoke|default|full] [--threads N] [--out DIR] [--redact-timing]"
            );
            return Ok(());
        }
    }
    if let Some(dir) = &out_dir {
        let mut manifest = RunManifest::new(
            &format!("ablation:{study}"),
            args.value("--scale").unwrap_or("smoke"),
        );
        manifest.threads = if redact { None } else { Some(threads) };
        manifest.constraint = scale.constraint();
        manifest.workbench = format!("{:?}", scale.workbench(1).model);
        manifest.save(&dir.join("manifest.json"))?;
        println!("\nrun log and manifest written to {}", dir.display());
    }
    if let Some(log) = run_log {
        log.flush()?;
    }
    println!("\n{}", metrics.render());
    Ok(())
}

/// A2: random vs clustered fault maps at equal fault rates.
fn fault_model(scale: Scale) -> Result<(), Box<dyn Error>> {
    let wb = scale.workbench(1);
    let (rows, cols) = wb.array_dims();
    let pretrained = wb.pretrain(scale.pretrain_epochs())?;
    let constraint = scale.constraint();
    let runner = FatRunner::new(wb)?;
    println!(
        "A2 — fault model ablation (constraint {:.0}%)",
        constraint * 100.0
    );
    println!("rate   model       pre_acc  epochs_to_constraint (3 maps)");
    for rate in [0.1f64, 0.2, 0.3] {
        for (name, model) in [
            ("random", FaultModel::Random),
            (
                "clustered",
                FaultModel::Clustered {
                    clusters: 3,
                    sigma: rows as f32 / 10.0,
                },
            ),
        ] {
            let mut accs = Vec::new();
            let mut epochs = Vec::new();
            for seed in 0..3u64 {
                let map = FaultMap::generate(rows, cols, rate, model, 500 + seed)?;
                let out = runner.run(
                    &pretrained,
                    &map,
                    16,
                    StopRule::AtAccuracy(constraint),
                    Mitigation::Fap,
                    seed,
                )?;
                accs.push(out.pre_retrain_accuracy);
                epochs.push(
                    out.epochs_to_reach(constraint)
                        .map_or("-".to_string(), |e| e.to_string()),
                );
            }
            let mean_acc = accs.iter().sum::<f32>() / accs.len() as f32;
            println!(
                "{rate:.2}   {name:<10}  {:.3}    [{}]",
                mean_acc,
                epochs.join(", ")
            );
        }
    }
    println!(
        "\nclustered faults concentrate damage in a few array columns, which\n\
         changes which weights die but (at equal rate) typically similar totals."
    );
    Ok(())
}

/// A3: coarse vs fine characterisation grids.
fn grid(scale: Scale, exec: &ExecConfig) -> Result<(), Box<dyn Error>> {
    let wb = scale.workbench(1);
    let constraint = scale.constraint();
    let mut reduce = Reduce::new(wb, constraint, scale.pretrain_epochs())?;
    println!("A3 — characterisation-grid granularity");
    let base = scale.resilience_config();
    // Fine grid (the reference).
    reduce.characterize(base.clone(), exec)?;
    let fine = reduce.table()?;
    // Coarse grid: only the endpoints.
    let coarse_cfg = reduce_core::ResilienceConfig {
        fault_rates: vec![
            *base.fault_rates.first().expect("non-empty"),
            *base.fault_rates.last().expect("non-empty"),
        ],
        ..base.clone()
    };
    reduce.characterize(coarse_cfg, exec)?;
    let coarse = reduce.table()?;
    println!("rate    fine_max  coarse_max  delta");
    let mut total_abs = 0i64;
    let probes: Vec<f64> = (0..=12).map(|i| 0.3 * i as f64 / 12.0).collect();
    for r in probes {
        let f = fine.epochs_for(r, Statistic::Max)?.epochs as i64;
        let c = coarse.epochs_for(r, Statistic::Max)?.epochs as i64;
        total_abs += (f - c).abs();
        println!("{r:.3}   {f:>8}  {c:>10}  {:>5}", c - f);
    }
    println!(
        "\nsummed |budget error| of the 2-point grid vs the {}-point grid: {total_abs} epochs\n\
         (a coarse grid linearises a convex epochs-vs-rate curve and over-budgets\n\
         mid-range chips).",
        base.fault_rates.len()
    );
    Ok(())
}

/// A4: FAP vs FAM as the retraining starting point.
fn mitigation(scale: Scale) -> Result<(), Box<dyn Error>> {
    let wb = scale.workbench(1);
    let (rows, cols) = wb.array_dims();
    let constraint = scale.constraint();
    let pretrained = wb.pretrain(scale.pretrain_epochs())?;
    let runner = FatRunner::new(wb)?;
    println!(
        "A4 — mitigation ablation: FAP vs FAM (constraint {:.0}%)",
        constraint * 100.0
    );
    println!("rate   strategy  pre_acc  epochs_to_constraint (3 maps)");
    for rate in [0.1f64, 0.2, 0.3] {
        for (name, strategy) in [("FAP", Mitigation::Fap), ("FAM", Mitigation::Fam)] {
            let mut accs = Vec::new();
            let mut epochs = Vec::new();
            for seed in 0..3u64 {
                let map = FaultMap::generate(rows, cols, rate, FaultModel::Random, 700 + seed)?;
                let out = runner.run(
                    &pretrained,
                    &map,
                    16,
                    StopRule::AtAccuracy(constraint),
                    strategy,
                    seed,
                )?;
                accs.push(out.pre_retrain_accuracy);
                epochs.push(
                    out.epochs_to_reach(constraint)
                        .map_or("-".to_string(), |e| e.to_string()),
                );
            }
            println!(
                "{rate:.2}   {name:<8}  {:.3}    [{}]",
                accs.iter().sum::<f32>() / accs.len() as f32,
                epochs.join(", ")
            );
        }
    }
    println!(
        "\nFAM starts retraining from a better operating point, so the same\n\
         constraint is typically reached in the same or fewer epochs."
    );
    Ok(())
}

/// A1: max vs mean vs mean+margin selection statistics.
fn margin(scale: Scale, exec: &ExecConfig) -> Result<(), Box<dyn Error>> {
    let wb = scale.workbench(1);
    let array = wb.array_dims();
    let constraint = scale.constraint();
    let mut reduce = Reduce::new(wb, constraint, scale.pretrain_epochs())?;
    reduce.characterize(scale.resilience_config(), exec)?;
    let fleet = generate_fleet(&scale.fleet_config(
        array,
        Some(match scale {
            Scale::Smoke => 12,
            _ => 40,
        }),
    ))?;
    println!("A1 — selection statistic ablation ({} chips)", fleet.len());
    println!("policy                satisfied  total_epochs");
    for policy in [
        RetrainPolicy::Reduce(Statistic::Mean),
        RetrainPolicy::Reduce(Statistic::MeanPlusMargin(1.0)),
        RetrainPolicy::Reduce(Statistic::MeanPlusMargin(2.0)),
        RetrainPolicy::Reduce(Statistic::Max),
    ] {
        let r = reduce.deploy(&fleet, policy, exec)?;
        println!(
            "{:<22} {:>6}/{:<3}  {:>12}",
            r.policy, r.satisfied, r.evaluated, r.total_epochs
        );
    }
    println!(
        "\nthe margin interpolates between mean (cheap, undertrains) and max\n\
         (robust, the paper's choice)."
    );
    Ok(())
}

/// Why FAP exists: unprotected stuck-at execution vs FAP bypass vs FAP+T.
fn unprotected(scale: Scale) -> Result<(), Box<dyn Error>> {
    let wb = scale.workbench(1);
    let (rows, cols) = wb.array_dims();
    let pretrained = wb.pretrain(scale.pretrain_epochs())?;
    let runner = FatRunner::new(wb)?;
    println!(
        "motivation ablation — unprotected vs FAP vs FAP+T (baseline {:.2}%)",
        pretrained.baseline_accuracy * 100.0
    );
    println!("rate    unprotected  FAP(no-retrain)  FAP+T(2 epochs)");
    for rate in [0.01f64, 0.02, 0.05, 0.10] {
        let (mut unp, mut fap, mut fat) = (0.0f32, 0.0f32, 0.0f32);
        let repeats = 3u64;
        for seed in 0..repeats {
            let map = FaultMap::generate(rows, cols, rate, FaultModel::Random, 900 + seed)?;
            // Stuck value: a saturated weight, far outside the trained range.
            unp += runner.unprotected_accuracy(&pretrained, &map, 8.0)?;
            let out = runner.run(&pretrained, &map, 2, StopRule::Exact, Mitigation::Fap, seed)?;
            fap += out.pre_retrain_accuracy;
            fat += out.final_accuracy();
        }
        let r = repeats as f32;
        println!(
            "{rate:.2}   {:>10.2}%  {:>14.2}%  {:>14.2}%",
            unp / r * 100.0,
            fap / r * 100.0,
            fat / r * 100.0
        );
    }
    println!(
        "\neven ~1-2% stuck-at faults are catastrophic without mitigation,\n\
         FAP alone degrades gracefully, and FAP+T recovers the baseline —\n\
         the accuracy hierarchy the paper's related-work section describes."
    );
    Ok(())
}

/// BN-recalibration extension: masked batch-normalised networks evaluated
/// with stale running statistics vs after statistics recalibration.
fn bn_recal() -> Result<(), Box<dyn Error>> {
    use reduce_core::{ModelSpec, TaskSpec, Workbench};
    use reduce_data::SynthImageConfig;
    use reduce_nn::models::VggConfig;
    // A batch-normalised nano-VGG (the default paper-scale model disables
    // BN precisely because of this effect).
    let vgg = VggConfig::nano(10); // batch_norm: true
    let images = SynthImageConfig::cifar_like(400, 1);
    let mut wb = Workbench::paper_scale(400, 400, 1);
    wb.model = ModelSpec::Vgg(vgg);
    wb.task = TaskSpec::SynthImages {
        config: images,
        train_samples: 400,
        test_samples: 400,
    };
    let pretrained = wb.pretrain(15)?;
    println!(
        "BN-recalibration ablation (batch-normalised nano-VGG, baseline {:.2}%)",
        pretrained.baseline_accuracy * 100.0
    );
    println!("rate   stale_stats_acc  recalibrated_acc");
    let (rows, cols) = wb.array_dims();
    let stale_runner = FatRunner::new(wb.clone())?;
    wb.bn_recalibration_passes = 2;
    let recal_runner = FatRunner::new(wb)?;
    for rate in [0.02f64, 0.05, 0.1, 0.2] {
        let map = FaultMap::generate(rows, cols, rate, FaultModel::Random, 42)?;
        let stale = stale_runner.run(&pretrained, &map, 0, StopRule::Exact, Mitigation::Fap, 0)?;
        let recal = recal_runner.run(&pretrained, &map, 0, StopRule::Exact, Mitigation::Fap, 0)?;
        println!(
            "{rate:.2}   {:>13.2}%  {:>15.2}%",
            stale.pre_retrain_accuracy * 100.0,
            recal.pre_retrain_accuracy * 100.0
        );
    }
    println!(
        "\nmasking shifts activation statistics; without recalibration a\n\
         batch-normalised network collapses at any fault rate, which is why\n\
         the headline experiments disable BN (see DESIGN.md) — with two\n\
         recalibration passes the graceful-degradation shape returns."
    );
    Ok(())
}

/// Early-stop extension: epochs saved by evaluating during FAT.
fn early_stop(scale: Scale, exec: &ExecConfig) -> Result<(), Box<dyn Error>> {
    let wb = scale.workbench(1);
    let array = wb.array_dims();
    let constraint = scale.constraint();
    let mut reduce = Reduce::new(wb.clone(), constraint, scale.pretrain_epochs())?;
    reduce.characterize(scale.resilience_config(), exec)?;
    let table = reduce.table()?;
    let fleet = generate_fleet(&scale.fleet_config(
        array,
        Some(match scale {
            Scale::Smoke => 12,
            _ => 30,
        }),
    ))?;
    println!(
        "early-stop extension ({} chips, constraint {:.0}%)",
        fleet.len(),
        constraint * 100.0
    );
    let runner = reduce.runner();
    let pretrained = reduce.pretrained();
    // Each chip is retrained twice (exact budget vs early stop) as one
    // executor job; per-chip counters are summed in fleet order.
    let per_chip = telemetry::timed_stage(exec.observer(), Stage::Deploy, || {
        reduce_core::exec::parallel_map(&fleet, exec.threads, |_, chip| {
            let budget = table.epochs_for(chip.fault_rate(), Statistic::Max)?.epochs;
            let exact = runner.run(
                pretrained,
                chip.fault_map(),
                budget,
                StopRule::Exact,
                Mitigation::Fap,
                chip.id() as u64,
            )?;
            let stopped = runner.run(
                pretrained,
                chip.fault_map(),
                budget,
                StopRule::AtAccuracy(constraint),
                Mitigation::Fap,
                chip.id() as u64,
            )?;
            Ok((
                exact.epochs_run(),
                stopped.epochs_run(),
                usize::from(exact.final_accuracy() >= constraint),
                usize::from(stopped.final_accuracy() >= constraint),
            ))
        })
    })?;
    let (mut exact_total, mut stop_total, mut exact_sat, mut stop_sat) = (0usize, 0usize, 0, 0);
    for (exact_epochs, stop_epochs, exact_ok, stop_ok) in per_chip {
        exact_total += exact_epochs;
        stop_total += stop_epochs;
        exact_sat += exact_ok;
        stop_sat += stop_ok;
    }
    println!("Reduce(max), exact budget : {exact_total} epochs, {exact_sat} satisfied");
    println!("Reduce(max) + early stop  : {stop_total} epochs, {stop_sat} satisfied");
    println!(
        "\nearly stopping trades per-epoch evaluation cost for epoch savings —\n\
         a natural extension of the paper's fixed-amount Step 3."
    );
    Ok(())
}
