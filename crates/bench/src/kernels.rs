//! Kernel-comparison harness for the GEMM implementations.
//!
//! Every registered [`Kernel`] runs the same workload set — figure-scale
//! layer shapes, cache-boundary shapes, edge shapes whose `m`/`k`/`n`
//! are not tile multiples, and the GEMV degenerates — and is checked for
//! agreement against the naive reference **before** any timing happens:
//! a kernel that produces wrong numbers is reported as failed and never
//! timed, so a fast-but-broken candidate can't look good in the output.
//!
//! Two gates exist, mirroring the contract in the `reduce_tensor`
//! `gemm` module docs:
//!
//! * [`Gate::Exact`] — bit-for-bit identical to the naive oracle. The
//!   blocked kernels and the production dispatch on small shapes hold
//!   this (same multiply-then-add rounding, same reduction order).
//! * [`Gate::Tolerance`] — elementwise within `fma_tol(k)`. The packed
//!   microkernel contracts each multiply-add with FMA (one rounding per
//!   step instead of two), so it is *more* accurate than the oracle but
//!   not bit-identical to it.
//!
//! Results serialise to a deterministic, machine-readable JSON document
//! (`BENCH_gemm.json` at the repo root); CI re-runs the harness in
//! `--check` mode and diffs the document's *schema* (numeric values
//! normalised away, `"ok"` booleans kept) against the checked-in copy.

use reduce_core::gemm::par_matmul_into;
use reduce_core::telemetry::Stopwatch;
use reduce_core::{ExecConfig, ReduceError};
use reduce_tensor::ops::gemm::{self, GemmVariant};
use reduce_tensor::{ops, Tensor};

/// How a kernel's output is compared against the naive oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Bit-for-bit identical to the oracle.
    Exact,
    /// Elementwise within [`fma_tol`] of the oracle (FMA kernels).
    Tolerance,
}

impl Gate {
    /// Stable name used in the JSON document.
    pub fn name(self) -> &'static str {
        match self {
            Gate::Exact => "exact",
            Gate::Tolerance => "tolerance",
        }
    }
}

/// A candidate GEMM implementation under comparison.
pub trait Kernel {
    /// Stable kernel name (JSON key and report label).
    fn name(&self) -> &'static str;

    /// The agreement gate this kernel must pass.
    fn gate(&self) -> Gate;

    /// Whether the kernel implements `variant` (the executor-parallel
    /// kernel is NN-only; everything else handles all three).
    fn supports(&self, variant: GemmVariant) -> bool {
        let _ = variant;
        true
    }

    /// Computes the `variant` product of `a` and `b` into `out`. The
    /// harness hands over a dirty (NaN-poisoned) `out`, so this also
    /// exercises the full-overwrite contract of the `_into` kernels.
    ///
    /// # Errors
    ///
    /// Shape/rank errors from the underlying entry points.
    fn run(
        &self,
        variant: GemmVariant,
        a: &Tensor,
        b: &Tensor,
        out: &mut Tensor,
    ) -> Result<(), ReduceError>;
}

/// Tolerance for [`Gate::Tolerance`] kernels over a length-`k` reduction
/// of entries bounded by ~10 (matches the tensor crate's property
/// tests).
pub fn fma_tol(k: usize) -> f32 {
    1e-3f32.max(k as f32 * 1e-4)
}

struct Naive;

impl Kernel for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }
    fn gate(&self) -> Gate {
        Gate::Exact
    }
    fn run(
        &self,
        variant: GemmVariant,
        a: &Tensor,
        b: &Tensor,
        out: &mut Tensor,
    ) -> Result<(), ReduceError> {
        Ok(gemm::reference::naive_into(variant, a, b, out)?)
    }
}

struct Blocked;

impl Kernel for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }
    fn gate(&self) -> Gate {
        Gate::Exact
    }
    fn run(
        &self,
        variant: GemmVariant,
        a: &Tensor,
        b: &Tensor,
        out: &mut Tensor,
    ) -> Result<(), ReduceError> {
        Ok(gemm::reference::blocked_into(variant, a, b, out)?)
    }
}

struct Packed;

impl Kernel for Packed {
    fn name(&self) -> &'static str {
        "packed"
    }
    fn gate(&self) -> Gate {
        Gate::Tolerance
    }
    fn run(
        &self,
        variant: GemmVariant,
        a: &Tensor,
        b: &Tensor,
        out: &mut Tensor,
    ) -> Result<(), ReduceError> {
        Ok(gemm::packed_into(variant, a, b, out)?)
    }
}

/// The production entry points (`matmul_into` and friends) with their
/// shape-based packed/blocked dispatch — what every call site actually
/// runs. Tolerance-gated because large shapes route to the FMA kernel.
struct Dispatch;

impl Kernel for Dispatch {
    fn name(&self) -> &'static str {
        "dispatch"
    }
    fn gate(&self) -> Gate {
        Gate::Tolerance
    }
    fn run(
        &self,
        variant: GemmVariant,
        a: &Tensor,
        b: &Tensor,
        out: &mut Tensor,
    ) -> Result<(), ReduceError> {
        match variant {
            GemmVariant::NN => Ok(ops::matmul_into(a, b, out)?),
            GemmVariant::TN => Ok(ops::matmul_tn_into(a, b, out)?),
            GemmVariant::NT => Ok(ops::matmul_nt_into(a, b, out)?),
        }
    }
}

/// The executor-parallel row-blocked kernel (`reduce_core::gemm`).
struct PackedPar {
    cfg: ExecConfig,
}

impl Kernel for PackedPar {
    fn name(&self) -> &'static str {
        "packed-par"
    }
    fn gate(&self) -> Gate {
        Gate::Tolerance
    }
    fn supports(&self, variant: GemmVariant) -> bool {
        variant == GemmVariant::NN
    }
    fn run(
        &self,
        variant: GemmVariant,
        a: &Tensor,
        b: &Tensor,
        out: &mut Tensor,
    ) -> Result<(), ReduceError> {
        debug_assert_eq!(variant, GemmVariant::NN);
        par_matmul_into(&self.cfg, a, b, out)
    }
}

/// Every kernel the harness compares. `threads` sizes the
/// executor-parallel candidate (0 = auto).
pub fn registry(threads: usize) -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(Naive),
        Box::new(Blocked),
        Box::new(Packed),
        Box::new(Dispatch),
        Box::new(PackedPar {
            cfg: ExecConfig::new(threads),
        }),
    ]
}

/// One GEMM problem size in the comparison set.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Rows of the logical product.
    pub m: usize,
    /// Shared (reduction) dimension.
    pub k: usize,
    /// Columns of the logical product.
    pub n: usize,
    /// Why this shape is in the set.
    pub why: &'static str,
}

impl Workload {
    /// The `"MxKxN"` label used in reports and the JSON document.
    pub fn label(&self) -> String {
        format!("{}x{}x{}", self.m, self.k, self.n)
    }
}

/// The fixed workload set: figure-scale layer shapes, tile/cache
/// boundary crossers, non-multiple edge shapes, and GEMV degenerates.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            m: 64,
            k: 96,
            n: 48,
            why: "fig2/fig3 forward-layer shape",
        },
        Workload {
            m: 256,
            k: 256,
            n: 256,
            why: "headline timing shape (criterion baseline)",
        },
        Workload {
            m: 67,
            k: 129,
            n: 43,
            why: "m/k/n not multiples of MR/NR tiles",
        },
        Workload {
            m: 131,
            k: 137,
            n: 17,
            why: "crosses the MC row block, ragged tail everywhere",
        },
        Workload {
            m: 1,
            k: 256,
            n: 64,
            why: "GEMV degenerate: single output row",
        },
        Workload {
            m: 64,
            k: 256,
            n: 1,
            why: "GEMV degenerate: single output column",
        },
        Workload {
            m: 33,
            k: 1,
            n: 29,
            why: "k = 1 outer-product degenerate",
        },
        Workload {
            m: 3,
            k: 5,
            n: 7,
            why: "tiny shape below the packed-dispatch threshold",
        },
    ]
}

/// The outcome of one kernel on one workload/variant cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Kernel name.
    pub kernel: &'static str,
    /// Gate the kernel was held to.
    pub gate: Gate,
    /// Whether the gate passed (false also covers kernel errors).
    pub ok: bool,
    /// Largest elementwise deviation from the naive oracle.
    pub max_abs_err: f32,
    /// Mean seconds per call over the timing reps (0.0 when timing was
    /// skipped: `--check` mode or a failed gate).
    pub seconds_per_call: f64,
}

/// All kernel outcomes for one workload/variant.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// The problem size.
    pub workload: Workload,
    /// The operand layout variant.
    pub variant: GemmVariant,
    /// One entry per registered kernel supporting this variant.
    pub cells: Vec<CellResult>,
}

/// Operands for a (workload, variant) cell, deterministic in the seed.
fn operands(w: &Workload, variant: GemmVariant, seed: u64) -> (Tensor, Tensor) {
    let (adim, bdim) = match variant {
        GemmVariant::NN => ([w.m, w.k], [w.k, w.n]),
        GemmVariant::TN => ([w.k, w.m], [w.k, w.n]),
        GemmVariant::NT => ([w.m, w.k], [w.n, w.k]),
    };
    (
        Tensor::rand_uniform(adim, -10.0, 10.0, seed),
        Tensor::rand_uniform(bdim, -10.0, 10.0, seed.wrapping_add(1)),
    )
}

fn max_abs_err(got: &Tensor, want: &Tensor) -> f32 {
    got.data()
        .iter()
        .zip(want.data())
        .map(|(g, w)| (g - w).abs())
        .fold(
            0.0f32,
            |acc, d| if d.is_nan() { f32::MAX } else { acc.max(d) },
        )
}

fn bit_identical(got: &Tensor, want: &Tensor) -> bool {
    got.data()
        .iter()
        .zip(want.data())
        .all(|(g, w)| g.to_bits() == w.to_bits())
}

/// Runs every registered kernel over every workload and variant:
/// correctness gate first, then (unless `check_only`) `reps` timed calls
/// per surviving cell. Results come back in deterministic
/// registry-then-workload-then-variant order.
///
/// # Errors
///
/// Only oracle failures (a naive kernel that cannot run a workload) are
/// errors; a candidate kernel failing its gate is reported in the
/// result, not returned as an error.
pub fn compare(
    kernels: &[Box<dyn Kernel>],
    workloads: &[Workload],
    reps: usize,
    check_only: bool,
) -> Result<Vec<WorkloadResult>, ReduceError> {
    let mut results = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        for variant in [GemmVariant::NN, GemmVariant::TN, GemmVariant::NT] {
            let (a, b) = operands(w, variant, 0x9E37 + wi as u64 * 2);
            let mut oracle = Tensor::zeros([w.m, w.n]);
            gemm::reference::naive_into(variant, &a, &b, &mut oracle)?;
            let mut cells = Vec::new();
            for kernel in kernels.iter().filter(|k| k.supports(variant)) {
                // NaN poison: a kernel that reads instead of overwriting
                // its workspace fails the gate immediately.
                let mut out = Tensor::full([w.m, w.n], f32::NAN);
                let ran = kernel.run(variant, &a, &b, &mut out);
                let err = max_abs_err(&out, &oracle);
                let ok = ran.is_ok()
                    && match kernel.gate() {
                        Gate::Exact => bit_identical(&out, &oracle),
                        Gate::Tolerance => err <= fma_tol(w.k),
                    };
                let seconds_per_call = if ok && !check_only && reps > 0 {
                    let clock = Stopwatch::start();
                    for _ in 0..reps {
                        // Result already validated; errors can't occur on
                        // the same operands.
                        let _ = kernel.run(variant, &a, &b, &mut out);
                    }
                    clock.seconds() / reps as f64
                } else {
                    0.0
                };
                cells.push(CellResult {
                    kernel: kernel.name(),
                    gate: kernel.gate(),
                    ok,
                    max_abs_err: err,
                    seconds_per_call,
                });
            }
            results.push(WorkloadResult {
                workload: *w,
                variant,
                cells,
            });
        }
    }
    Ok(results)
}

/// Renders the comparison as the deterministic JSON document CI diffs.
/// Key order, separators and float formatting are all fixed; the only
/// run-to-run variation is inside numeric literals, which the CI stage
/// normalises away before diffing.
pub fn render_json(results: &[WorkloadResult], reps: usize, threads: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"reduce-bench/gemm-comparison/v1\",\n");
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"shape\": \"{}\",\n", r.workload.label()));
        s.push_str(&format!("      \"variant\": \"{}\",\n", r.variant.name()));
        s.push_str(&format!("      \"why\": \"{}\",\n", r.workload.why));
        s.push_str("      \"kernels\": [\n");
        for (j, c) in r.cells.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"kernel\": \"{}\", \"gate\": \"{}\", \"ok\": {}, \
                 \"max_abs_err\": {:e}, \"seconds_per_call\": {:e}}}{}\n",
                c.kernel,
                c.gate.name(),
                c.ok,
                c.max_abs_err,
                c.seconds_per_call,
                if j + 1 == r.cells.len() { "" } else { "," }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_kernel_passes_its_gate() {
        // The harness's own acceptance criterion: correctness gate green
        // for the full registry over the full workload set.
        let results = compare(&registry(2), &workloads(), 0, true).expect("oracle runs everywhere");
        for r in &results {
            for c in &r.cells {
                assert!(
                    c.ok,
                    "{} failed its {} gate on {} {} (max_abs_err {})",
                    c.kernel,
                    c.gate.name(),
                    r.workload.label(),
                    r.variant.name(),
                    c.max_abs_err
                );
            }
        }
    }

    #[test]
    fn exact_kernels_report_zero_error_and_fma_kernels_stay_bounded() {
        let small = [Workload {
            m: 40,
            k: 140,
            n: 24,
            why: "test shape crossing the packed threshold",
        }];
        let results = compare(&registry(1), &small, 0, true).expect("oracle runs");
        for r in &results {
            for c in &r.cells {
                match c.gate {
                    Gate::Exact => assert_eq!(c.max_abs_err, 0.0, "{} drifted", c.kernel),
                    Gate::Tolerance => {
                        assert!(c.max_abs_err <= fma_tol(r.workload.k), "{}", c.kernel)
                    }
                }
            }
        }
    }

    #[test]
    fn a_broken_kernel_fails_the_gate_and_is_never_timed() {
        struct OffByOne;
        impl Kernel for OffByOne {
            fn name(&self) -> &'static str {
                "off-by-one"
            }
            fn gate(&self) -> Gate {
                Gate::Tolerance
            }
            fn run(
                &self,
                variant: GemmVariant,
                a: &Tensor,
                b: &Tensor,
                out: &mut Tensor,
            ) -> Result<(), ReduceError> {
                gemm::reference::naive_into(variant, a, b, out)?;
                if let Some(c) = out.data_mut().first_mut() {
                    *c += 1.0;
                }
                Ok(())
            }
        }
        let kernels: Vec<Box<dyn Kernel>> = vec![Box::new(OffByOne)];
        let w = [Workload {
            m: 8,
            k: 8,
            n: 8,
            why: "broken-kernel probe",
        }];
        // reps > 0 and check_only = false: timing would normally run, but
        // the failed gate must suppress it.
        let results = compare(&kernels, &w, 3, false).expect("oracle runs");
        for r in &results {
            assert!(!r.cells[0].ok, "a wrong result must fail the gate");
            assert_eq!(
                r.cells[0].seconds_per_call, 0.0,
                "failed cells are not timed"
            );
        }
    }

    #[test]
    fn json_document_is_deterministic_and_schema_stable() {
        let w = [Workload {
            m: 4,
            k: 4,
            n: 4,
            why: "schema probe",
        }];
        let kernels = registry(1);
        let one = render_json(&compare(&kernels, &w, 0, true).expect("runs"), 0, 1);
        let two = render_json(&compare(&kernels, &w, 0, true).expect("runs"), 0, 1);
        assert_eq!(one, two, "same inputs must render byte-identical JSON");
        assert!(one.contains("\"schema\": \"reduce-bench/gemm-comparison/v1\""));
        assert!(one.contains("\"variant\": \"nn\"") || one.contains("\"variant\": \"NN\""));
        assert!(one.contains("\"ok\": true"));
    }

    #[test]
    fn parallel_kernel_is_nn_only() {
        let kernels = registry(2);
        let par = kernels
            .iter()
            .find(|k| k.name() == "packed-par")
            .expect("registered");
        assert!(par.supports(GemmVariant::NN));
        assert!(!par.supports(GemmVariant::TN));
        assert!(!par.supports(GemmVariant::NT));
    }
}
