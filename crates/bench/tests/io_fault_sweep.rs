//! End-to-end IO-fault sweep over the `fig2` binary.
//!
//! The in-process exhaustive sweep lives in `reduce-core`'s journal unit
//! tests, and `scripts/ci.sh` runs the exhaustive binary sweep on the
//! chaos campaign. This test samples the binary protocol itself at a few
//! fault points — early (manifest creation), middle, and last — so
//! `cargo test` alone proves the crash/resume contract end to end:
//!
//! * an armed fault fires → exit 4 with the crash marker on stderr;
//! * `journal-tool verify` classifies the survivor (repair if corrupt);
//! * `fig2 --resume` completes the run with exit 0;
//! * the resumed redacted artifacts are byte-identical to an
//!   uninterrupted reference run;
//! * an index past the run's op count leaves the run untouched and
//!   prints the `io-fault: unfired` marker.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const FIG2: &str = env!("CARGO_BIN_EXE_fig2");
const JOURNAL_TOOL: &str = env!("CARGO_BIN_EXE_journal-tool");

/// Redacted smoke arguments shared by every run in this test.
const SMOKE: &[&str] = &["--scale", "smoke", "--threads", "2", "--redact-timing"];

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "reduce-io-fault-sweep-{}-{tag}",
        std::process::id()
    ));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"))
}

fn fig2(extra: &[&str]) -> Output {
    let mut args: Vec<&str> = SMOKE.to_vec();
    args.extend_from_slice(extra);
    run(FIG2, &args)
}

fn code(output: &Output) -> i32 {
    output.status.code().expect("exit code (not a signal)")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn assert_same_artifacts(reference: &Path, resumed: &Path) {
    for artifact in ["run_log.jsonl", "manifest.json"] {
        let want = fs::read(reference.join(artifact)).expect("read reference artifact");
        let got = fs::read(resumed.join(artifact)).expect("read resumed artifact");
        assert!(
            want == got,
            "{artifact} of the resumed run differs from the uninterrupted reference"
        );
    }
}

#[test]
fn sampled_fault_points_crash_verify_and_resume_byte_identically() {
    let root = scratch_dir("sampled");
    let ref_dir = root.join("ref");
    fs::create_dir_all(&ref_dir).expect("create ref dir");

    // Uninterrupted reference run.
    let reference = fig2(&["--out", ref_dir.to_str().expect("utf-8 path")]);
    assert_eq!(
        code(&reference),
        0,
        "reference run failed: {}",
        stderr(&reference)
    );

    // Count the run's artifact IO ops by arming an index past any run:
    // the binary must complete untouched and report the total op count.
    let probe_dir = root.join("probe");
    fs::create_dir_all(&probe_dir).expect("create probe dir");
    let probe = fig2(&[
        "--out",
        probe_dir.to_str().expect("utf-8 path"),
        "--io-fault",
        "enospc@1000000",
    ]);
    assert_eq!(code(&probe), 0, "unfired run failed: {}", stderr(&probe));
    let probe_err = stderr(&probe);
    let total_ops: u64 = probe_err
        .split("beyond the run's ")
        .nth(1)
        .and_then(|rest| rest.split(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no op count in unfired marker: {probe_err}"));
    assert!(
        probe_err.contains("io-fault: unfired"),
        "missing unfired marker: {probe_err}"
    );
    assert!(
        total_ops > 10,
        "suspiciously few artifact IO ops: {total_ops}"
    );
    assert_same_artifacts(&ref_dir, &probe_dir);

    // Sample one early, one middle, and the last fault point, pairing
    // each with a different fault kind. ci.sh sweeps every index.
    let samples = [
        (1, "torn"),
        (total_ops / 2, "rename-fail"),
        (total_ops - 1, "short"),
    ];
    for (index, kind) in samples {
        let cut_dir = root.join(format!("cut-{kind}-{index}"));
        fs::create_dir_all(&cut_dir).expect("create cut dir");
        let cut_path = cut_dir.to_str().expect("utf-8 path");
        let spec = format!("{kind}@{index}");

        let crashed = fig2(&["--out", cut_path, "--io-fault", &spec]);
        assert_eq!(
            code(&crashed),
            4,
            "{spec}: expected the crash exit code, got {}: {}",
            code(&crashed),
            stderr(&crashed)
        );
        assert!(
            stderr(&crashed).contains(&format!("io-fault: injected {kind} at op {index} fired")),
            "{spec}: missing crash marker: {}",
            stderr(&crashed)
        );

        // Triage the survivor; a corrupt journal must repair cleanly.
        let verify = run(JOURNAL_TOOL, &["verify", cut_path]);
        match code(&verify) {
            0 | 2 => {}
            3 => {
                let repair = run(JOURNAL_TOOL, &["repair", cut_path]);
                assert_eq!(
                    code(&repair),
                    0,
                    "{spec}: repair failed: {}",
                    stderr(&repair)
                );
            }
            other => panic!(
                "{spec}: journal-tool verify exited {other}: {}",
                stderr(&verify)
            ),
        }

        let resumed = fig2(&["--resume", cut_path]);
        assert_eq!(
            code(&resumed),
            0,
            "{spec}: resume failed: {}",
            stderr(&resumed)
        );
        assert_same_artifacts(&ref_dir, &cut_dir);

        // After the resumed run the journal must verify clean.
        let clean = run(JOURNAL_TOOL, &["verify", cut_path]);
        assert_eq!(
            code(&clean),
            0,
            "{spec}: resumed journal not clean: {}",
            stderr(&clean)
        );
    }

    fs::remove_dir_all(&root).ok();
}
