//! Property-based tests for the NN framework: invariants over arbitrary
//! architectures, data and masks.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use reduce_nn::layers::{Linear, Mode, Relu};
use reduce_nn::{
    accuracy, models, CrossEntropyLoss, Loss, Parameter, Sequential, Sgd, Target, TrainConfig,
    Trainer,
};
use reduce_tensor::Tensor;

/// Strategy: small MLP dims (input, hidden..., classes>=2).
fn mlp_dims() -> impl Strategy<Value = Vec<usize>> {
    (
        2usize..6,
        prop::collection::vec(2usize..12, 1..3),
        2usize..5,
    )
        .prop_map(|(inp, hidden, classes)| {
            let mut dims = vec![inp];
            dims.extend(hidden);
            dims.push(classes);
            dims
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cross-entropy gradient rows always sum to ~0 (softmax simplex
    /// tangency), for any logits and labels.
    #[test]
    fn ce_grad_rows_sum_to_zero(
        n in 1usize..6,
        c in 2usize..6,
        seed in 0u64..1000,
    ) {
        let logits = Tensor::rand_uniform([n, c], -4.0, 4.0, seed);
        let labels: Vec<usize> = (0..n).map(|i| i % c).collect();
        let out = CrossEntropyLoss.evaluate(&logits, Target::Labels(&labels))
            .expect("consistent");
        for i in 0..n {
            let s: f32 = out.grad.row_slice(i).expect("in range").iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {i} sums to {s}");
        }
        prop_assert!(out.loss >= 0.0);
    }

    /// Loss is minimal exactly when the correct logit dominates.
    #[test]
    fn ce_rewards_correct_confidence(c in 2usize..6, label in 0usize..6) {
        let label = label % c;
        let mut good = Tensor::zeros([1, c]);
        good.data_mut()[label] = 10.0;
        let mut bad = Tensor::zeros([1, c]);
        bad.data_mut()[(label + 1) % c] = 10.0;
        let lg = CrossEntropyLoss.evaluate(&good, Target::Labels(&[label]))
            .expect("consistent").loss;
        let lb = CrossEntropyLoss.evaluate(&bad, Target::Labels(&[label]))
            .expect("consistent").loss;
        prop_assert!(lg < lb);
    }

    /// A few epochs of SGD never leave the loss higher than 3x the initial
    /// loss, and usually reduce it, for arbitrary small MLPs on separable
    /// blobs.
    #[test]
    fn sgd_training_reduces_loss(dims in mlp_dims(), seed in 0u64..500) {
        let inp = dims[0];
        let classes = *dims.last().expect("non-empty");
        let mut model = models::mlp(&dims, seed).expect("valid dims");
        // Separable two-blob data projected into `inp` dims.
        let n = 64;
        let mut data = Vec::with_capacity(n * inp);
        let mut labels = Vec::with_capacity(n);
        let noise = Tensor::rand_uniform([n * inp], -0.3, 0.3, seed + 1);
        for i in 0..n {
            let class = i % classes;
            let centre = class as f32 * 2.0 / classes as f32 - 1.0;
            for d in 0..inp {
                data.push(centre + noise.data()[i * inp + d]);
            }
            labels.push(class);
        }
        let x = Tensor::from_vec(data, [n, inp]).expect("length matches");
        let mut trainer = Trainer::new(
            Sgd::with_momentum(0.03, 0.9),
            CrossEntropyLoss,
            TrainConfig { batch_size: 16, shuffle_seed: seed, ..TrainConfig::default() },
        );
        let history = trainer.fit(&mut model, &x, &labels, 6).expect("valid data");
        let first = history.first().expect("non-empty").loss;
        let last = history.last().expect("non-empty").loss;
        prop_assert!(last.is_finite());
        prop_assert!(last <= first * 3.0 + 1.0, "diverged: {first} -> {last}");
    }

    /// Whatever mask is installed, arbitrary training steps never move a
    /// masked weight off zero.
    #[test]
    fn masks_survive_arbitrary_training(
        mask_bits in prop::collection::vec(prop::bool::ANY, 24),
        steps in 1usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut model = Sequential::new()
            .push(Linear::new(4, 6, &mut rng))
            .push(Relu::new())
            .push(Linear::new(6, 2, &mut rng));
        let mask = Tensor::from_vec(
            mask_bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
            [6, 4],
        ).expect("length matches");
        model.set_weight_masks(&[Some(mask.clone()), None]).expect("count matches");
        let x = Tensor::rand_uniform([16, 4], -1.0, 1.0, seed + 2);
        let labels: Vec<usize> = (0..16).map(|i| i % 2).collect();
        let mut trainer = Trainer::new(
            Sgd::with_momentum(0.1, 0.9),
            CrossEntropyLoss,
            TrainConfig::default(),
        );
        for _ in 0..steps {
            trainer.train_epoch(&mut model, &x, &labels).expect("valid data");
        }
        prop_assert!(model.mask_invariants_hold());
        let w = model.weight_params()[0].value().clone();
        for (wv, mv) in w.data().iter().zip(mask.data()) {
            if *mv == 0.0 {
                prop_assert_eq!(*wv, 0.0);
            }
        }
    }

    /// state_dict / load_state_dict round-trips arbitrary MLPs exactly.
    #[test]
    fn checkpoint_round_trip(dims in mlp_dims(), seed in 0u64..500) {
        let model = models::mlp(&dims, seed).expect("valid dims");
        let state = model.state_dict();
        let mut fresh = models::mlp(&dims, seed + 1).expect("valid dims");
        fresh.load_state_dict(&state).expect("same architecture");
        prop_assert_eq!(fresh.state_dict(), state);
    }

    /// Accuracy is always within [0, 1] and exact for degenerate logits.
    #[test]
    fn accuracy_bounds(n in 1usize..20, c in 2usize..6, seed in 0u64..500) {
        let logits = Tensor::rand_uniform([n, c], -1.0, 1.0, seed);
        let labels: Vec<usize> = (0..n).map(|i| (i * 7) % c).collect();
        let a = accuracy(&logits, &labels).expect("consistent");
        prop_assert!((0.0..=1.0).contains(&a));
    }

    /// Optimizer updates scale linearly with the learning rate for plain
    /// SGD (no momentum, no decay).
    #[test]
    fn sgd_update_linear_in_lr(lr in 0.001f32..0.5, g in -2.0f32..2.0) {
        let mut p1 = Parameter::new("w", Tensor::ones([1]));
        p1.grad_mut().data_mut()[0] = g;
        let mut o1 = Sgd::new(lr);
        use reduce_nn::Optimizer as _;
        o1.step(&mut [&mut p1]).expect("stable");
        let delta1 = 1.0 - p1.value().data()[0];

        let mut p2 = Parameter::new("w", Tensor::ones([1]));
        p2.grad_mut().data_mut()[0] = g;
        let mut o2 = Sgd::new(2.0 * lr);
        o2.step(&mut [&mut p2]).expect("stable");
        let delta2 = 1.0 - p2.value().data()[0];
        prop_assert!((delta2 - 2.0 * delta1).abs() < 1e-5);
    }

    /// snapshot() / restore() round-trips weights bit-identically for
    /// arbitrary MLPs, even after the live model is mutated in between.
    #[test]
    fn snapshot_restore_round_trips_bit_identically(dims in mlp_dims(), seed in 0u64..500) {
        let mut model = models::mlp(&dims, seed).expect("valid dims");
        let snap = model.snapshot();
        let reference = model.state_dict();
        // Mutate the live model: the snapshot must not follow.
        for p in model.params_mut() {
            p.value_mut().fill(3.25);
        }
        model.restore(&snap).expect("same architecture");
        let back = model.state_dict();
        prop_assert_eq!(back.len(), reference.len());
        for ((k1, v1), (k2, v2)) in back.iter().zip(&reference) {
            prop_assert_eq!(k1, k2);
            prop_assert_eq!(v1, v2);
        }
    }

    /// Two models restored from one shared snapshot stay isolated: masking
    /// one (the copy-on-write trigger) never leaks masked zeros into the
    /// other model or back into the snapshot.
    #[test]
    fn restored_models_do_not_alias_across_masks(
        dims in mlp_dims(),
        mask_bits in prop::collection::vec(prop::bool::ANY, 64),
        seed in 0u64..500,
    ) {
        let pretrained = models::mlp(&dims, seed).expect("valid dims");
        let snap = pretrained.snapshot();
        let mut chip_a = models::mlp(&dims, seed + 1).expect("valid dims");
        let mut chip_b = models::mlp(&dims, seed + 2).expect("valid dims");
        chip_a.restore(&snap).expect("same architecture");
        chip_b.restore(&snap).expect("same architecture");
        // Mask chip A's first weight matrix with arbitrary bits.
        let wdims = chip_a.weight_params()[0].value().dims().to_vec();
        let len: usize = wdims.iter().product();
        let mask = Tensor::from_vec(
            (0..len)
                .map(|i| if mask_bits[i % mask_bits.len()] { 1.0 } else { 0.0 })
                .collect(),
            wdims,
        ).expect("length matches");
        let n_weights = chip_a.weight_params().len();
        let masks: Vec<Option<Tensor>> = (0..n_weights)
            .map(|i| if i == 0 { Some(mask.clone()) } else { None })
            .collect();
        chip_a.set_weight_masks(&masks).expect("count matches");
        prop_assert!(chip_a.mask_invariants_hold());
        // Chip B and the snapshot keep the original (unmasked) weights.
        for ((_, s), p) in snap.entries().iter().zip(chip_b.params()) {
            prop_assert_eq!(s, p.value());
        }
        for ((_, s), p) in snap.entries().iter().zip(pretrained.params()) {
            prop_assert_eq!(s, p.value());
        }
    }

    /// Eval-mode forward passes are pure: repeating them gives identical
    /// outputs and leaves parameters untouched.
    #[test]
    fn eval_forward_is_pure(dims in mlp_dims(), seed in 0u64..500) {
        let mut model = models::mlp(&dims, seed).expect("valid dims");
        let before = model.state_dict();
        let x = Tensor::rand_uniform([3, dims[0]], -1.0, 1.0, seed + 5);
        let y1 = model.forward(&x, Mode::Eval).expect("valid input");
        let y2 = model.forward(&x, Mode::Eval).expect("valid input");
        prop_assert_eq!(y1, y2);
        prop_assert_eq!(model.state_dict(), before);
    }
}
