//! Shape-keyed scratch-buffer arena for allocation-free hot loops.
//!
//! Training re-enters the same forward/backward graph every batch, so the
//! set of intermediate tensor sizes is fixed after the first iteration. A
//! [`Workspace`] exploits that: [`Workspace::take`] hands out a zeroed
//! tensor, recycling a previously returned buffer of the same element count
//! when one is available, and [`Workspace::give`] returns buffers to the
//! pool. After warm-up, steady-state epochs run without heap allocation in
//! the layer paths — observable via [`WorkspaceStats`].
//!
//! Recycling never breaks aliasing: [`Workspace::give`] only pools a buffer
//! when the tensor is its storage's sole owner (see
//! [`Tensor::into_unique_vec`]); tensors still shared with a snapshot or a
//! layer cache are simply dropped and their storage stays alive wherever it
//! is referenced.

use reduce_tensor::{Shape, Tensor};
use std::collections::BTreeMap;

/// Allocation counters for a [`Workspace`].
///
/// `misses` and `bytes_allocated` stop growing once a training loop reaches
/// steady state — that is the zero-allocation property the telemetry layer
/// reports per FAT run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// `take` calls served by recycling a pooled buffer.
    pub hits: u64,
    /// `take` calls that had to allocate a fresh buffer.
    pub misses: u64,
    /// Total bytes allocated by misses.
    pub bytes_allocated: u64,
}

impl WorkspaceStats {
    /// Accumulates `other` into `self` (used to aggregate across runs).
    pub fn merge(&mut self, other: &WorkspaceStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bytes_allocated += other.bytes_allocated;
    }

    /// Total `take` calls.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A pool of reusable `f32` buffers keyed by element count.
///
/// # Examples
///
/// ```
/// use reduce_nn::Workspace;
///
/// let mut ws = Workspace::new();
/// let t = ws.take([2, 3]);
/// assert_eq!(t.data(), &[0.0; 6]);
/// ws.give(t);
/// let u = ws.take([6]); // same element count: recycled, not allocated
/// assert_eq!(ws.stats().hits, 1);
/// assert_eq!(ws.stats().misses, 1);
/// # drop(u);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    pools: BTreeMap<usize, Vec<Vec<f32>>>,
    stats: WorkspaceStats,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Returns a zeroed tensor of the requested shape, reusing a pooled
    /// buffer of the same element count when available.
    ///
    /// The returned tensor is always all-zero regardless of what the
    /// recycled buffer last held, so `take` is a drop-in replacement for
    /// `Tensor::zeros` — results cannot depend on recycling history.
    pub fn take<S: Into<Shape>>(&mut self, shape: S) -> Tensor {
        let shape = shape.into();
        let n = shape.volume();
        if let Some(mut buf) = self.pools.get_mut(&n).and_then(Vec::pop) {
            self.stats.hits += 1;
            buf.iter_mut().for_each(|x| *x = 0.0);
            // Volume matches by construction, so from_vec cannot fail; the
            // fallback allocation keeps this panic-free regardless.
            match Tensor::from_vec(buf, shape.clone()) {
                Ok(t) => t,
                Err(_) => Tensor::zeros(shape),
            }
        } else {
            self.stats.misses += 1;
            self.stats.bytes_allocated += (n as u64) * (std::mem::size_of::<f32>() as u64);
            Tensor::zeros(shape)
        }
    }

    /// Returns a buffer to the pool for later reuse.
    ///
    /// Only tensors that are the sole owner of their storage are pooled;
    /// shared tensors (snapshots, layer caches) are dropped, leaving the
    /// storage alive at its other owners.
    pub fn give(&mut self, t: Tensor) {
        let n = t.len();
        if n == 0 {
            return;
        }
        if let Some(buf) = t.into_unique_vec() {
            self.pools.entry(n).or_default().push(buf);
        }
    }

    /// Current allocation counters.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Resets the counters (the pooled buffers are kept).
    pub fn reset_stats(&mut self) {
        self.stats = WorkspaceStats::default();
    }

    /// Drops every pooled buffer (counters are kept).
    pub fn clear(&mut self) {
        self.pools.clear();
    }

    /// Number of buffers currently pooled.
    pub fn pooled_buffers(&self) -> usize {
        self.pools.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_dirty_give() {
        let mut ws = Workspace::new();
        let mut t = ws.take([4]);
        t.fill(7.0);
        ws.give(t);
        let u = ws.take([2, 2]);
        assert_eq!(u.data(), &[0.0; 4]);
        assert_eq!(ws.stats().hits, 1);
        assert_eq!(ws.stats().misses, 1);
    }

    #[test]
    fn miss_counts_bytes() {
        let mut ws = Workspace::new();
        let _t = ws.take([8]);
        assert_eq!(ws.stats().bytes_allocated, 32);
        assert_eq!(ws.stats().requests(), 1);
    }

    #[test]
    fn shared_tensors_are_not_pooled() {
        let mut ws = Workspace::new();
        let t = ws.take([4]);
        let alias = t.clone();
        ws.give(t); // shared: dropped, not pooled
        assert_eq!(ws.pooled_buffers(), 0);
        assert_eq!(alias.data(), &[0.0; 4]);
        ws.give(alias); // now unique: pooled
        assert_eq!(ws.pooled_buffers(), 1);
    }

    #[test]
    fn steady_state_has_no_new_misses() {
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let a = ws.take([16]);
            let b = ws.take([16]);
            ws.give(a);
            ws.give(b);
        }
        let s = ws.stats();
        assert_eq!(s.misses, 2, "only the first round allocates");
        assert_eq!(s.hits, 4);
    }

    #[test]
    fn empty_tensors_are_ignored() {
        let mut ws = Workspace::new();
        ws.give(Tensor::zeros([0]));
        assert_eq!(ws.pooled_buffers(), 0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = WorkspaceStats {
            hits: 1,
            misses: 2,
            bytes_allocated: 8,
        };
        a.merge(&WorkspaceStats {
            hits: 3,
            misses: 4,
            bytes_allocated: 16,
        });
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 6);
        assert_eq!(a.bytes_allocated, 24);
    }
}
