//! Batch normalisation layers.

use crate::error::{NnError, Result};
use crate::layers::{Layer, Mode};
use crate::param::Parameter;
use crate::workspace::Workspace;
use reduce_tensor::Tensor;

const DEFAULT_EPS: f32 = 1e-5;
const DEFAULT_MOMENTUM: f32 = 0.1;

/// Shared state of the 1-D/2-D batch-norm implementations.
#[derive(Debug)]
struct BatchNormState {
    gamma: Parameter,
    beta: Parameter,
    running_mean: Tensor,
    running_var: Tensor,
    eps: f32,
    momentum: f32,
    features: usize,
    /// Cached normalised activations and per-feature inverse std from the
    /// last train-mode forward.
    cached: Option<(Tensor, Vec<f32>)>,
    /// Reusable per-feature scratch (mean/var in forward, grad sums in
    /// backward) so steady-state iterations allocate nothing.
    scratch_a: Vec<f32>,
    scratch_b: Vec<f32>,
}

impl BatchNormState {
    fn new(features: usize) -> Self {
        BatchNormState {
            gamma: Parameter::new("bn.gamma", Tensor::ones([features])),
            beta: Parameter::new("bn.beta", Tensor::zeros([features])),
            running_mean: Tensor::zeros([features]),
            running_var: Tensor::ones([features]),
            eps: DEFAULT_EPS,
            momentum: DEFAULT_MOMENTUM,
            features,
            cached: None,
            scratch_a: Vec::new(),
            scratch_b: Vec::new(),
        }
    }

    /// Normalises `x` where element `i` belongs to feature `feat(i)`.
    ///
    /// `group_size` is the number of elements per feature (N for 1-D,
    /// N·H·W for 2-D).
    fn forward_grouped<F: Fn(usize) -> usize>(
        &mut self,
        x: &Tensor,
        feat: F,
        group_size: usize,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<Tensor> {
        let c = self.features;
        if mode == Mode::Train && group_size == 0 {
            return Err(NnError::BadInput {
                layer: "batch_norm".to_string(),
                reason: "empty batch".to_string(),
            });
        }
        // Recycle last iteration's cached xhat tensor and inv_std allocation.
        let mut inv_std = match self.cached.take() {
            Some((stale, v)) => {
                ws.give(stale);
                v
            }
            // xtask:allow(hot-path-alloc): empty Vec::new is allocation-free; filled once at warm-up
            None => Vec::new(),
        };
        match mode {
            Mode::Train => {
                let mut mean = std::mem::take(&mut self.scratch_a);
                mean.clear();
                mean.resize(c, 0.0);
                let mut var = std::mem::take(&mut self.scratch_b);
                var.clear();
                var.resize(c, 0.0);
                for (i, &v) in x.data().iter().enumerate() {
                    mean[feat(i)] += v;
                }
                for m in &mut mean {
                    *m /= group_size as f32;
                }
                for (i, &v) in x.data().iter().enumerate() {
                    let d = v - mean[feat(i)];
                    var[feat(i)] += d * d;
                }
                for v in &mut var {
                    *v /= group_size as f32;
                }
                inv_std.clear();
                let eps = self.eps;
                inv_std.extend(var.iter().map(|&v| 1.0 / (v + eps).sqrt()));
                let mut xhat = ws.take(x.dims().to_vec());
                for (i, (h, &v)) in xhat.data_mut().iter_mut().zip(x.data()).enumerate() {
                    let f = feat(i);
                    *h = (v - mean[f]) * inv_std[f];
                }
                let mut y = ws.take(x.dims().to_vec());
                let (gd, bd) = (self.gamma.value().data(), self.beta.value().data());
                for (i, (o, &h)) in y.data_mut().iter_mut().zip(xhat.data()).enumerate() {
                    let f = feat(i);
                    *o = gd[f] * h + bd[f];
                }
                // Exponential running statistics for eval mode.
                let m = self.momentum;
                for f in 0..c {
                    let rm = &mut self.running_mean.data_mut()[f];
                    *rm = (1.0 - m) * *rm + m * mean[f];
                    let rv = &mut self.running_var.data_mut()[f];
                    *rv = (1.0 - m) * *rv + m * var[f];
                }
                self.scratch_a = mean;
                self.scratch_b = var;
                self.cached = Some((xhat, inv_std));
                Ok(y)
            }
            Mode::Eval => {
                let mut y = ws.take(x.dims().to_vec());
                let (gd, bd) = (self.gamma.value().data(), self.beta.value().data());
                let (rm, rv) = (self.running_mean.data(), self.running_var.data());
                let eps = self.eps;
                for (i, (o, &v)) in y.data_mut().iter_mut().zip(x.data()).enumerate() {
                    let f = feat(i);
                    let inv = 1.0 / (rv[f] + eps).sqrt();
                    *o = gd[f] * (v - rm[f]) * inv + bd[f];
                }
                // cached was drained above, matching the old `cached = None`.
                Ok(y)
            }
        }
    }

    fn backward_grouped<F: Fn(usize) -> usize>(
        &mut self,
        grad: &Tensor,
        feat: F,
        group_size: usize,
        layer_name: &str,
        ws: &mut Workspace,
    ) -> Result<Tensor> {
        let (xhat, inv_std) = self
            .cached
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardState {
                layer: layer_name.to_string(),
            })?;
        let c = self.features;
        let n = group_size as f32;
        let mut sum_dy = std::mem::take(&mut self.scratch_a);
        sum_dy.clear();
        sum_dy.resize(c, 0.0);
        let mut sum_dy_xhat = std::mem::take(&mut self.scratch_b);
        sum_dy_xhat.clear();
        sum_dy_xhat.resize(c, 0.0);
        for (i, &g) in grad.data().iter().enumerate() {
            let f = feat(i);
            sum_dy[f] += g;
            sum_dy_xhat[f] += g * xhat.data()[i];
        }
        // Parameter gradients.
        for f in 0..c {
            self.gamma.grad_mut().data_mut()[f] += sum_dy_xhat[f];
            self.beta.grad_mut().data_mut()[f] += sum_dy[f];
        }
        // Input gradient:
        // dx = gamma*inv_std/N * (N*dy - sum_dy - xhat * sum_dy_xhat)
        let gd = self.gamma.value().data();
        let mut gx = ws.take(grad.dims().to_vec());
        for (i, (o, &g)) in gx.data_mut().iter_mut().zip(grad.data()).enumerate() {
            let f = feat(i);
            *o = gd[f] * inv_std[f] / n * (n * g - sum_dy[f] - xhat.data()[i] * sum_dy_xhat[f]);
        }
        self.scratch_a = sum_dy;
        self.scratch_b = sum_dy_xhat;
        Ok(gx)
    }
}

/// Batch normalisation over the feature axis of a `(N, F)` matrix.
#[derive(Debug)]
pub struct BatchNorm1d {
    state: BatchNormState,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `features` columns.
    pub fn new(features: usize) -> Self {
        BatchNorm1d {
            state: BatchNormState::new(features),
        }
    }
}

impl Layer for BatchNorm1d {
    fn name(&self) -> String {
        format!("batch_norm1d({})", self.state.features)
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let (n, f) = x.shape().as_matrix().map_err(|_| NnError::BadInput {
            layer: self.name(),
            reason: format!("expected rank-2 input, got {:?}", x.dims()),
        })?;
        if f != self.state.features {
            return Err(NnError::BadInput {
                layer: self.name(),
                reason: format!("expected {} features, got {f}", self.state.features),
            });
        }
        self.state.forward_grouped(x, |i| i % f, n, mode, ws)
    }

    fn backward_ws(&mut self, grad: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let (n, f) = grad.shape().as_matrix()?;
        let name = self.name();
        self.state.backward_grouped(grad, |i| i % f, n, &name, ws)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.state.gamma, &self.state.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.state.gamma, &mut self.state.beta]
    }
}

/// Batch normalisation over the channel axis of an NCHW tensor.
#[derive(Debug)]
pub struct BatchNorm2d {
    state: BatchNormState,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            state: BatchNormState::new(channels),
        }
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> String {
        format!("batch_norm2d({})", self.state.features)
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let d = x.dims();
        if d.len() != 4 || d[1] != self.state.features {
            return Err(NnError::BadInput {
                layer: self.name(),
                reason: format!(
                    "expected NCHW input with {} channels, got {:?}",
                    self.state.features, d
                ),
            });
        }
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let hw = h * w;
        self.state
            .forward_grouped(x, move |i| (i / hw) % c, n * hw, mode, ws)
    }

    fn backward_ws(&mut self, grad: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let d = grad.dims().to_vec();
        if d.len() != 4 {
            return Err(NnError::BadInput {
                layer: self.name(),
                reason: format!("expected NCHW gradient, got {:?}", d),
            });
        }
        let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
        let hw = h * w;
        let name = self.name();
        self.state
            .backward_grouped(grad, move |i| (i / hw) % c, n * hw, &name, ws)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.state.gamma, &self.state.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.state.gamma, &mut self.state.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn normalises_batch_statistics_1d() {
        let mut bn = BatchNorm1d::new(3);
        let x = Tensor::rand_uniform([64, 3], 5.0, 9.0, 1);
        let y = bn.forward(&x, Mode::Train).expect("valid input");
        // Each column of y should be ~N(0,1).
        for f in 0..3 {
            let col: Vec<f32> = (0..64).map(|i| y.data()[i * 3 + f]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 64.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn normalises_channel_statistics_2d() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::rand_uniform([4, 2, 5, 5], -3.0, 3.0, 2);
        let y = bn.forward(&x, Mode::Train).expect("valid input");
        let hw = 25;
        for c in 0..2 {
            let vals: Vec<f32> = (0..4)
                .flat_map(|n| {
                    let base = (n * 2 + c) * hw;
                    y.data()[base..base + hw].to_vec()
                })
                .collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(2);
        // Warm the running statistics with several train batches.
        for seed in 0..60 {
            let x = Tensor::rand_normal([64, 2], 4.0, 2.0, seed);
            bn.forward(&x, Mode::Train).expect("valid input");
        }
        let x = Tensor::rand_normal([256, 2], 4.0, 2.0, 999);
        let y = bn.forward(&x, Mode::Eval).expect("valid input");
        // Eval normalisation with converged stats should roughly whiten.
        assert!(y.mean().abs() < 0.3, "mean {}", y.mean());
    }

    #[test]
    fn gradcheck_input_1d() {
        let mut bn = BatchNorm1d::new(3);
        let x = Tensor::rand_uniform([6, 3], -1.0, 1.0, 3);
        gradcheck::check_input_grad(&mut bn, &x, 5e-2);
    }

    #[test]
    fn gradcheck_params_1d() {
        let mut bn = BatchNorm1d::new(3);
        let x = Tensor::rand_uniform([6, 3], -1.0, 1.0, 4);
        gradcheck::check_param_grad(&mut bn, &x, 0, 5e-2);
        gradcheck::check_param_grad(&mut bn, &x, 1, 5e-2);
    }

    #[test]
    fn gradcheck_input_2d() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::rand_uniform([2, 2, 3, 3], -1.0, 1.0, 5);
        gradcheck::check_input_grad(&mut bn, &x, 5e-2);
    }

    #[test]
    fn shape_validation() {
        let mut bn1 = BatchNorm1d::new(3);
        assert!(bn1.forward(&Tensor::zeros([4, 2]), Mode::Train).is_err());
        let mut bn2 = BatchNorm2d::new(3);
        assert!(bn2
            .forward(&Tensor::zeros([4, 2, 2, 2]), Mode::Train)
            .is_err());
        assert!(bn2.forward(&Tensor::zeros([4, 3]), Mode::Train).is_err());
    }

    #[test]
    fn backward_before_forward_is_error() {
        assert!(BatchNorm1d::new(2)
            .backward(&Tensor::zeros([2, 2]))
            .is_err());
        assert!(BatchNorm2d::new(2)
            .backward(&Tensor::zeros([1, 2, 2, 2]))
            .is_err());
    }
}
