//! Elementwise activation layers.

use crate::error::{NnError, Result};
use crate::layers::{Layer, Mode};
use crate::workspace::Workspace;
use reduce_tensor::{Tensor, TensorError};

/// Elementwise `out[i] = f(x[i])` into a workspace tensor; bit-identical to
/// `x.map(f)` but allocation-free once the workspace is warm.
fn map_into_ws<F: Fn(f32) -> f32>(x: &Tensor, ws: &mut Workspace, f: F) -> Tensor {
    let mut out = ws.take(x.dims().to_vec());
    for (o, &v) in out.data_mut().iter_mut().zip(x.data()) {
        *o = f(v);
    }
    out
}

/// Elementwise `out[i] = f(a[i], b[i])` into a workspace tensor;
/// bit-identical to `a.zip_map(b, f)`.
fn zip_map_into_ws<F: Fn(f32, f32) -> f32>(
    a: &Tensor,
    b: &Tensor,
    ws: &mut Workspace,
    f: F,
) -> Result<Tensor> {
    if a.dims() != b.dims() {
        return Err(TensorError::ShapeMismatch {
            op: "zip_map",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        }
        .into());
    }
    let mut out = ws.take(a.dims().to_vec());
    for ((o, &av), &bv) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
        *o = f(av, bv);
    }
    Ok(out)
}

macro_rules! unary_activation {
    ($(#[$doc:meta])* $name:ident, $label:literal, $fwd:expr, $bwd:expr) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            cached_input: Option<Tensor>,
        }

        impl $name {
            /// Creates the activation layer.
            pub fn new() -> Self {
                Self { cached_input: None }
            }
        }

        impl Layer for $name {
            fn name(&self) -> String {
                $label.to_string()
            }

            fn forward_ws(&mut self, x: &Tensor, _mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
                if let Some(stale) = self.cached_input.take() {
                    ws.give(stale);
                }
                // xtask:allow(hot-path-alloc): O(1) copy-on-write handle clone for the backward cache
                self.cached_input = Some(x.clone());
                Ok(map_into_ws(x, ws, $fwd))
            }

            fn backward_ws(&mut self, grad: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
                let x = self
                    .cached_input
                    .as_ref()
                    .ok_or_else(|| NnError::MissingForwardState { layer: self.name() })?;
                zip_map_into_ws(grad, x, ws, |g, xv| g * $bwd(xv))
            }
        }
    };
}

unary_activation!(
    /// Rectified linear unit: `max(0, x)`.
    ///
    /// The derivative at exactly 0 is taken as 0 (the subgradient
    /// convention PyTorch uses).
    Relu,
    "relu",
    |x: f32| x.max(0.0),
    |x: f32| if x > 0.0 { 1.0 } else { 0.0 }
);

unary_activation!(
    /// Hyperbolic tangent activation.
    Tanh,
    "tanh",
    |x: f32| x.tanh(),
    |x: f32| {
        let t = x.tanh();
        1.0 - t * t
    }
);

unary_activation!(
    /// Logistic sigmoid activation.
    Sigmoid,
    "sigmoid",
    |x: f32| 1.0 / (1.0 + (-x).exp()),
    |x: f32| {
        let s = 1.0 / (1.0 + (-x).exp());
        s * (1.0 - s)
    }
);

/// Leaky rectified linear unit: `x` for positive inputs, `alpha·x`
/// otherwise.
#[derive(Debug)]
pub struct LeakyRelu {
    alpha: f32,
    cached_input: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-side slope.
    pub fn new(alpha: f32) -> Self {
        LeakyRelu {
            alpha,
            cached_input: None,
        }
    }

    /// The negative-side slope.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Default for LeakyRelu {
    fn default() -> Self {
        LeakyRelu::new(0.01)
    }
}

impl Layer for LeakyRelu {
    fn name(&self) -> String {
        format!("leaky_relu({})", self.alpha)
    }

    fn forward_ws(&mut self, x: &Tensor, _mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        if let Some(stale) = self.cached_input.take() {
            ws.give(stale);
        }
        // xtask:allow(hot-path-alloc): O(1) copy-on-write handle clone for the backward cache
        self.cached_input = Some(x.clone());
        let a = self.alpha;
        Ok(map_into_ws(x, ws, |v| if v > 0.0 { v } else { a * v }))
    }

    fn backward_ws(&mut self, grad: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardState { layer: self.name() })?;
        let a = self.alpha;
        zip_map_into_ws(grad, x, ws, |g, xv| if xv > 0.0 { g } else { a * g })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let y = r
            .forward(
                &Tensor::from_vec(vec![-1.0, 0.0, 2.0], [3]).expect("ok"),
                Mode::Eval,
            )
            .expect("any shape ok");
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_gates_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], [2]).expect("ok");
        let _ = r.forward(&x, Mode::Train).expect("any shape ok");
        let gx = r
            .backward(&Tensor::ones([2]))
            .expect("forward state present");
        assert_eq!(gx.data(), &[0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let mut l = LeakyRelu::new(0.1);
        let x = Tensor::from_vec(vec![-2.0, 2.0], [2]).expect("ok");
        let y = l.forward(&x, Mode::Eval).expect("any shape ok");
        assert!(y.approx_eq(&Tensor::from_vec(vec![-0.2, 2.0], [2]).expect("ok"), 1e-6));
    }

    #[test]
    fn tanh_and_sigmoid_ranges() {
        let x = Tensor::rand_uniform([32], -5.0, 5.0, 1);
        let mut t = Tanh::new();
        let y = t.forward(&x, Mode::Eval).expect("any shape ok");
        assert!(y.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        let mut s = Sigmoid::new();
        let y = s.forward(&x, Mode::Eval).expect("any shape ok");
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn gradcheck_all_activations() {
        // Avoid the ReLU kink: keep probes away from 0.
        let x =
            Tensor::from_vec(vec![-2.0, -1.0, -0.5, 0.5, 1.0, 2.0, 3.0, -3.0], [2, 4]).expect("ok");
        gradcheck::check_input_grad(&mut Relu::new(), &x, 1e-2);
        gradcheck::check_input_grad(&mut LeakyRelu::new(0.1), &x, 1e-2);
        gradcheck::check_input_grad(&mut Tanh::new(), &x, 1e-2);
        gradcheck::check_input_grad(&mut Sigmoid::new(), &x, 1e-2);
    }

    #[test]
    fn backward_without_forward_errors() {
        assert!(Relu::new().backward(&Tensor::ones([1])).is_err());
        assert!(Tanh::new().backward(&Tensor::ones([1])).is_err());
        assert!(Sigmoid::new().backward(&Tensor::ones([1])).is_err());
        assert!(LeakyRelu::default().backward(&Tensor::ones([1])).is_err());
    }

    #[test]
    fn activations_have_no_params() {
        assert!(Relu::new().params().is_empty());
    }
}
