//! 2-D convolution layer (im2col + GEMM).

use crate::error::{NnError, Result};
use crate::init::Init;
use crate::layers::{Layer, Mode};
use crate::param::Parameter;
use crate::workspace::Workspace;
use rand::Rng;
use reduce_tensor::ops::{self, Conv2dGeometry};
use reduce_tensor::Tensor;

/// A 2-D convolution over NCHW tensors.
///
/// The filter bank is stored as a `(out_channels, in_channels·kh·kw)` matrix
/// — the flattened-GEMM orientation that both the im2col forward pass and
/// the systolic-array weight mapper consume directly, so fault masks derived
/// from a chip's fault map apply to this parameter without reshaping.
#[derive(Debug)]
pub struct Conv2d {
    weight: Parameter,
    bias: Parameter,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached: Option<CachedForward>,
}

#[derive(Debug)]
struct CachedForward {
    cols: Tensor,
    geom: Conv2dGeometry,
    batch: usize,
}

impl Conv2d {
    /// Creates a square-kernel convolution with Kaiming-normal weights.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let w = Init::KaimingNormal.tensor(&[out_channels, fan_in], fan_in, out_channels, rng);
        Conv2d {
            weight: Parameter::new("conv2d.weight", w),
            bias: Parameter::new("conv2d.bias", Tensor::zeros([out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached: None,
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Square kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// The flattened `(out_channels, in·kh·kw)` filter parameter.
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Mutable filter parameter, e.g. for installing fault masks.
    pub fn weight_mut(&mut self) -> &mut Parameter {
        &mut self.weight
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        format!(
            "conv2d({}→{}, {}x{}, s{}, p{})",
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.kernel,
            self.stride,
            self.padding
        )
    }

    fn forward_ws(&mut self, x: &Tensor, _mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let d = x.dims();
        if d.len() != 4 || d[1] != self.in_channels {
            return Err(NnError::BadInput {
                layer: self.name(),
                reason: format!(
                    "expected NCHW input with {} channels, got {:?}",
                    self.in_channels, d
                ),
            });
        }
        if let Some(stale) = self.cached.take() {
            ws.give(stale.cols);
        }
        let (n, h, w) = (d[0], d[2], d[3]);
        let geom = Conv2dGeometry::new(h, w, self.kernel, self.kernel, self.stride, self.padding)?;
        let positions = n * geom.out_h * geom.out_w;
        let patch = self.in_channels * self.kernel * self.kernel;
        let mut cols = ws.take([positions, patch]);
        ops::im2col_into(x, &geom, &mut cols)?;
        let mut rows = ws.take([positions, self.out_channels]);
        ops::matmul_nt_into(&cols, self.weight.value(), &mut rows)?;
        ops::add_bias_rows_in_place(&mut rows, self.bias.value())?;
        let mut y = ws.take([n, self.out_channels, geom.out_h, geom.out_w]);
        ops::rows_to_nchw_into(&rows, n, self.out_channels, geom.out_h, geom.out_w, &mut y)?;
        ws.give(rows);
        self.cached = Some(CachedForward {
            cols,
            geom,
            batch: n,
        });
        Ok(y)
    }

    fn backward_ws(&mut self, grad: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let cached = self
            .cached
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardState { layer: self.name() })?;
        let gd = grad.dims();
        if gd.len() != 4
            || gd[0] != cached.batch
            || gd[1] != self.out_channels
            || gd[2] != cached.geom.out_h
            || gd[3] != cached.geom.out_w
        {
            return Err(NnError::BadInput {
                layer: self.name(),
                reason: format!("gradient shape {gd:?} does not match forward output"),
            });
        }
        let positions = cached.batch * cached.geom.out_h * cached.geom.out_w;
        let patch = self.in_channels * self.kernel * self.kernel;
        let mut grows = ws.take([positions, self.out_channels]);
        ops::nchw_to_rows_into(grad, &mut grows)?;
        // dW = growsᵀ · cols — (OC, N·OH·OW)·(N·OH·OW, C·K·K)
        let mut dw = ws.take([self.out_channels, patch]);
        ops::matmul_tn_into(&grows, &cached.cols, &mut dw)?;
        self.weight.grad_mut().axpy(1.0, &dw)?;
        ws.give(dw);
        let mut db = ws.take([self.out_channels]);
        grows.sum_rows_into(&mut db)?;
        self.bias.grad_mut().axpy(1.0, &db)?;
        ws.give(db);
        // dcols = grows · W — (N·OH·OW, OC)·(OC, C·K·K)
        let mut dcols = ws.take([positions, patch]);
        ops::matmul_into(&grows, self.weight.value(), &mut dcols)?;
        ws.give(grows);
        let mut gx = ws.take([
            cached.batch,
            self.in_channels,
            cached.geom.in_h,
            cached.geom.in_w,
        ]);
        ops::col2im_into(
            &dcols,
            cached.batch,
            self.in_channels,
            &cached.geom,
            &mut gx,
        )?;
        ws.give(dcols);
        Ok(gx)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(13)
    }

    #[test]
    fn forward_shapes_same_padding() {
        let mut c = Conv2d::new(3, 8, 3, 1, 1, &mut rng());
        let y = c
            .forward(&Tensor::zeros([2, 3, 8, 8]), Mode::Eval)
            .expect("valid input");
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn forward_shapes_strided() {
        let mut c = Conv2d::new(1, 4, 2, 2, 0, &mut rng());
        let y = c
            .forward(&Tensor::zeros([1, 1, 8, 8]), Mode::Eval)
            .expect("valid input");
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn rejects_wrong_channels_or_rank() {
        let mut c = Conv2d::new(3, 8, 3, 1, 1, &mut rng());
        assert!(c.forward(&Tensor::zeros([2, 4, 8, 8]), Mode::Eval).is_err());
        assert!(c.forward(&Tensor::zeros([2, 3, 8]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_before_forward_is_error() {
        let mut c = Conv2d::new(1, 1, 3, 1, 1, &mut rng());
        assert!(c.backward(&Tensor::zeros([1, 1, 4, 4])).is_err());
    }

    #[test]
    fn backward_rejects_wrong_grad_shape() {
        let mut c = Conv2d::new(1, 2, 3, 1, 1, &mut rng());
        let _ = c
            .forward(&Tensor::zeros([1, 1, 4, 4]), Mode::Train)
            .expect("valid input");
        assert!(c.backward(&Tensor::zeros([1, 2, 5, 5])).is_err());
    }

    #[test]
    fn gradcheck_input() {
        let mut c = Conv2d::new(2, 3, 3, 1, 1, &mut rng());
        let x = Tensor::rand_uniform([1, 2, 5, 5], -1.0, 1.0, 21);
        gradcheck::check_input_grad(&mut c, &x, 2e-2);
    }

    #[test]
    fn gradcheck_weight_and_bias() {
        let mut c = Conv2d::new(2, 3, 3, 1, 1, &mut rng());
        let x = Tensor::rand_uniform([2, 2, 4, 4], -1.0, 1.0, 22);
        gradcheck::check_param_grad(&mut c, &x, 0, 2e-2);
        gradcheck::check_param_grad(&mut c, &x, 1, 2e-2);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // A single 1x1 filter with weight 1 must copy the channel through.
        let mut c = Conv2d::new(1, 1, 1, 1, 0, &mut rng());
        c.weight_mut().value_mut().fill(1.0);
        let x = Tensor::rand_uniform([1, 1, 4, 4], -1.0, 1.0, 23);
        let y = c.forward(&x, Mode::Eval).expect("valid input");
        assert!(y.approx_eq(&x, 1e-6));
    }

    #[test]
    fn masked_filter_produces_zero_channel() {
        let mut c = Conv2d::new(1, 2, 3, 1, 1, &mut rng());
        // Mask out all weights of output channel 0.
        let mut mask = Tensor::ones([2, 9]);
        for j in 0..9 {
            mask.data_mut()[j] = 0.0;
        }
        c.weight_mut().set_mask(Some(mask)).expect("valid mask");
        let y = c
            .forward(
                &Tensor::rand_uniform([1, 1, 5, 5], -1.0, 1.0, 24),
                Mode::Eval,
            )
            .expect("valid input");
        let ch0: f32 = y.data()[..25].iter().map(|v| v.abs()).sum();
        assert_eq!(ch0, 0.0);
    }
}
