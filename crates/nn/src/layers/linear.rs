//! Fully connected layer.

use crate::error::{NnError, Result};
use crate::init::Init;
use crate::layers::{Layer, Mode};
use crate::param::Parameter;
use crate::workspace::Workspace;
use rand::Rng;
use reduce_tensor::{ops, Tensor};

/// A fully connected layer: `y = x · Wᵀ + b`.
///
/// The weight is stored as a row-major `(out_features, in_features)` matrix
/// — the same orientation the systolic-array mapper in `reduce-systolic`
/// tiles onto the PE grid, so fault masks apply to it directly.
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use reduce_nn::layers::{Layer, Linear, Mode};
/// use reduce_tensor::Tensor;
///
/// # fn main() -> Result<(), reduce_nn::NnError> {
/// let mut rng = SmallRng::seed_from_u64(0);
/// let mut fc = Linear::new(3, 2, &mut rng);
/// let y = fc.forward(&Tensor::zeros([4, 3]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[4, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Linear {
    weight: Parameter,
    bias: Parameter,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Kaiming-normal weights and zero bias.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self::with_init(in_features, out_features, Init::KaimingNormal, rng)
    }

    /// Creates a layer with an explicit weight initialisation scheme.
    pub fn with_init<R: Rng>(
        in_features: usize,
        out_features: usize,
        init: Init,
        rng: &mut R,
    ) -> Self {
        let w = init.tensor(&[out_features, in_features], in_features, out_features, rng);
        Linear {
            weight: Parameter::new("linear.weight", w),
            bias: Parameter::new("linear.bias", Tensor::zeros([out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight parameter (shape `(out, in)`).
    pub fn weight(&self) -> &Parameter {
        &self.weight
    }

    /// Mutable weight parameter, e.g. for installing fault masks.
    pub fn weight_mut(&mut self) -> &mut Parameter {
        &mut self.weight
    }
}

impl Layer for Linear {
    fn name(&self) -> String {
        format!("linear({}→{})", self.in_features, self.out_features)
    }

    fn forward_ws(&mut self, x: &Tensor, _mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let (n, c) = x.shape().as_matrix().map_err(|_| NnError::BadInput {
            layer: self.name(),
            reason: format!("expected rank-2 input, got {:?}", x.dims()),
        })?;
        if c != self.in_features {
            return Err(NnError::BadInput {
                layer: self.name(),
                reason: format!("expected {} input features, got {c}", self.in_features),
            });
        }
        if let Some(stale) = self.cached_input.take() {
            ws.give(stale);
        }
        // xtask:allow(hot-path-alloc): O(1) copy-on-write handle clone for the backward cache
        self.cached_input = Some(x.clone());
        let mut y = ws.take([n, self.out_features]);
        ops::matmul_nt_into(x, self.weight.value(), &mut y)?;
        ops::add_bias_rows_in_place(&mut y, self.bias.value())?;
        Ok(y)
    }

    fn backward_ws(&mut self, grad: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardState { layer: self.name() })?;
        let n = x.dims().first().copied().unwrap_or(0);
        // dW = gradᵀ · x   — (out, N)·(N, in) = (out, in)
        let mut dw = ws.take([self.out_features, self.in_features]);
        ops::matmul_tn_into(grad, x, &mut dw)?;
        self.weight.grad_mut().axpy(1.0, &dw)?;
        ws.give(dw);
        // db = column sums of grad
        let mut db = ws.take([self.out_features]);
        grad.sum_rows_into(&mut db)?;
        self.bias.grad_mut().axpy(1.0, &db)?;
        ws.give(db);
        // dx = grad · W   — (N, out)·(out, in) = (N, in)
        let mut gx = ws.take([n, self.in_features]);
        ops::matmul_into(grad, self.weight.value(), &mut gx)?;
        Ok(gx)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut l = Linear::with_init(3, 2, Init::Zeros, &mut rng());
        l.params_mut()[1].value_mut().fill(1.5);
        let y = l
            .forward(&Tensor::ones([4, 3]), Mode::Eval)
            .expect("valid input");
        assert_eq!(y.dims(), &[4, 2]);
        assert!(y.data().iter().all(|&v| v == 1.5));
    }

    #[test]
    fn forward_rejects_bad_shapes() {
        let mut l = Linear::new(3, 2, &mut rng());
        assert!(l.forward(&Tensor::ones([4, 5]), Mode::Eval).is_err());
        assert!(l.forward(&Tensor::ones([3]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_before_forward_is_error() {
        let mut l = Linear::new(3, 2, &mut rng());
        assert!(matches!(
            l.backward(&Tensor::ones([1, 2])),
            Err(NnError::MissingForwardState { .. })
        ));
    }

    #[test]
    fn gradcheck_input() {
        let mut l = Linear::new(5, 4, &mut rng());
        let x = Tensor::rand_uniform([3, 5], -1.0, 1.0, 11);
        gradcheck::check_input_grad(&mut l, &x, 1e-2);
    }

    #[test]
    fn gradcheck_weight_and_bias() {
        let mut l = Linear::new(5, 4, &mut rng());
        let x = Tensor::rand_uniform([3, 5], -1.0, 1.0, 12);
        gradcheck::check_param_grad(&mut l, &x, 0, 1e-2);
        gradcheck::check_param_grad(&mut l, &x, 1, 1e-2);
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut l = Linear::new(2, 2, &mut rng());
        let x = Tensor::ones([1, 2]);
        let _ = l.forward(&x, Mode::Train).expect("valid input");
        l.backward(&Tensor::ones([1, 2]))
            .expect("forward state present");
        let g1 = l.params()[0].grad().clone();
        let _ = l.forward(&x, Mode::Train).expect("valid input");
        l.backward(&Tensor::ones([1, 2]))
            .expect("forward state present");
        let g2 = l.params()[0].grad().clone();
        assert!(g2.approx_eq(&(&g1 * 2.0), 1e-6));
        l.zero_grad();
        assert_eq!(l.params()[0].grad().sum(), 0.0);
    }

    #[test]
    fn masked_weight_blocks_signal() {
        let mut l = Linear::with_init(2, 1, Init::Constant(1.0), &mut rng());
        l.weight_mut()
            .set_mask(Some(Tensor::from_vec(vec![0.0, 1.0], [1, 2]).expect("ok")))
            .expect("valid mask");
        let y = l
            .forward(
                &Tensor::from_vec(vec![10.0, 1.0], [1, 2]).expect("ok"),
                Mode::Eval,
            )
            .expect("valid input");
        // The first input (weight masked to 0) must not contribute.
        assert_eq!(y.data(), &[1.0]);
    }
}
