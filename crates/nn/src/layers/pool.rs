//! Pooling layers.

use crate::error::{NnError, Result};
use crate::layers::{Layer, Mode};
use crate::workspace::Workspace;
use reduce_tensor::{ops, Tensor};

/// Output dims for a square pooling window over an NCHW input, or a
/// deliberately bogus shape for non-rank-4 inputs so the `_into` kernel can
/// surface its own (correct) error.
fn pool_out_dims(x: &Tensor, window: usize, stride: usize) -> Result<Vec<usize>> {
    let d = x.dims();
    if d.len() != 4 {
        return Ok(vec![0, 0, 0, 0]);
    }
    // xtask:allow(index): rank-4 guaranteed by the early return above
    let g = ops::Conv2dGeometry::new(d[2], d[3], window, window, stride, 0)?;
    // xtask:allow(index): rank-4 guaranteed by the early return above
    Ok(vec![d[0], d[1], g.out_h, g.out_w])
}

/// 2-D max pooling over NCHW tensors (no padding).
#[derive(Debug)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    cached: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input dims)
}

impl MaxPool2d {
    /// Creates a max-pool layer with a square window.
    pub fn new(window: usize, stride: usize) -> Self {
        MaxPool2d {
            window,
            stride,
            cached: None,
        }
    }

    /// The pooling window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        format!(
            "max_pool2d({}x{}, s{})",
            self.window, self.window, self.stride
        )
    }

    fn forward_ws(&mut self, x: &Tensor, _mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        // Reuse the cached argmax / dims allocations across iterations.
        let (mut argmax, mut dims) = self.cached.take().unwrap_or_default();
        let mut out = ws.take(pool_out_dims(x, self.window, self.stride)?);
        ops::max_pool2d_into(x, self.window, self.stride, &mut out, &mut argmax)?;
        dims.clear();
        dims.extend_from_slice(x.dims());
        self.cached = Some((argmax, dims));
        Ok(out)
    }

    fn backward_ws(&mut self, grad: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let (argmax, dims) = self
            .cached
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardState { layer: self.name() })?;
        // xtask:allow(hot-path-alloc): clones a handful of usize shape entries, not a buffer
        let mut gx = ws.take(dims.clone());
        ops::max_pool2d_backward_into(grad, argmax, &mut gx)?;
        Ok(gx)
    }
}

/// 2-D average pooling over NCHW tensors (no padding).
#[derive(Debug)]
pub struct AvgPool2d {
    window: usize,
    stride: usize,
    cached_input_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with a square window.
    pub fn new(window: usize, stride: usize) -> Self {
        AvgPool2d {
            window,
            stride,
            cached_input_dims: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> String {
        format!(
            "avg_pool2d({}x{}, s{})",
            self.window, self.window, self.stride
        )
    }

    fn forward_ws(&mut self, x: &Tensor, _mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let mut y = ws.take(pool_out_dims(x, self.window, self.stride)?);
        ops::avg_pool2d_into(x, self.window, self.stride, &mut y)?;
        // xtask:allow(hot-path-alloc): empty Vec::new initialises the cache once; reused after
        let dims = self.cached_input_dims.get_or_insert_with(Vec::new);
        dims.clear();
        dims.extend_from_slice(x.dims());
        Ok(y)
    }

    fn backward_ws(&mut self, grad: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let dims = self
            .cached_input_dims
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardState { layer: self.name() })?;
        // xtask:allow(hot-path-alloc): clones a handful of usize shape entries, not a buffer
        let mut gx = ws.take(dims.clone());
        ops::avg_pool2d_backward_into(grad, self.window, self.stride, &mut gx)?;
        Ok(gx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_halves_spatial_dims() {
        let mut p = MaxPool2d::new(2, 2);
        let y = p
            .forward(&Tensor::zeros([1, 2, 8, 8]), Mode::Eval)
            .expect("valid input");
        assert_eq!(y.dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn max_pool_gradient_is_sparse() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::rand_uniform([1, 1, 4, 4], 0.0, 1.0, 3);
        let y = p.forward(&x, Mode::Train).expect("valid input");
        let gx = p
            .backward(&Tensor::ones(y.dims().to_vec()))
            .expect("forward state present");
        let nonzero = gx.data().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, 4); // one winner per window
    }

    #[test]
    fn avg_pool_mean_preserved() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::rand_uniform([1, 1, 4, 4], -1.0, 1.0, 4);
        let y = p.forward(&x, Mode::Eval).expect("valid input");
        assert!((y.mean() - x.mean()).abs() < 1e-5);
    }

    #[test]
    fn backward_before_forward_is_error() {
        assert!(MaxPool2d::new(2, 2)
            .backward(&Tensor::zeros([1, 1, 2, 2]))
            .is_err());
        assert!(AvgPool2d::new(2, 2)
            .backward(&Tensor::zeros([1, 1, 2, 2]))
            .is_err());
    }

    #[test]
    fn rejects_non_nchw() {
        assert!(MaxPool2d::new(2, 2)
            .forward(&Tensor::zeros([4, 4]), Mode::Eval)
            .is_err());
    }
}
