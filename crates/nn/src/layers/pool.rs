//! Pooling layers.

use crate::error::{NnError, Result};
use crate::layers::{Layer, Mode};
use reduce_tensor::{ops, Tensor};

/// 2-D max pooling over NCHW tensors (no padding).
#[derive(Debug)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    cached: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input dims)
}

impl MaxPool2d {
    /// Creates a max-pool layer with a square window.
    pub fn new(window: usize, stride: usize) -> Self {
        MaxPool2d {
            window,
            stride,
            cached: None,
        }
    }

    /// The pooling window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        format!(
            "max_pool2d({}x{}, s{})",
            self.window, self.window, self.stride
        )
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor> {
        let out = ops::max_pool2d(x, self.window, self.stride)?;
        self.cached = Some((out.argmax, x.dims().to_vec()));
        Ok(out.output)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        let (argmax, dims) = self
            .cached
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardState { layer: self.name() })?;
        Ok(ops::max_pool2d_backward(grad, argmax, dims)?)
    }
}

/// 2-D average pooling over NCHW tensors (no padding).
#[derive(Debug)]
pub struct AvgPool2d {
    window: usize,
    stride: usize,
    cached_input_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with a square window.
    pub fn new(window: usize, stride: usize) -> Self {
        AvgPool2d {
            window,
            stride,
            cached_input_dims: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> String {
        format!(
            "avg_pool2d({}x{}, s{})",
            self.window, self.window, self.stride
        )
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = ops::avg_pool2d(x, self.window, self.stride)?;
        self.cached_input_dims = Some(x.dims().to_vec());
        Ok(y)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_input_dims
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardState { layer: self.name() })?;
        Ok(ops::avg_pool2d_backward(
            grad,
            dims,
            self.window,
            self.stride,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_halves_spatial_dims() {
        let mut p = MaxPool2d::new(2, 2);
        let y = p
            .forward(&Tensor::zeros([1, 2, 8, 8]), Mode::Eval)
            .expect("valid input");
        assert_eq!(y.dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn max_pool_gradient_is_sparse() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::rand_uniform([1, 1, 4, 4], 0.0, 1.0, 3);
        let y = p.forward(&x, Mode::Train).expect("valid input");
        let gx = p
            .backward(&Tensor::ones(y.dims().to_vec()))
            .expect("forward state present");
        let nonzero = gx.data().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, 4); // one winner per window
    }

    #[test]
    fn avg_pool_mean_preserved() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::rand_uniform([1, 1, 4, 4], -1.0, 1.0, 4);
        let y = p.forward(&x, Mode::Eval).expect("valid input");
        assert!((y.mean() - x.mean()).abs() < 1e-5);
    }

    #[test]
    fn backward_before_forward_is_error() {
        assert!(MaxPool2d::new(2, 2)
            .backward(&Tensor::zeros([1, 1, 2, 2]))
            .is_err());
        assert!(AvgPool2d::new(2, 2)
            .backward(&Tensor::zeros([1, 1, 2, 2]))
            .is_err());
    }

    #[test]
    fn rejects_non_nchw() {
        assert!(MaxPool2d::new(2, 2)
            .forward(&Tensor::zeros([4, 4]), Mode::Eval)
            .is_err());
    }
}
