//! Flatten layer: NCHW → (N, C·H·W).

use crate::error::{NnError, Result};
use crate::layers::{Layer, Mode};
use crate::workspace::Workspace;
use reduce_tensor::Tensor;

/// Flattens all non-batch dimensions: `(N, d1, d2, …)` → `(N, d1·d2·…)`.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten {
            cached_input_dims: None,
        }
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        "flatten".to_string()
    }

    fn forward_ws(&mut self, x: &Tensor, _mode: Mode, _ws: &mut Workspace) -> Result<Tensor> {
        let d = x.dims();
        if d.is_empty() {
            return Err(NnError::BadInput {
                layer: self.name(),
                reason: "cannot flatten a scalar".to_string(),
            });
        }
        let n = d[0];
        let rest: usize = d[1..].iter().product();
        // Reuse the cached dims vector across iterations.
        // xtask:allow(hot-path-alloc): empty Vec::new initialises the cache once; reused after
        let dims = self.cached_input_dims.get_or_insert_with(Vec::new);
        dims.clear();
        dims.extend_from_slice(d);
        // Reshape is an O(1) storage-sharing view; nothing to pool.
        Ok(x.reshape([n, rest])?)
    }

    fn backward_ws(&mut self, grad: &Tensor, _ws: &mut Workspace) -> Result<Tensor> {
        let dims = self
            .cached_input_dims
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardState { layer: self.name() })?;
        // xtask:allow(hot-path-alloc): clones a handful of usize shape entries, not a buffer
        Ok(grad.reshape(dims.clone())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_restore() {
        let mut f = Flatten::new();
        let x = Tensor::rand_uniform([2, 3, 4, 5], -1.0, 1.0, 1);
        let y = f.forward(&x, Mode::Eval).expect("rank > 0");
        assert_eq!(y.dims(), &[2, 60]);
        let gx = f.backward(&y).expect("forward state present");
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(gx.data(), x.data());
    }

    #[test]
    fn rank1_flattens_to_column() {
        let mut f = Flatten::new();
        let y = f
            .forward(&Tensor::zeros([5]), Mode::Eval)
            .expect("rank > 0");
        assert_eq!(y.dims(), &[5, 1]);
    }

    #[test]
    fn scalar_is_rejected() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::scalar(1.0), Mode::Eval).is_err());
    }

    #[test]
    fn backward_before_forward_is_error() {
        assert!(Flatten::new().backward(&Tensor::zeros([2, 2])).is_err());
    }
}
