//! Layer normalisation.

use crate::error::{NnError, Result};
use crate::layers::{Layer, Mode};
use crate::param::Parameter;
use crate::workspace::Workspace;
use reduce_tensor::Tensor;

/// Layer normalisation over all non-batch dimensions.
///
/// Each sample is normalised by its own mean/variance, so — unlike batch
/// norm — there are **no running statistics to go stale when fault masks
/// change the weight distribution**, which makes this the normalisation of
/// choice for fault-aware retraining experiments (see the BN-recalibration
/// ablation).
///
/// The learnable scale/shift have one coefficient per normalised feature.
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Parameter,
    beta: Parameter,
    features: usize,
    eps: f32,
    /// Cached (normalised activations, per-sample inv_std) from forward.
    cached: Option<(Tensor, Vec<f32>)>,
    /// Reusable backward scratch: gamma snapshot and per-sample dy·γ row.
    scratch_gd: Vec<f32>,
    scratch_dyg: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer-norm over `features` trailing elements per sample.
    pub fn new(features: usize) -> Self {
        LayerNorm {
            gamma: Parameter::new("layer_norm.gamma", Tensor::ones([features])),
            beta: Parameter::new("layer_norm.beta", Tensor::zeros([features])),
            features,
            eps: 1e-5,
            cached: None,
            scratch_gd: Vec::new(),
            scratch_dyg: Vec::new(),
        }
    }

    /// The normalised feature count.
    pub fn features(&self) -> usize {
        self.features
    }

    fn check(&self, x: &Tensor) -> Result<usize> {
        let d = x.dims();
        if d.is_empty() {
            return Err(NnError::BadInput {
                layer: self.name(),
                reason: "scalar input".to_string(),
            });
        }
        let per_sample: usize = d[1..].iter().product();
        if per_sample != self.features {
            return Err(NnError::BadInput {
                layer: self.name(),
                reason: format!(
                    "expected {} features per sample, got {per_sample}",
                    self.features
                ),
            });
        }
        Ok(d[0])
    }
}

impl Layer for LayerNorm {
    fn name(&self) -> String {
        format!("layer_norm({})", self.features)
    }

    fn forward_ws(&mut self, x: &Tensor, _mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let n = self.check(x)?;
        let f = self.features;
        // Recycle last iteration's cached xhat tensor and inv_std allocation.
        let mut inv_stds = match self.cached.take() {
            Some((stale, v)) => {
                ws.give(stale);
                v
            }
            // xtask:allow(hot-path-alloc): empty Vec::new is allocation-free; filled once at warm-up
            None => Vec::new(),
        };
        inv_stds.clear();
        let mut y = ws.take(x.dims().to_vec());
        let mut xhat = ws.take(x.dims().to_vec());
        let (gd, bd) = (self.gamma.value().data(), self.beta.value().data());
        let eps = self.eps;
        for s in 0..n {
            let row = &x.data()[s * f..(s + 1) * f];
            let mean: f32 = row.iter().sum::<f32>() / f as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / f as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            inv_stds.push(inv_std);
            for j in 0..f {
                let h = (row[j] - mean) * inv_std;
                xhat.data_mut()[s * f + j] = h;
                y.data_mut()[s * f + j] = gd[j] * h + bd[j];
            }
        }
        self.cached = Some((xhat, inv_stds));
        Ok(y)
    }

    fn backward_ws(&mut self, grad: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let (xhat, inv_stds) = self
            .cached
            .as_ref()
            .ok_or_else(|| NnError::MissingForwardState { layer: self.name() })?;
        let f = self.features;
        let n = grad.len() / f.max(1);
        if grad.dims() != xhat.dims() {
            return Err(NnError::BadInput {
                layer: self.name(),
                reason: format!("gradient shape {:?} != forward shape", grad.dims()),
            });
        }
        let mut gd = std::mem::take(&mut self.scratch_gd);
        gd.clear();
        gd.extend_from_slice(self.gamma.value().data());
        let mut dyg = std::mem::take(&mut self.scratch_dyg);
        let mut gx = ws.take(grad.dims().to_vec());
        for (s, &inv_std) in inv_stds.iter().enumerate().take(n) {
            let g = &grad.data()[s * f..(s + 1) * f];
            let h = &xhat.data()[s * f..(s + 1) * f];
            // Parameter grads.
            for j in 0..f {
                self.gamma.grad_mut().data_mut()[j] += g[j] * h[j];
                self.beta.grad_mut().data_mut()[j] += g[j];
            }
            // Input grad: dx = inv_std/F * (F·dy·γ − Σ(dy·γ) − h·Σ(dy·γ·h)).
            dyg.clear();
            dyg.extend((0..f).map(|j| g[j] * gd[j]));
            let sum_dyg: f32 = dyg.iter().sum();
            let sum_dyg_h: f32 = dyg.iter().zip(h).map(|(a, b)| a * b).sum();
            let inv = inv_std / f as f32;
            for j in 0..f {
                gx.data_mut()[s * f + j] = inv * (f as f32 * dyg[j] - sum_dyg - h[j] * sum_dyg_h);
            }
        }
        self.scratch_gd = gd;
        self.scratch_dyg = dyg;
        Ok(gx)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn normalises_each_sample() {
        let mut ln = LayerNorm::new(8);
        let x = Tensor::rand_uniform([4, 8], 3.0, 9.0, 1);
        let y = ln.forward(&x, Mode::Eval).expect("valid input");
        for s in 0..4 {
            let row = &y.data()[s * 8..(s + 1) * 8];
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "sample {s} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "sample {s} var {var}");
        }
    }

    #[test]
    fn train_and_eval_agree() {
        // No batch statistics: modes are identical by construction.
        let mut ln = LayerNorm::new(6);
        let x = Tensor::rand_uniform([3, 6], -2.0, 2.0, 2);
        let a = ln.forward(&x, Mode::Train).expect("valid input");
        let b = ln.forward(&x, Mode::Eval).expect("valid input");
        assert_eq!(a, b);
    }

    #[test]
    fn works_on_nchw() {
        let mut ln = LayerNorm::new(2 * 3 * 3);
        let y = ln
            .forward(
                &Tensor::rand_uniform([2, 2, 3, 3], -1.0, 1.0, 3),
                Mode::Eval,
            )
            .expect("valid input");
        assert_eq!(y.dims(), &[2, 2, 3, 3]);
    }

    #[test]
    fn gradcheck_input_and_params() {
        let mut ln = LayerNorm::new(5);
        let x = Tensor::rand_uniform([3, 5], -1.0, 1.0, 4);
        gradcheck::check_input_grad(&mut ln, &x, 5e-2);
        gradcheck::check_param_grad(&mut ln, &x, 0, 5e-2);
        gradcheck::check_param_grad(&mut ln, &x, 1, 5e-2);
    }

    #[test]
    fn validation() {
        let mut ln = LayerNorm::new(4);
        assert!(ln.forward(&Tensor::zeros([2, 5]), Mode::Eval).is_err());
        assert!(ln.forward(&Tensor::scalar(1.0), Mode::Eval).is_err());
        assert!(LayerNorm::new(4).backward(&Tensor::zeros([2, 4])).is_err());
    }
}
