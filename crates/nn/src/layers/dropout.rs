//! Inverted dropout.

use crate::error::{NnError, Result};
use crate::layers::{Layer, Mode};
use crate::workspace::Workspace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use reduce_tensor::{Tensor, TensorError};

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)` so the expected
/// activation is unchanged; evaluation is the identity.
///
/// The layer owns a seeded RNG so a fixed-seed training run is
/// reproducible.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: SmallRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and an RNG seed.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidConfig {
                what: format!("dropout probability {p} not in [0, 1)"),
            });
        }
        Ok(Dropout {
            p,
            rng: SmallRng::seed_from_u64(seed),
            cached_mask: None,
        })
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> String {
        format!("dropout({})", self.p)
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        if let Some(stale) = self.cached_mask.take() {
            ws.give(stale);
        }
        match mode {
            // Identity passes share storage with the input (O(1) clone).
            // xtask:allow(hot-path-alloc): O(1) copy-on-write handle clone (identity pass)
            Mode::Eval => Ok(x.clone()),
            Mode::Train => {
                // xtask:allow(float-eq): p == 0.0 is the exact "dropout disabled" sentinel
                if self.p == 0.0 {
                    // xtask:allow(hot-path-alloc): O(1) copy-on-write handle clone (identity pass)
                    return Ok(x.clone());
                }
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mut mask = ws.take(x.dims().to_vec());
                // Same elementwise draw order as Tensor::from_fn.
                for m in mask.data_mut() {
                    *m = if self.rng.gen::<f32>() < keep {
                        scale
                    } else {
                        0.0
                    };
                }
                let mut y = ws.take(x.dims().to_vec());
                for ((o, &xv), &mv) in y.data_mut().iter_mut().zip(x.data()).zip(mask.data()) {
                    *o = xv * mv;
                }
                self.cached_mask = Some(mask);
                Ok(y)
            }
        }
    }

    fn backward_ws(&mut self, grad: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        match &self.cached_mask {
            Some(mask) => {
                if grad.dims() != mask.dims() {
                    return Err(TensorError::ShapeMismatch {
                        op: "mul",
                        lhs: grad.dims().to_vec(),
                        rhs: mask.dims().to_vec(),
                    }
                    .into());
                }
                let mut gx = ws.take(grad.dims().to_vec());
                for ((o, &g), &mv) in gx.data_mut().iter_mut().zip(grad.data()).zip(mask.data()) {
                    *o = g * mv;
                }
                Ok(gx)
            }
            // Eval-mode or p=0 forward: identity (O(1) clone).
            // xtask:allow(hot-path-alloc): O(1) copy-on-write handle clone (identity pass)
            None => Ok(grad.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_probability() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
        assert!(Dropout::new(0.0, 0).is_ok());
    }

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1).expect("valid p");
        let x = Tensor::rand_uniform([64], -1.0, 1.0, 2);
        let y = d.forward(&x, Mode::Eval).expect("any input ok");
        assert_eq!(y, x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 3).expect("valid p");
        let x = Tensor::ones([20_000]);
        let y = d.forward(&x, Mode::Train).expect("any input ok");
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Roughly p of the entries are dropped.
        assert!((y.sparsity() - 0.3).abs() < 0.05);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 4).expect("valid p");
        let x = Tensor::ones([256]);
        let y = d.forward(&x, Mode::Train).expect("any input ok");
        let gx = d.backward(&Tensor::ones([256])).expect("mask cached");
        // Gradient flows exactly where activations survived.
        for (a, b) in y.data().iter().zip(gx.data()) {
            assert_eq!(a == &0.0, b == &0.0);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut d = Dropout::new(0.5, seed).expect("valid p");
            d.forward(&Tensor::ones([64]), Mode::Train)
                .expect("any input ok")
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
