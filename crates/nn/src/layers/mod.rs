//! Neural-network layers with manual forward/backward passes.

mod activations;
mod batchnorm;
mod conv2d;
mod dropout;
mod flatten;
mod layernorm;
mod linear;
mod pool;

pub use activations::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use batchnorm::{BatchNorm1d, BatchNorm2d};
pub use conv2d::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use pool::{AvgPool2d, MaxPool2d};

use crate::error::Result;
use crate::param::Parameter;
use crate::workspace::Workspace;
use reduce_tensor::Tensor;
use std::fmt;

/// Whether a forward pass is part of training or evaluation.
///
/// Train mode enables dropout and batch statistics; eval mode uses running
/// statistics and disables stochastic regularisers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training: stochastic regularisers active, batch statistics used and
    /// accumulated.
    Train,
    /// Inference: deterministic, running statistics used.
    #[default]
    Eval,
}

/// A differentiable layer.
///
/// Layers cache whatever forward state their backward pass needs; calling
/// [`Layer::backward`] before [`Layer::forward`] is an error, not a panic.
/// The trait is object-safe — models store `Box<dyn Layer>`.
///
/// The workspace-threaded entry points [`Layer::forward_ws`] and
/// [`Layer::backward_ws`] are the required implementations: layers draw
/// every intermediate tensor from the caller's [`Workspace`] and return
/// stale cached state to it, so a training loop that reuses one workspace
/// (as [`crate::Sequential`] does) runs allocation-free once warm. The
/// plain [`Layer::forward`]/[`Layer::backward`] conveniences run the same
/// code against an ephemeral workspace and produce bit-identical results —
/// [`Workspace::take`] always hands out zeroed buffers, so recycling never
/// changes numerics.
pub trait Layer: fmt::Debug + Send {
    /// Diagnostic name, e.g. `"conv2d(16→32, 3x3)"`.
    fn name(&self) -> String;

    /// Computes the layer output for `x`, caching state for backward.
    /// Intermediates are drawn from `ws`; stale caches are returned to it.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BadInput`] if `x` has the wrong shape.
    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor>;

    /// Propagates the output gradient back to the input, accumulating
    /// parameter gradients along the way. Intermediates are drawn from
    /// `ws`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingForwardState`] if no forward pass
    /// preceded this call.
    fn backward_ws(&mut self, grad: &Tensor, ws: &mut Workspace) -> Result<Tensor>;

    /// Convenience forward pass using an ephemeral workspace. Bit-identical
    /// to [`Layer::forward_ws`]; allocates per call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Layer::forward_ws`].
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.forward_ws(x, mode, &mut ws)
    }

    /// Convenience backward pass using an ephemeral workspace. Bit-identical
    /// to [`Layer::backward_ws`]; allocates per call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Layer::backward_ws`].
    fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.backward_ws(grad, &mut ws)
    }

    /// Immutable views of the layer's trainable parameters.
    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    /// Mutable views of the layer's trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use super::*;

    /// Checks `layer`'s input gradient against central finite differences on
    /// the scalar loss `L = sum(forward(x))`.
    pub fn check_input_grad<L: Layer>(layer: &mut L, x: &Tensor, tol: f32) {
        let y = layer.forward(x, Mode::Train).expect("forward succeeds");
        let gy = Tensor::ones(y.dims().to_vec());
        let gx = layer.backward(&gy).expect("backward succeeds");
        assert_eq!(gx.dims(), x.dims(), "input gradient shape");
        let eps = 1e-2;
        let probes: Vec<usize> = (0..x.len()).step_by((x.len() / 7).max(1)).take(8).collect();
        for &i in &probes {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let lp = layer
                .forward(&xp, Mode::Train)
                .expect("forward succeeds")
                .sum();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lm = layer
                .forward(&xm, Mode::Train)
                .expect("forward succeeds")
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = gx.data()[i];
            assert!(
                (fd - an).abs() <= tol * (1.0 + fd.abs().max(an.abs())),
                "input grad mismatch at {i}: finite-diff {fd} vs analytic {an}"
            );
        }
    }

    /// Checks the gradient of parameter `pidx` against finite differences.
    pub fn check_param_grad<L: Layer>(layer: &mut L, x: &Tensor, pidx: usize, tol: f32) {
        let y = layer.forward(x, Mode::Train).expect("forward succeeds");
        let gy = Tensor::ones(y.dims().to_vec());
        layer.zero_grad();
        layer.backward(&gy).expect("backward succeeds");
        let analytic = layer.params()[pidx].grad().clone();
        let eps = 1e-2;
        let n = analytic.len();
        let probes: Vec<usize> = (0..n).step_by((n / 7).max(1)).take(8).collect();
        for &i in &probes {
            let orig = layer.params()[pidx].value().data()[i];
            layer.params_mut()[pidx].value_mut().data_mut()[i] = orig + eps;
            let lp = layer
                .forward(x, Mode::Train)
                .expect("forward succeeds")
                .sum();
            layer.params_mut()[pidx].value_mut().data_mut()[i] = orig - eps;
            let lm = layer
                .forward(x, Mode::Train)
                .expect("forward succeeds")
                .sum();
            layer.params_mut()[pidx].value_mut().data_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = analytic.data()[i];
            assert!(
                (fd - an).abs() <= tol * (1.0 + fd.abs().max(an.abs())),
                "param {pidx} grad mismatch at {i}: finite-diff {fd} vs analytic {an}"
            );
        }
    }
}
