//! Trainable parameters with gradient storage and fault masks.

use crate::error::{NnError, Result};
use reduce_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter: value, gradient accumulator and an optional
/// **fault mask**.
///
/// The mask is the hook fault-aware training (FAT) plugs into: a mask is a
/// 0/1 tensor of the parameter's shape where 0 marks weights that are mapped
/// onto faulty (bypassed) processing elements. While a mask is installed the
/// parameter is *projected* onto the masked subspace — masked entries are
/// forced to zero in the value immediately, and the optimizer re-applies the
/// projection after every update so they can never drift away from zero.
///
/// Values are copy-on-write tensors: cloning one (a model snapshot, a
/// checkpoint entry) shares storage until the first write. [`Parameter::project`]
/// writes through `data_mut` and is therefore the copy-on-write trigger —
/// masking a parameter un-shares it from any snapshot it was restored from,
/// so per-chip models masked on different fault maps never alias.
///
/// # Examples
///
/// ```
/// use reduce_nn::Parameter;
/// use reduce_tensor::Tensor;
///
/// # fn main() -> Result<(), reduce_nn::NnError> {
/// let mut p = Parameter::new("w", Tensor::ones([2, 2]));
/// let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0, 1.0], [2, 2])?;
/// p.set_mask(Some(mask))?;
/// assert_eq!(p.value().data(), &[1.0, 0.0, 1.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Parameter {
    name: String,
    value: Tensor,
    grad: Tensor,
    mask: Option<Tensor>,
}

impl Parameter {
    /// Creates a parameter with a zeroed gradient and no mask.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims().to_vec());
        Parameter {
            name: name.into(),
            value,
            grad,
            mask: None,
        }
    }

    /// The parameter's diagnostic name (e.g. `"conv1.weight"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the parameter (used when layers are registered in a model).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable value. Callers that write through this must re-apply the mask
    /// with [`Parameter::project`] if one is installed; the optimizers in
    /// this crate do so automatically.
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// Replaces the value wholesale (checkpoint loading), re-projecting onto
    /// the mask if one is installed.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CheckpointMismatch`] if the new value's shape
    /// differs from the current one.
    pub fn load_value(&mut self, value: Tensor) -> Result<()> {
        if value.dims() != self.value.dims() {
            return Err(NnError::CheckpointMismatch {
                reason: format!(
                    "parameter {}: shape {:?} loaded into {:?}",
                    self.name,
                    value.dims(),
                    self.value.dims()
                ),
            });
        }
        self.value = value;
        self.project();
        Ok(())
    }

    /// Accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable gradient (layers accumulate into this during backward).
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Simultaneous mutable-value / shared-gradient access (split borrow).
    ///
    /// Lets an optimizer read the accumulated gradient while updating the
    /// value in place, without copying the gradient to satisfy the borrow
    /// checker. Callers must re-apply the mask with [`Parameter::project`]
    /// afterwards, exactly as with [`Parameter::value_mut`].
    pub fn value_and_grad_mut(&mut self) -> (&mut Tensor, &Tensor) {
        (&mut self.value, &self.grad)
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// The installed fault mask, if any.
    pub fn mask(&self) -> Option<&Tensor> {
        self.mask.as_ref()
    }

    /// Installs (or clears, with `None`) a fault mask and immediately
    /// projects the value onto it.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the mask shape differs from the
    /// parameter shape or contains values other than 0 and 1.
    pub fn set_mask(&mut self, mask: Option<Tensor>) -> Result<()> {
        if let Some(m) = &mask {
            if m.dims() != self.value.dims() {
                return Err(NnError::BadInput {
                    layer: self.name.clone(),
                    reason: format!(
                        "mask shape {:?} does not match parameter shape {:?}",
                        m.dims(),
                        self.value.dims()
                    ),
                });
            }
            // xtask:allow(float-eq): validates masks hold exact 0.0/1.0 sentinels
            if m.data().iter().any(|&v| v != 0.0 && v != 1.0) {
                return Err(NnError::BadInput {
                    layer: self.name.clone(),
                    reason: "mask entries must be 0 or 1".to_string(),
                });
            }
        }
        self.mask = mask;
        self.project();
        Ok(())
    }

    /// Re-applies the mask projection to the value (no-op without a mask).
    pub fn project(&mut self) {
        if let Some(m) = &self.mask {
            for (v, &mv) in self.value.data_mut().iter_mut().zip(m.data()) {
                *v *= mv;
            }
        }
    }

    /// Applies the mask to the gradient so masked weights receive no update
    /// (no-op without a mask).
    pub fn project_grad(&mut self) {
        if let Some(m) = &self.mask {
            for (g, &mv) in self.grad.data_mut().iter_mut().zip(m.data()) {
                *g *= mv;
            }
        }
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Fraction of weights zeroed by the mask (0 without a mask).
    pub fn masked_fraction(&self) -> f32 {
        match &self.mask {
            Some(m) => {
                if m.is_empty() {
                    0.0
                } else {
                    // xtask:allow(float-eq): masks hold exact 0.0/1.0 sentinels
                    m.data().iter().filter(|&&v| v == 0.0).count() as f32 / m.len() as f32
                }
            }
            None => 0.0,
        }
    }

    /// Checks the mask invariant: every masked entry of the value is zero.
    pub fn mask_invariant_holds(&self) -> bool {
        match &self.mask {
            Some(m) => {
                self.value
                    .data()
                    .iter()
                    .zip(m.data())
                    // xtask:allow(float-eq): masks hold exact 0.0/1.0 sentinels
                    .all(|(&v, &mv)| mv != 0.0 || v == 0.0)
            }
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_parameter_has_zero_grad() {
        let p = Parameter::new("w", Tensor::ones([3]));
        assert_eq!(p.grad().data(), &[0.0, 0.0, 0.0]);
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn set_mask_projects_value() {
        let mut p = Parameter::new("w", Tensor::ones([4]));
        p.set_mask(Some(
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [4]).expect("ok"),
        ))
        .expect("valid mask");
        assert_eq!(p.value().data(), &[1.0, 0.0, 0.0, 1.0]);
        assert!((p.masked_fraction() - 0.5).abs() < 1e-6);
        assert!(p.mask_invariant_holds());
    }

    #[test]
    fn set_mask_rejects_wrong_shape_and_values() {
        let mut p = Parameter::new("w", Tensor::ones([4]));
        assert!(p.set_mask(Some(Tensor::ones([3]))).is_err());
        assert!(p
            .set_mask(Some(Tensor::from_vec(vec![0.5; 4], [4]).expect("ok")))
            .is_err());
    }

    #[test]
    fn clear_mask_allows_drift() {
        let mut p = Parameter::new("w", Tensor::ones([2]));
        p.set_mask(Some(Tensor::from_vec(vec![0.0, 1.0], [2]).expect("ok")))
            .expect("valid");
        p.set_mask(None).expect("clearing is always valid");
        assert!(p.mask().is_none());
        p.value_mut().data_mut()[0] = 5.0;
        assert!(p.mask_invariant_holds());
    }

    #[test]
    fn project_grad_zeroes_masked_entries() {
        let mut p = Parameter::new("w", Tensor::ones([2]));
        p.set_mask(Some(Tensor::from_vec(vec![0.0, 1.0], [2]).expect("ok")))
            .expect("valid");
        p.grad_mut().fill(3.0);
        p.project_grad();
        assert_eq!(p.grad().data(), &[0.0, 3.0]);
    }

    #[test]
    fn load_value_reapplies_mask() {
        let mut p = Parameter::new("w", Tensor::ones([2]));
        p.set_mask(Some(Tensor::from_vec(vec![0.0, 1.0], [2]).expect("ok")))
            .expect("valid");
        p.load_value(Tensor::full([2], 7.0)).expect("same shape");
        assert_eq!(p.value().data(), &[0.0, 7.0]);
        assert!(p.load_value(Tensor::ones([3])).is_err());
    }

    #[test]
    fn masked_fraction_without_mask_is_zero() {
        let p = Parameter::new("w", Tensor::ones([2]));
        assert_eq!(p.masked_fraction(), 0.0);
    }
}
