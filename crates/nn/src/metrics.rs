//! Classification metrics.

use crate::error::{NnError, Result};
use reduce_tensor::Tensor;

/// Top-1 accuracy of logits against labels, in `[0, 1]`.
///
/// # Errors
///
/// Returns an error if `logits` is not a matrix or row count differs from
/// the label count.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = logits.argmax_rows()?;
    if preds.len() != labels.len() {
        return Err(NnError::InvalidConfig {
            what: format!("{} predictions for {} labels", preds.len(), labels.len()),
        });
    }
    if labels.is_empty() {
        return Err(NnError::InvalidConfig {
            what: "empty batch".to_string(),
        });
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f32 / labels.len() as f32)
}

/// A confusion matrix for a `classes`-way classifier.
///
/// Rows are true classes, columns predicted classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Errors
    ///
    /// Returns an error if either class index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) -> Result<()> {
        if truth >= self.classes || predicted >= self.classes {
            return Err(NnError::InvalidConfig {
                what: format!(
                    "class index out of range: ({truth}, {predicted}) for {} classes",
                    self.classes
                ),
            });
        }
        self.counts[truth * self.classes + predicted] += 1;
        Ok(())
    }

    /// Records a whole batch of logits against labels.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors.
    pub fn record_batch(&mut self, logits: &Tensor, labels: &[usize]) -> Result<()> {
        let preds = logits.argmax_rows()?;
        if preds.len() != labels.len() {
            return Err(NnError::InvalidConfig {
                what: format!("{} predictions for {} labels", preds.len(), labels.len()),
            });
        }
        for (&l, &p) in labels.iter().zip(&preds) {
            self.record(l, p)?;
        }
        Ok(())
    }

    /// Count at `(truth, predicted)`.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.classes + predicted]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 if nothing recorded).
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f32 / total as f32
    }

    /// Per-class recall (`None` for classes never seen).
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: u64 = (0..self.classes).map(|j| self.count(class, j)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / row as f32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], [3, 2]).expect("ok");
        let acc = accuracy(&logits, &[0, 1, 1]).expect("consistent");
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_validation() {
        let logits = Tensor::zeros([2, 2]);
        assert!(accuracy(&logits, &[0]).is_err());
        assert!(accuracy(&Tensor::zeros([0, 2]), &[]).is_err());
    }

    #[test]
    fn confusion_matrix_counts() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0).expect("in range");
        cm.record(0, 1).expect("in range");
        cm.record(1, 1).expect("in range");
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.total(), 3);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(2), None);
        assert!(cm.record(3, 0).is_err());
    }

    #[test]
    fn record_batch_matches_accuracy() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]).expect("ok");
        let mut cm = ConfusionMatrix::new(2);
        cm.record_batch(&logits, &[0, 0]).expect("consistent");
        assert!((cm.accuracy() - 0.5).abs() < 1e-6);
    }
}
