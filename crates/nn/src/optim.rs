//! First-order optimizers.
//!
//! Optimizers operate on a flat list of [`Parameter`]s (as produced by
//! [`crate::Sequential::params_mut`]) and keep their per-parameter state
//! (momentum buffers, Adam moments) indexed by position, so the same
//! optimizer instance must always be fed the same parameter list — which
//! the [`crate::Trainer`] guarantees.
//!
//! Every optimizer re-applies the fault-mask projection after its update,
//! so fault-aware training can never resurrect a pruned weight.

use crate::error::{NnError, Result};
use crate::param::Parameter;
use reduce_tensor::Tensor;

/// A gradient-based parameter updater.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Applies one update step to `params` using their accumulated
    /// gradients, then re-applies each parameter's mask projection.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameter list changes shape between calls.
    fn step(&mut self, params: &mut [&mut Parameter]) -> Result<()>;

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedulers).
    fn set_learning_rate(&mut self, lr: f32);
}

fn check_state_len(what: &'static str, state: &[Tensor], params: &[&mut Parameter]) -> Result<()> {
    if state.len() != params.len() {
        return Err(NnError::InvalidConfig {
            what: format!(
                "{what}: optimizer state tracks {} parameters but was given {}",
                state.len(),
                params.len()
            ),
        });
    }
    Ok(())
}

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// # Examples
///
/// ```
/// use reduce_nn::{Optimizer, Parameter, Sgd};
/// use reduce_tensor::Tensor;
///
/// # fn main() -> Result<(), reduce_nn::NnError> {
/// let mut p = Parameter::new("w", Tensor::ones([2]));
/// p.grad_mut().fill(1.0);
/// let mut opt = Sgd::new(0.5);
/// opt.step(&mut [&mut p])?;
/// assert_eq!(p.value().data(), &[0.5, 0.5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds L2 weight decay (applied as a gradient term).
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// The momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Parameter]) -> Result<()> {
        // xtask:allow(float-eq): momentum == 0.0 is the exact "plain SGD" sentinel
        if self.velocity.is_empty() && self.momentum != 0.0 {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value().dims().to_vec()))
                .collect();
        }
        // xtask:allow(float-eq): momentum == 0.0 is the exact "plain SGD" sentinel
        if self.momentum != 0.0 {
            check_state_len("sgd", &self.velocity, params)?;
        }
        for (i, p) in params.iter_mut().enumerate() {
            p.project_grad();
            // xtask:allow(float-eq): momentum == 0.0 is the exact "plain SGD" sentinel
            if self.momentum == 0.0 {
                let (wd, lr) = (self.weight_decay, self.lr);
                let (value, grad) = p.value_and_grad_mut();
                for (v, &g) in value.data_mut().iter_mut().zip(grad.data()) {
                    let g = g + wd * *v;
                    *v -= lr * g;
                }
            } else {
                let v = &mut self.velocity[i];
                if v.dims() != p.value().dims() {
                    return Err(NnError::InvalidConfig {
                        what: format!(
                            "sgd: parameter {} changed shape {:?} -> {:?}",
                            p.name(),
                            v.dims(),
                            p.value().dims()
                        ),
                    });
                }
                let (wd, lr, mom) = (self.weight_decay, self.lr, self.momentum);
                let (value, grad) = p.value_and_grad_mut();
                for ((vel, &g), w) in v
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data())
                    .zip(value.data_mut().iter_mut())
                {
                    let g = g + wd * *w;
                    *vel = mom * *vel + g;
                    *w -= lr * *vel;
                }
            }
            p.project();
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    decoupled: bool,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with default betas `(0.9, 0.999)`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            decoupled: false,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// AdamW: decoupled weight decay.
    pub fn adamw(lr: f32, weight_decay: f32) -> Self {
        let mut a = Adam::new(lr);
        a.weight_decay = weight_decay;
        a.decoupled = true;
        a
    }

    /// Overrides the beta coefficients.
    pub fn betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Parameter]) -> Result<()> {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value().dims().to_vec()))
                .collect();
            self.v = self.m.clone();
        }
        check_state_len("adam", &self.m, params)?;
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (i, p) in params.iter_mut().enumerate() {
            p.project_grad();
            if self.m[i].dims() != p.value().dims() {
                return Err(NnError::InvalidConfig {
                    what: format!("adam: parameter {} changed shape", p.name()),
                });
            }
            let (b1, b2, eps, lr, wd, decoupled) = (
                self.beta1,
                self.beta2,
                self.eps,
                self.lr,
                self.weight_decay,
                self.decoupled,
            );
            let (value, grad) = p.value_and_grad_mut();
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            let w = value.data_mut();
            let grad = grad.data();
            for j in 0..w.len() {
                let mut g = grad[j];
                // xtask:allow(float-eq): wd == 0.0 is the exact "decay disabled" sentinel
                if wd != 0.0 && !decoupled {
                    g += wd * w[j];
                }
                m[j] = b1 * m[j] + (1.0 - b1) * g;
                v[j] = b2 * v[j] + (1.0 - b2) * g * g;
                let mhat = m[j] / bc1;
                let vhat = v[j] / bc2;
                w[j] -= lr * mhat / (vhat.sqrt() + eps);
                // xtask:allow(float-eq): wd == 0.0 is the exact "decay disabled" sentinel
                if wd != 0.0 && decoupled {
                    w[j] -= lr * wd * w[j];
                }
            }
            p.project();
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param(values: &[f32]) -> Parameter {
        Parameter::new(
            "w",
            Tensor::from_vec(values.to_vec(), [values.len()]).expect("ok"),
        )
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = param(&[1.0, -1.0]);
        p.grad_mut().data_mut().copy_from_slice(&[2.0, -2.0]);
        Sgd::new(0.1).step(&mut [&mut p]).expect("stable params");
        assert!(p
            .value()
            .approx_eq(&Tensor::from_vec(vec![0.8, -0.8], [2]).expect("ok"), 1e-6));
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = param(&[0.0]);
        let mut mom = param(&[0.0]);
        let mut o1 = Sgd::new(0.1);
        let mut o2 = Sgd::with_momentum(0.1, 0.9);
        for _ in 0..5 {
            plain.grad_mut().fill(1.0);
            mom.grad_mut().fill(1.0);
            o1.step(&mut [&mut plain]).expect("stable params");
            o2.step(&mut [&mut mom]).expect("stable params");
            plain.zero_grad();
            mom.zero_grad();
        }
        assert!(mom.value().data()[0] < plain.value().data()[0]);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = param(&[1.0]);
        // No gradient signal, only decay.
        Sgd::new(0.1)
            .weight_decay(0.5)
            .step(&mut [&mut p])
            .expect("stable params");
        assert!(p.value().data()[0] < 1.0);
    }

    #[test]
    fn sgd_respects_mask() {
        let mut p = param(&[1.0, 1.0]);
        p.set_mask(Some(Tensor::from_vec(vec![0.0, 1.0], [2]).expect("ok")))
            .expect("valid");
        p.grad_mut().fill(1.0);
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        for _ in 0..3 {
            opt.step(&mut [&mut p]).expect("stable params");
        }
        assert_eq!(p.value().data()[0], 0.0, "masked weight must stay zero");
        assert!(p.value().data()[1] < 1.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise f(w) = (w - 3)^2 with gradient 2(w-3).
        let mut p = param(&[0.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            let w = p.value().data()[0];
            p.zero_grad();
            p.grad_mut().data_mut()[0] = 2.0 * (w - 3.0);
            opt.step(&mut [&mut p]).expect("stable params");
        }
        assert!(
            (p.value().data()[0] - 3.0).abs() < 0.05,
            "w = {}",
            p.value().data()[0]
        );
        assert_eq!(opt.steps(), 200);
    }

    #[test]
    fn adam_respects_mask() {
        let mut p = param(&[1.0, 1.0]);
        p.set_mask(Some(Tensor::from_vec(vec![0.0, 1.0], [2]).expect("ok")))
            .expect("valid");
        let mut opt = Adam::new(0.05);
        for _ in 0..10 {
            p.zero_grad();
            p.grad_mut().fill(-1.0);
            opt.step(&mut [&mut p]).expect("stable params");
        }
        assert_eq!(p.value().data()[0], 0.0);
        assert!(p.value().data()[1] > 1.0);
    }

    #[test]
    fn adamw_decay_is_decoupled() {
        let mut p = param(&[1.0]);
        let mut opt = Adam::adamw(0.0, 0.1); // lr 0: only the decoupled decay acts
        p.grad_mut().fill(100.0);
        opt.step(&mut [&mut p]).expect("stable params");
        // With lr = 0 nothing moves at all (decay is scaled by lr).
        assert_eq!(p.value().data()[0], 1.0);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn state_length_mismatch_is_error() {
        let mut p1 = param(&[1.0]);
        let mut p2 = param(&[1.0]);
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        opt.step(&mut [&mut p1, &mut p2]).expect("stable params");
        assert!(opt.step(&mut [&mut p1]).is_err());
    }
}
