//! Reference architectures.
//!
//! The paper evaluates Reduce on VGG11/CIFAR-10. [`vgg11`] builds the same
//! 8-conv + classifier topology with a configurable channel width so the
//! reproduction can run at CPU scale ([`VggConfig::nano`]) or at the paper's
//! full width ([`VggConfig::full`]). [`mlp`] and [`lenet`] provide cheaper
//! models for tests and fast experiments.

use crate::error::{NnError, Result};
use crate::layers::{BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, Relu};
use crate::model::Sequential;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration of the VGG11 family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VggConfig {
    /// Square input resolution (CIFAR-10 is 32).
    pub input_hw: usize,
    /// Input channels (3 for RGB).
    pub in_channels: usize,
    /// Output classes.
    pub classes: usize,
    /// Base channel width. The canonical VGG11 uses 64; the nano variant
    /// used for CPU-scale experiments defaults to 8.
    pub width: usize,
    /// Insert `BatchNorm2d` after every convolution.
    pub batch_norm: bool,
    /// Classifier dropout probability (0 disables).
    pub dropout: f32,
    /// Seed for dropout masks.
    pub dropout_seed: u64,
}

impl VggConfig {
    /// CPU-scale configuration: 16×16 inputs, width 8 — same topology,
    /// ~1000× fewer MACs than the paper's VGG11.
    pub fn nano(classes: usize) -> Self {
        VggConfig {
            input_hw: 16,
            in_channels: 3,
            classes,
            width: 8,
            batch_norm: true,
            dropout: 0.0,
            dropout_seed: 0,
        }
    }

    /// The paper's configuration: 32×32 inputs, width 64 (VGG11 proper).
    /// Buildable and unit-tested, but far too slow to *train* on CPU.
    pub fn full(classes: usize) -> Self {
        VggConfig {
            input_hw: 32,
            in_channels: 3,
            classes,
            width: 64,
            batch_norm: true,
            dropout: 0.5,
            dropout_seed: 0,
        }
    }
}

/// Builds a VGG11-style network.
///
/// The canonical VGG11 feature extractor is, with `w` the base width:
/// `[conv(w), M, conv(2w), M, conv(4w), conv(4w), M, conv(8w), conv(8w), M,
/// conv(8w), conv(8w), M]`, all 3×3/stride-1/pad-1 convolutions with 2×2
/// max pools. Pools that would shrink a spatial dimension below 1 are
/// skipped so small-input variants stay valid.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero width/classes/input size.
///
/// # Examples
///
/// ```
/// use reduce_nn::models::{vgg11, VggConfig};
///
/// # fn main() -> Result<(), reduce_nn::NnError> {
/// let model = vgg11(&VggConfig::nano(10), 42)?;
/// assert!(model.num_params() > 10_000);
/// # Ok(())
/// # }
/// ```
pub fn vgg11(config: &VggConfig, seed: u64) -> Result<Sequential> {
    if config.width == 0 || config.classes == 0 || config.input_hw == 0 || config.in_channels == 0 {
        return Err(NnError::InvalidConfig {
            what: format!("vgg11 config has a zero field: {config:?}"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let w = config.width;
    // Channel plan of VGG11: (channels, pool-after?).
    let plan: [(usize, bool); 8] = [
        (w, true),
        (2 * w, true),
        (4 * w, false),
        (4 * w, true),
        (8 * w, false),
        (8 * w, true),
        (8 * w, false),
        (8 * w, true),
    ];
    let mut model = Sequential::new();
    let mut channels = config.in_channels;
    let mut hw = config.input_hw;
    for (out_ch, pool) in plan {
        model.add(Conv2d::new(channels, out_ch, 3, 1, 1, &mut rng));
        if config.batch_norm {
            model.add(BatchNorm2d::new(out_ch));
        }
        model.add(Relu::new());
        if pool && hw >= 2 {
            model.add(MaxPool2d::new(2, 2));
            hw /= 2;
        }
        channels = out_ch;
    }
    model.add(Flatten::new());
    let feat = channels * hw * hw;
    let hidden = 16 * w; // scales like VGG's 4096 head at w = 256
    model.add(Linear::new(feat, hidden, &mut rng));
    model.add(Relu::new());
    if config.dropout > 0.0 {
        model.add(Dropout::new(config.dropout, config.dropout_seed)?);
    }
    model.add(Linear::new(hidden, config.classes, &mut rng));
    Ok(model)
}

/// Builds a multilayer perceptron with ReLU activations between layers.
///
/// `dims` lists the layer widths including input and output, e.g.
/// `[16, 64, 64, 4]`.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if fewer than two dims are given or
/// any dim is zero.
pub fn mlp(dims: &[usize], seed: u64) -> Result<Sequential> {
    if dims.len() < 2 || dims.contains(&0) {
        return Err(NnError::InvalidConfig {
            what: format!("mlp needs >= 2 nonzero dims, got {dims:?}"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut model = Sequential::new();
    for i in 0..dims.len() - 1 {
        model.add(Linear::new(dims[i], dims[i + 1], &mut rng));
        if i + 2 < dims.len() {
            model.add(Relu::new());
        }
    }
    Ok(model)
}

/// Builds a LeNet-style small CNN for `input_hw`×`input_hw` inputs.
///
/// Two 5×5 conv/pool stages followed by a two-layer classifier — the classic
/// fast benchmark model.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if the input is smaller than 12×12 or
/// any size is zero.
pub fn lenet(input_hw: usize, in_channels: usize, classes: usize, seed: u64) -> Result<Sequential> {
    if input_hw < 12 || in_channels == 0 || classes == 0 {
        return Err(NnError::InvalidConfig {
            what: format!("lenet needs input_hw >= 12, got {input_hw}"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // conv 5x5 (pad 2) keeps hw; pool halves it, twice.
    let hw_after = input_hw / 2 / 2;
    let feat = 16 * hw_after * hw_after;
    Ok(Sequential::new()
        .push(Conv2d::new(in_channels, 6, 5, 1, 2, &mut rng))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2))
        .push(Conv2d::new(6, 16, 5, 1, 2, &mut rng))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2))
        .push(Flatten::new())
        .push(Linear::new(feat, 120, &mut rng))
        .push(Relu::new())
        .push(Linear::new(120, classes, &mut rng)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Mode;
    use reduce_tensor::Tensor;

    #[test]
    fn vgg_nano_forward_shape() {
        let mut m = vgg11(&VggConfig::nano(10), 0).expect("valid config");
        let y = m
            .forward(&Tensor::zeros([2, 3, 16, 16]), Mode::Eval)
            .expect("valid input");
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn vgg_nano_has_eight_convs() {
        let m = vgg11(&VggConfig::nano(10), 0).expect("valid config");
        let convs = m
            .layers()
            .iter()
            .filter(|l| l.name().starts_with("conv2d"))
            .count();
        assert_eq!(convs, 8, "VGG11 topology has 8 convolutions");
        // 8 conv weights + 2 classifier weights are the maskable GEMMs.
        assert_eq!(m.weight_params().len(), 10);
    }

    #[test]
    fn vgg_full_builds_with_paper_dims() {
        let m = vgg11(&VggConfig::full(10), 0).expect("valid config");
        // VGG11 at width 64 has ~9.2M conv+classifier params at 32x32.
        assert!(m.num_params() > 5_000_000, "got {}", m.num_params());
    }

    #[test]
    fn vgg_small_input_skips_pools() {
        let cfg = VggConfig {
            input_hw: 8,
            ..VggConfig::nano(4)
        };
        let mut m = vgg11(&cfg, 0).expect("valid config");
        let y = m
            .forward(&Tensor::zeros([1, 3, 8, 8]), Mode::Eval)
            .expect("valid input");
        assert_eq!(y.dims(), &[1, 4]);
    }

    #[test]
    fn vgg_rejects_zero_fields() {
        let mut cfg = VggConfig::nano(10);
        cfg.width = 0;
        assert!(vgg11(&cfg, 0).is_err());
    }

    #[test]
    fn mlp_shapes_and_validation() {
        let mut m = mlp(&[4, 16, 3], 1).expect("valid dims");
        let y = m
            .forward(&Tensor::zeros([2, 4]), Mode::Eval)
            .expect("valid input");
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(m.num_params(), 4 * 16 + 16 + 16 * 3 + 3);
        assert!(mlp(&[4], 1).is_err());
        assert!(mlp(&[4, 0, 2], 1).is_err());
    }

    #[test]
    fn lenet_forward() {
        let mut m = lenet(16, 1, 10, 2).expect("valid config");
        let y = m
            .forward(&Tensor::zeros([1, 1, 16, 16]), Mode::Eval)
            .expect("valid input");
        assert_eq!(y.dims(), &[1, 10]);
        assert!(lenet(8, 1, 10, 2).is_err());
    }

    #[test]
    fn builders_are_deterministic() {
        let a = vgg11(&VggConfig::nano(10), 7)
            .expect("valid config")
            .state_dict();
        let b = vgg11(&VggConfig::nano(10), 7)
            .expect("valid config")
            .state_dict();
        for ((_, t1), (_, t2)) in a.iter().zip(&b) {
            assert_eq!(t1, t2);
        }
    }
}
