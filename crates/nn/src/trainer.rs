//! Mini-batch training loop.
//!
//! The [`Trainer`] is deliberately epoch-granular: `reduce-core` drives
//! fault-aware retraining one epoch at a time so it can stop exactly when a
//! chip's accuracy constraint is met and charge the chip for the epochs it
//! actually consumed.

use crate::error::{NnError, Result};
use crate::layers::Mode;
use crate::loss::{Loss, Target};
use crate::metrics::accuracy;
use crate::model::Sequential;
use crate::optim::Optimizer;
use crate::scheduler::LrSchedule;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use reduce_tensor::Tensor;

/// Configuration for a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Mini-batch size (the last batch may be smaller).
    pub batch_size: usize,
    /// Seed for per-epoch shuffling.
    pub shuffle_seed: u64,
    /// Learning-rate schedule applied on top of the optimizer's base rate.
    pub schedule: LrSchedule,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 32,
            shuffle_seed: 0,
            schedule: LrSchedule::Constant,
        }
    }
}

/// Statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch (classification targets only;
    /// 0 for regression).
    pub accuracy: f32,
    /// Learning rate used during this epoch.
    pub lr: f32,
}

/// Statistics of an evaluation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalStats {
    /// Mean loss over the dataset.
    pub loss: f32,
    /// Top-1 accuracy over the dataset.
    pub accuracy: f32,
}

/// The shape of a batch of `count` samples drawn from `x`.
fn batch_dims(x: &Tensor, count: usize) -> Result<Vec<usize>> {
    let dims = x.dims();
    if dims.is_empty() {
        return Err(NnError::InvalidConfig {
            what: "cannot batch a scalar".to_string(),
        });
    }
    let mut out = dims.to_vec();
    out[0] = count;
    Ok(out)
}

/// Copies samples `idx` (along dim 0) of `x` into `out`, which must already
/// have the [`batch_dims`] shape for `idx.len()` samples.
///
/// Works for any rank ≥ 1 because samples are contiguous in row-major
/// layout. This is the workspace-friendly form: the caller provides the
/// destination buffer, so steady-state batch slicing allocates nothing.
fn gather_samples_into(x: &Tensor, idx: &[usize], out: &mut Tensor) -> Result<()> {
    let dims = x.dims();
    let n = dims.first().copied().unwrap_or(0);
    let stride: usize = dims.get(1..).unwrap_or(&[]).iter().product();
    let dst = out.data_mut();
    for (k, &i) in idx.iter().enumerate() {
        if i >= n {
            return Err(NnError::InvalidConfig {
                what: format!("sample index {i} out of range ({n} samples)"),
            });
        }
        dst[k * stride..(k + 1) * stride].copy_from_slice(&x.data()[i * stride..(i + 1) * stride]);
    }
    Ok(())
}

/// Copies the contiguous sample range `[start, end)` of `x` into `out`.
fn slice_samples_into(x: &Tensor, start: usize, end: usize, out: &mut Tensor) -> Result<()> {
    let stride: usize = x.dims().get(1..).unwrap_or(&[]).iter().product();
    out.data_mut()
        .copy_from_slice(&x.data()[start * stride..end * stride]);
    Ok(())
}

/// Copies samples `idx` (along dim 0) of `x` into a new tensor.
///
/// Allocating convenience wrapper around [`gather_samples_into`].
#[cfg(test)]
fn gather_samples(x: &Tensor, idx: &[usize]) -> Result<Tensor> {
    let mut out = Tensor::zeros(batch_dims(x, idx.len())?);
    gather_samples_into(x, idx, &mut out)?;
    Ok(out)
}

/// Evaluates `model` on `(x, labels)` in eval mode, batched.
///
/// # Errors
///
/// Returns an error on shape inconsistencies or an empty dataset.
pub fn evaluate(
    model: &mut Sequential,
    loss: &dyn Loss,
    x: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<EvalStats> {
    let n = x.dims().first().copied().unwrap_or(0);
    if n == 0 || labels.len() != n {
        return Err(NnError::InvalidConfig {
            what: format!("dataset has {n} samples and {} labels", labels.len()),
        });
    }
    if batch_size == 0 {
        return Err(NnError::InvalidConfig {
            what: "batch_size must be nonzero".to_string(),
        });
    }
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        // Batch input comes from (and returns to) the model's workspace;
        // labels are borrowed straight from the caller's slice.
        let mut bx = model.workspace_mut().take(batch_dims(x, end - start)?);
        slice_samples_into(x, start, end, &mut bx)?;
        let by = &labels[start..end];
        let logits = model.forward(&bx, Mode::Eval)?;
        model.workspace_mut().give(bx);
        let out = loss.evaluate(&logits, Target::Labels(by))?;
        total_loss += out.loss as f64 * (end - start) as f64;
        correct += (accuracy(&logits, by)? * (end - start) as f32).round() as usize;
        model.workspace_mut().give(logits);
        model.workspace_mut().give(out.grad);
        start = end;
    }
    Ok(EvalStats {
        // xtask:allow(lossy-float-cast): f64 accumulator narrowed once for reporting
        loss: (total_loss / n as f64) as f32,
        accuracy: correct as f32 / n as f32,
    })
}

/// A mini-batch SGD training driver.
#[derive(Debug)]
pub struct Trainer {
    optimizer: Box<dyn Optimizer>,
    loss: Box<dyn Loss>,
    config: TrainConfig,
    base_lr: f32,
    epochs_run: usize,
}

impl Trainer {
    /// Creates a trainer from an optimizer, a loss and a configuration.
    pub fn new<O, L>(optimizer: O, loss: L, config: TrainConfig) -> Self
    where
        O: Optimizer + 'static,
        L: Loss + 'static,
    {
        let base_lr = optimizer.learning_rate();
        Trainer {
            optimizer: Box::new(optimizer),
            loss: Box::new(loss),
            config,
            base_lr,
            epochs_run: 0,
        }
    }

    /// The loss function in use.
    pub fn loss(&self) -> &dyn Loss {
        self.loss.as_ref()
    }

    /// Number of epochs this trainer has executed so far.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Runs one epoch of training on `(x, labels)`.
    ///
    /// # Errors
    ///
    /// Returns an error on empty/ill-shaped data or optimizer failure.
    pub fn train_epoch(
        &mut self,
        model: &mut Sequential,
        x: &Tensor,
        labels: &[usize],
    ) -> Result<EpochStats> {
        let n = x.dims().first().copied().unwrap_or(0);
        if n == 0 || labels.len() != n {
            return Err(NnError::InvalidConfig {
                what: format!("dataset has {n} samples and {} labels", labels.len()),
            });
        }
        if self.config.batch_size == 0 {
            return Err(NnError::InvalidConfig {
                what: "batch_size must be nonzero".to_string(),
            });
        }
        let epoch = self.epochs_run;
        let lr = self.config.schedule.rate(self.base_lr, epoch);
        self.optimizer.set_learning_rate(lr);

        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(self.config.shuffle_seed.wrapping_add(epoch as u64));
        order.shuffle(&mut rng);

        let mut total_loss = 0.0f64;
        let mut correct = 0.0f64;
        // One label buffer reused across batches; the loss borrows it.
        let mut by: Vec<usize> = Vec::with_capacity(self.config.batch_size);
        for chunk in order.chunks(self.config.batch_size) {
            let mut bx = model.workspace_mut().take(batch_dims(x, chunk.len())?);
            gather_samples_into(x, chunk, &mut bx)?;
            by.clear();
            by.extend(chunk.iter().map(|&i| labels[i]));
            let logits = model.forward(&bx, Mode::Train)?;
            model.workspace_mut().give(bx);
            let out = self.loss.evaluate(&logits, Target::Labels(&by))?;
            total_loss += out.loss as f64 * chunk.len() as f64;
            correct += accuracy(&logits, &by)? as f64 * chunk.len() as f64;
            model.workspace_mut().give(logits);
            model.zero_grad();
            let gx = model.backward(&out.grad)?;
            model.workspace_mut().give(gx);
            model.workspace_mut().give(out.grad);
            let mut params = model.params_mut();
            self.optimizer.step(&mut params)?;
        }
        self.epochs_run += 1;
        Ok(EpochStats {
            epoch,
            // xtask:allow(lossy-float-cast): f64 accumulator narrowed once for reporting
            loss: (total_loss / n as f64) as f32,
            // xtask:allow(lossy-float-cast): f64 accumulator narrowed once for reporting
            accuracy: (correct / n as f64) as f32,
            lr,
        })
    }

    /// Runs `epochs` epochs, returning per-epoch statistics.
    ///
    /// # Errors
    ///
    /// Propagates the first failing epoch's error.
    pub fn fit(
        &mut self,
        model: &mut Sequential,
        x: &Tensor,
        labels: &[usize],
        epochs: usize,
    ) -> Result<Vec<EpochStats>> {
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            history.push(self.train_epoch(model, x, labels)?);
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::loss::CrossEntropyLoss;
    use crate::optim::Sgd;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Linearly separable 2-class blobs.
    fn blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { -1.5f32 } else { 1.5f32 };
            let noise = Tensor::rand_normal_with([2], 0.0, 0.4, &mut rng);
            data.push(center + noise.data()[0]);
            data.push(center + noise.data()[1]);
            labels.push(class);
        }
        (
            Tensor::from_vec(data, [n, 2]).expect("length matches"),
            labels,
        )
    }

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = SmallRng::seed_from_u64(seed);
        Sequential::new()
            .push(Linear::new(2, 16, &mut rng))
            .push(Relu::new())
            .push(Linear::new(16, 2, &mut rng))
    }

    #[test]
    fn training_learns_blobs() {
        let (x, y) = blobs(200, 1);
        let mut model = tiny_model(2);
        let mut trainer = Trainer::new(
            Sgd::with_momentum(0.1, 0.9),
            CrossEntropyLoss,
            TrainConfig::default(),
        );
        let history = trainer.fit(&mut model, &x, &y, 10).expect("valid data");
        assert_eq!(history.len(), 10);
        let eval = evaluate(&mut model, &CrossEntropyLoss, &x, &y, 32).expect("valid data");
        assert!(eval.accuracy > 0.95, "accuracy {}", eval.accuracy);
        // Loss decreased.
        assert!(history.last().expect("non-empty").loss < history[0].loss);
        assert_eq!(trainer.epochs_run(), 10);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seeds() {
        let (x, y) = blobs(64, 3);
        let run = || {
            let mut model = tiny_model(4);
            let mut trainer =
                Trainer::new(Sgd::new(0.05), CrossEntropyLoss, TrainConfig::default());
            trainer.fit(&mut model, &x, &y, 3).expect("valid data");
            model.state_dict()
        };
        let a = run();
        let b = run();
        for ((_, t1), (_, t2)) in a.iter().zip(&b) {
            assert_eq!(t1, t2);
        }
    }

    #[test]
    fn schedule_changes_lr_across_epochs() {
        let (x, y) = blobs(32, 5);
        let mut model = tiny_model(6);
        let config = TrainConfig {
            schedule: LrSchedule::StepDecay {
                step: 1,
                gamma: 0.5,
            },
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(Sgd::new(0.1), CrossEntropyLoss, config);
        let h = trainer.fit(&mut model, &x, &y, 3).expect("valid data");
        assert!((h[0].lr - 0.1).abs() < 1e-6);
        assert!((h[1].lr - 0.05).abs() < 1e-6);
        assert!((h[2].lr - 0.025).abs() < 1e-6);
    }

    #[test]
    fn masked_weights_stay_zero_through_training() {
        let (x, y) = blobs(64, 7);
        let mut model = tiny_model(8);
        let mut mask = Tensor::ones([16, 2]);
        for j in 0..8 {
            mask.data_mut()[j * 2] = 0.0;
        }
        model
            .set_weight_masks(&[Some(mask), None])
            .expect("count matches");
        let mut trainer = Trainer::new(
            Sgd::with_momentum(0.1, 0.9),
            CrossEntropyLoss,
            TrainConfig::default(),
        );
        trainer.fit(&mut model, &x, &y, 5).expect("valid data");
        assert!(
            model.mask_invariants_hold(),
            "mask invariant violated by training"
        );
    }

    #[test]
    fn validation_errors() {
        let mut model = tiny_model(9);
        let mut trainer = Trainer::new(Sgd::new(0.1), CrossEntropyLoss, TrainConfig::default());
        // Mismatched labels.
        let x = Tensor::zeros([4, 2]);
        assert!(trainer.train_epoch(&mut model, &x, &[0, 1]).is_err());
        // Empty dataset.
        assert!(trainer
            .train_epoch(&mut model, &Tensor::zeros([0, 2]), &[])
            .is_err());
        // Zero batch size.
        let mut trainer = Trainer::new(
            Sgd::new(0.1),
            CrossEntropyLoss,
            TrainConfig {
                batch_size: 0,
                ..TrainConfig::default()
            },
        );
        assert!(trainer.train_epoch(&mut model, &x, &[0, 1, 0, 1]).is_err());
    }

    #[test]
    fn gather_samples_reorders() {
        let x = Tensor::from_fn([3, 2], |i| i as f32);
        let g = gather_samples(&x, &[2, 0]).expect("indices valid");
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert!(gather_samples(&x, &[3]).is_err());
    }

    #[test]
    fn evaluate_validates_input() {
        let mut model = tiny_model(10);
        assert!(evaluate(
            &mut model,
            &CrossEntropyLoss,
            &Tensor::zeros([0, 2]),
            &[],
            4
        )
        .is_err());
        assert!(evaluate(
            &mut model,
            &CrossEntropyLoss,
            &Tensor::zeros([2, 2]),
            &[0, 1],
            0
        )
        .is_err());
    }
}
