//! Weight initialisation schemes.

use rand::Rng;
use reduce_tensor::Tensor;

/// Weight initialisation scheme for layers with a `(fan_out, fan_in)`
/// weight matrix.
///
/// All schemes draw from a caller-supplied RNG so whole-model initialisation
/// is reproducible from a single seed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Init {
    /// All zeros (biases, baselines).
    Zeros,
    /// Constant value.
    Constant(f32),
    /// Uniform in `[-a, a]`.
    Uniform(f32),
    /// Kaiming/He normal: `N(0, sqrt(2 / fan_in))` — the right choice ahead
    /// of ReLU nonlinearities, used for all conv/linear layers here.
    #[default]
    KaimingNormal,
    /// Xavier/Glorot uniform: `U(±sqrt(6 / (fan_in + fan_out)))`.
    XavierUniform,
}

impl Init {
    /// Materialises a tensor of the given shape.
    ///
    /// `fan_in`/`fan_out` follow the convention of a row-major
    /// `(fan_out, fan_in)` weight matrix; for other shapes pass the
    /// effective fan values.
    pub fn tensor<R: Rng>(
        &self,
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut R,
    ) -> Tensor {
        match *self {
            Init::Zeros => Tensor::zeros(dims.to_vec()),
            Init::Constant(c) => Tensor::full(dims.to_vec(), c),
            Init::Uniform(a) => Tensor::rand_uniform_with(dims.to_vec(), -a, a, rng),
            Init::KaimingNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                Tensor::rand_normal_with(dims.to_vec(), 0.0, std, rng)
            }
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Tensor::rand_uniform_with(dims.to_vec(), -a, a, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_constant() {
        let mut rng = SmallRng::seed_from_u64(0);
        let z = Init::Zeros.tensor(&[2, 2], 2, 2, &mut rng);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let c = Init::Constant(0.5).tensor(&[3], 3, 1, &mut rng);
        assert!(c.data().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = Init::KaimingNormal.tensor(&[200, 50], 50, 200, &mut rng);
        let mean = t.mean();
        let std = t.map(|x| (x - mean) * (x - mean)).mean().sqrt();
        let expected = (2.0f32 / 50.0).sqrt();
        assert!(
            (std - expected).abs() / expected < 0.1,
            "std {std} vs {expected}"
        );
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let t = Init::XavierUniform.tensor(&[100, 20], 20, 100, &mut rng);
        let a = (6.0f32 / 120.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn deterministic_given_rng_state() {
        let mut r1 = SmallRng::seed_from_u64(3);
        let mut r2 = SmallRng::seed_from_u64(3);
        let a = Init::Uniform(1.0).tensor(&[8], 8, 8, &mut r1);
        let b = Init::Uniform(1.0).tensor(&[8], 8, 8, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_fan_does_not_divide_by_zero() {
        let mut rng = SmallRng::seed_from_u64(4);
        let t = Init::KaimingNormal.tensor(&[2], 0, 0, &mut rng);
        assert!(t.all_finite());
    }
}
