//! # reduce-nn
//!
//! A layer-based neural-network training framework with manual
//! backpropagation — the PyTorch substitute for the Reduce (DATE 2023)
//! reproduction.
//!
//! The crate provides:
//!
//! * [`layers`] — `Linear`, `Conv2d`, activations, pooling, batch norm,
//!   dropout, flatten; every layer implements exact forward/backward passes
//!   verified against finite differences;
//! * [`Sequential`] — the model container with checkpointing and **fault
//!   masks** on its GEMM weight matrices (the hook fault-aware training
//!   uses);
//! * [`CrossEntropyLoss`]/[`MseLoss`], [`Sgd`]/[`Adam`] (mask-projecting
//!   optimizers), [`LrSchedule`]s, and an epoch-granular [`Trainer`];
//! * [`models`] — VGG11 (paper topology, configurable width), LeNet, MLPs.
//!
//! # Examples
//!
//! ```
//! use reduce_nn::{models, CrossEntropyLoss, Sgd, TrainConfig, Trainer};
//! use reduce_tensor::Tensor;
//!
//! # fn main() -> Result<(), reduce_nn::NnError> {
//! let mut model = models::mlp(&[2, 16, 2], 0)?;
//! let x = Tensor::rand_uniform([32, 2], -1.0, 1.0, 1);
//! let labels: Vec<usize> = x
//!     .data()
//!     .chunks(2)
//!     .map(|p| usize::from(p[0] + p[1] > 0.0))
//!     .collect();
//! let mut trainer = Trainer::new(Sgd::new(0.1), CrossEntropyLoss, TrainConfig::default());
//! let history = trainer.fit(&mut model, &x, &labels, 3)?;
//! assert_eq!(history.len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
// Tests may unwrap/expect freely: a panic there *is* the failure report.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod error;
mod init;
pub mod layers;
mod loss;
mod metrics;
mod model;
pub mod models;
mod optim;
mod param;
mod scheduler;
mod trainer;
mod workspace;

pub use error::{NnError, Result};
pub use init::Init;
pub use loss::{CrossEntropyLoss, Loss, LossOutput, MseLoss, Target};
pub use metrics::{accuracy, ConfusionMatrix};
pub use model::{ModelSnapshot, Sequential};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Parameter;
pub use scheduler::LrSchedule;
pub use trainer::{evaluate, EpochStats, EvalStats, TrainConfig, Trainer};
pub use workspace::{Workspace, WorkspaceStats};
