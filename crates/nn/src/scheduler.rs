//! Learning-rate schedules.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule mapping `(base_lr, epoch)` to the epoch's rate.
///
/// Schedules are plain data (serialisable) so experiment configurations can
/// be recorded alongside results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LrSchedule {
    /// Constant learning rate.
    #[default]
    Constant,
    /// Multiply by `gamma` every `step` epochs.
    StepDecay {
        /// Epoch interval between decays.
        step: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Cosine annealing from the base rate to `min_lr` over `total` epochs.
    Cosine {
        /// Total annealing horizon in epochs.
        total: usize,
        /// Floor learning rate.
        min_lr: f32,
    },
    /// Exponential decay: `base · gamma^epoch`.
    Exponential {
        /// Per-epoch decay factor.
        gamma: f32,
    },
}

impl LrSchedule {
    /// The learning rate to use for `epoch` (0-based) given `base_lr`.
    pub fn rate(&self, base_lr: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { step, gamma } => match epoch.checked_div(step) {
                Some(k) => base_lr * gamma.powi(k as i32),
                None => base_lr,
            },
            LrSchedule::Cosine { total, min_lr } => {
                if total == 0 {
                    return base_lr;
                }
                let t = (epoch.min(total)) as f32 / total as f32;
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Exponential { gamma } => base_lr * gamma.powi(epoch as i32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        assert_eq!(LrSchedule::Constant.rate(0.1, 0), 0.1);
        assert_eq!(LrSchedule::Constant.rate(0.1, 100), 0.1);
    }

    #[test]
    fn step_decay_steps() {
        let s = LrSchedule::StepDecay {
            step: 2,
            gamma: 0.1,
        };
        assert!((s.rate(1.0, 0) - 1.0).abs() < 1e-6);
        assert!((s.rate(1.0, 1) - 1.0).abs() < 1e-6);
        assert!((s.rate(1.0, 2) - 0.1).abs() < 1e-6);
        assert!((s.rate(1.0, 4) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn step_decay_zero_step_is_constant() {
        let s = LrSchedule::StepDecay {
            step: 0,
            gamma: 0.1,
        };
        assert_eq!(s.rate(1.0, 5), 1.0);
    }

    #[test]
    fn cosine_endpoints() {
        let s = LrSchedule::Cosine {
            total: 10,
            min_lr: 0.01,
        };
        assert!((s.rate(1.0, 0) - 1.0).abs() < 1e-6);
        assert!((s.rate(1.0, 10) - 0.01).abs() < 1e-6);
        // Beyond the horizon it stays at the floor.
        assert!((s.rate(1.0, 20) - 0.01).abs() < 1e-6);
        // Midpoint is halfway.
        let mid = s.rate(1.0, 5);
        assert!((mid - 0.505).abs() < 1e-3, "mid {mid}");
    }

    #[test]
    fn exponential_decays_monotonically() {
        let s = LrSchedule::Exponential { gamma: 0.5 };
        assert!(s.rate(1.0, 3) < s.rate(1.0, 2));
        assert!((s.rate(1.0, 3) - 0.125).abs() < 1e-6);
    }
}
