//! Error types for the NN framework.

use reduce_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error produced by fallible NN operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor-level operation failed (shape mismatch etc.).
    Tensor(TensorError),
    /// A layer received input with an unexpected shape.
    BadInput {
        /// Layer name.
        layer: String,
        /// What was wrong.
        reason: String,
    },
    /// `backward` was called before `forward`, or state required by the
    /// backward pass is missing.
    MissingForwardState {
        /// Layer name.
        layer: String,
    },
    /// A configuration value was rejected (zero batch size, probability out
    /// of range, unknown parameter name, ...).
    InvalidConfig {
        /// What configuration was invalid.
        what: String,
    },
    /// A checkpoint did not match the model it was loaded into.
    CheckpointMismatch {
        /// Explanation of the mismatch.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput { layer, reason } => {
                write!(f, "bad input to layer {layer}: {reason}")
            }
            NnError::MissingForwardState { layer } => {
                write!(f, "backward called on layer {layer} before forward")
            }
            NnError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            NnError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint does not match model: {reason}")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = NnError::BadInput {
            layer: "conv1".into(),
            reason: "rank 3".into(),
        };
        assert!(e.to_string().contains("conv1"));
        let e = NnError::MissingForwardState { layer: "fc".into() };
        assert!(e.to_string().contains("before forward"));
    }

    #[test]
    fn tensor_error_converts() {
        let te = TensorError::LengthMismatch {
            expected: 1,
            actual: 2,
        };
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
    }

    #[test]
    fn source_is_populated_for_tensor_errors() {
        use std::error::Error as _;
        let ne: NnError = TensorError::LengthMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(ne.source().is_some());
        let other = NnError::InvalidConfig { what: "x".into() };
        assert!(other.source().is_none());
    }
}
