//! The sequential model container.

use crate::error::{NnError, Result};
use crate::layers::{Layer, Mode};
use crate::param::Parameter;
use crate::workspace::{Workspace, WorkspaceStats};
use reduce_tensor::Tensor;

/// An O(1) snapshot of a model's parameter values.
///
/// Tensors use copy-on-write storage, so each entry is a reference-count
/// bump rather than a data copy: snapshotting an N-parameter model costs N
/// `Arc` increments and zero float copies. The snapshot stays bit-identical
/// to the weights at capture time — the first later write to a parameter
/// (an optimizer step, a fault-mask application) un-shares just that
/// tensor, leaving the snapshot untouched.
///
/// Entries are keyed `"{layer}.{param}"` in layer order, exactly like
/// [`Sequential::state_dict`].
#[derive(Debug, Clone, Default)]
pub struct ModelSnapshot {
    entries: Vec<(String, Tensor)>,
}

impl ModelSnapshot {
    /// Wraps raw `(key, value)` entries as a snapshot.
    pub fn from_entries(entries: Vec<(String, Tensor)>) -> Self {
        ModelSnapshot { entries }
    }

    /// The `(key, value)` entries, in layer order.
    pub fn entries(&self) -> &[(String, Tensor)] {
        &self.entries
    }

    /// Unwraps into the raw entry list.
    pub fn into_entries(self) -> Vec<(String, Tensor)> {
        self.entries
    }

    /// Number of parameter entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A feed-forward stack of layers executed in order.
///
/// `Sequential` is the model type used throughout the reproduction: VGG-style
/// CNNs and MLPs are both built as sequences of [`Layer`]s. Parameters are
/// addressed by flattened position; rank-2 parameters (the GEMM weight
/// matrices of `Linear`/`Conv2d`) are the ones a systolic-array fault map
/// masks, and are exposed separately via [`Sequential::weight_params_mut`].
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use reduce_nn::layers::{Linear, Mode, Relu};
/// use reduce_nn::Sequential;
/// use reduce_tensor::Tensor;
///
/// # fn main() -> Result<(), reduce_nn::NnError> {
/// let mut rng = SmallRng::seed_from_u64(0);
/// let mut model = Sequential::new()
///     .push(Linear::new(4, 8, &mut rng))
///     .push(Relu::new())
///     .push(Linear::new(8, 2, &mut rng));
/// let y = model.forward(&Tensor::zeros([1, 4]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Shape-keyed buffer arena shared by every layer; steady-state training
    /// iterations draw all intermediates from here instead of the allocator.
    workspace: Workspace,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Sequential {
            layers: Vec::new(),
            workspace: Workspace::new(),
        }
    }

    /// Appends a layer (builder style).
    pub fn push<L: Layer + 'static>(mut self, layer: L) -> Self {
        self.add(layer);
        self
    }

    /// Appends a layer in place.
    pub fn add<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers, in execution order.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to layer `i`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `i` is out of range.
    pub fn layer_mut(&mut self, i: usize) -> Result<&mut Box<dyn Layer>> {
        let n = self.layers.len();
        self.layers.get_mut(i).ok_or(NnError::InvalidConfig {
            what: format!("layer index {i} out of range ({n} layers)"),
        })
    }

    /// Runs the full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let ws = &mut self.workspace;
        let mut cur = x.clone();
        for layer in &mut self.layers {
            let next = layer.forward_ws(&cur, mode, ws)?;
            // Recycle the consumed intermediate. Tensors still shared (the
            // caller's input, a layer's cached clone) are dropped, which
            // leaves the layer cache as sole owner — the layer hands the
            // buffer back on its next forward.
            ws.give(std::mem::replace(&mut cur, next));
        }
        Ok(cur)
    }

    /// Runs the full backward pass, accumulating parameter gradients, and
    /// returns the gradient w.r.t. the model input.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (e.g. backward before forward).
    pub fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        let ws = &mut self.workspace;
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            let next = layer.backward_ws(&cur, ws)?;
            ws.give(std::mem::replace(&mut cur, next));
        }
        Ok(cur)
    }

    /// Takes an O(1) copy-on-write snapshot of every parameter value.
    ///
    /// See [`ModelSnapshot`] for the sharing/isolation semantics.
    pub fn snapshot(&self) -> ModelSnapshot {
        ModelSnapshot::from_entries(self.state_dict())
    }

    /// Restores parameter values from a [`Sequential::snapshot`].
    ///
    /// Installed masks are re-applied to the restored values (mask
    /// application is the copy-on-write trigger, so two models restored
    /// from one snapshot never observe each other's masked weights).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CheckpointMismatch`] exactly as
    /// [`Sequential::load_state_dict`] does.
    pub fn restore(&mut self, snapshot: &ModelSnapshot) -> Result<()> {
        self.load_state_dict(snapshot.entries())
    }

    /// The model's shared buffer arena, e.g. for a trainer that wants its
    /// per-batch tensors to come from (and return to) the same pools the
    /// layers use.
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.workspace
    }

    /// Workspace hit/miss/allocation counters since the last reset.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.workspace.stats()
    }

    /// Zeroes the workspace counters (pooled buffers are kept).
    pub fn reset_workspace_stats(&mut self) {
        self.workspace.reset_stats();
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// All parameters, flattened in layer order.
    pub fn params(&self) -> Vec<&Parameter> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// All parameters, mutable, flattened in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total number of scalar weights.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// The rank-2 (GEMM weight-matrix) parameters — the ones a systolic
    /// array executes and a fault map masks — in layer order.
    pub fn weight_params(&self) -> Vec<&Parameter> {
        self.params()
            .into_iter()
            .filter(|p| p.value().rank() == 2)
            .collect()
    }

    /// Mutable variant of [`Sequential::weight_params`].
    pub fn weight_params_mut(&mut self) -> Vec<&mut Parameter> {
        self.params_mut()
            .into_iter()
            .filter(|p| p.value().rank() == 2)
            .collect()
    }

    /// Installs fault masks on the weight parameters, in order.
    ///
    /// `masks[i]` applies to the i-th rank-2 parameter; `None` clears it.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the mask count differs from the
    /// weight-parameter count, or a mask error from [`Parameter::set_mask`].
    pub fn set_weight_masks(&mut self, masks: &[Option<Tensor>]) -> Result<()> {
        let mut weights = self.weight_params_mut();
        if masks.len() != weights.len() {
            return Err(NnError::InvalidConfig {
                what: format!(
                    "{} masks supplied for {} weight parameters",
                    masks.len(),
                    weights.len()
                ),
            });
        }
        for (p, m) in weights.iter_mut().zip(masks) {
            p.set_mask(m.clone())?;
        }
        Ok(())
    }

    /// Clears every installed mask.
    pub fn clear_masks(&mut self) {
        for p in self.params_mut() {
            // Clearing is always valid.
            let _ = p.set_mask(None);
        }
    }

    /// Whether every masked weight is currently zero.
    pub fn mask_invariants_hold(&self) -> bool {
        self.params().iter().all(|p| p.mask_invariant_holds())
    }

    /// Snapshot of all parameter values, keyed `"{layer}.{param}"`.
    pub fn state_dict(&self) -> Vec<(String, Tensor)> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            for p in layer.params() {
                out.push((format!("{i}.{}", p.name()), p.value().clone()));
            }
        }
        out
    }

    /// Restores parameter values from a [`Sequential::state_dict`] snapshot.
    ///
    /// Masks installed on the model are re-applied to the loaded values.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CheckpointMismatch`] if the entry count, any key,
    /// or any shape disagrees with the model.
    pub fn load_state_dict(&mut self, state: &[(String, Tensor)]) -> Result<()> {
        let expected: Vec<String> = self
            .layers
            .iter()
            .enumerate()
            .flat_map(|(i, l)| {
                l.params()
                    .into_iter()
                    .map(move |p| format!("{i}.{}", p.name()))
            })
            .collect();
        if expected.len() != state.len() {
            return Err(NnError::CheckpointMismatch {
                reason: format!(
                    "{} entries loaded into {} parameters",
                    state.len(),
                    expected.len()
                ),
            });
        }
        for (name, (key, _)) in expected.iter().zip(state) {
            if name != key {
                return Err(NnError::CheckpointMismatch {
                    reason: format!("expected key {name}, found {key}"),
                });
            }
        }
        let mut params = self.params_mut();
        for (p, (_, value)) in params.iter_mut().zip(state) {
            p.load_value(value.clone())?;
        }
        Ok(())
    }

    /// Human-readable architecture summary, one layer per line.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let n: usize = layer.params().iter().map(|p| p.len()).sum();
            s.push_str(&format!("{i:>3}  {:<40} {n:>9} params\n", layer.name()));
        }
        s.push_str(&format!("     total {:>42} params\n", self.num_params()));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn model() -> Sequential {
        let mut rng = SmallRng::seed_from_u64(1);
        Sequential::new()
            .push(Linear::new(4, 8, &mut rng))
            .push(Relu::new())
            .push(Linear::new(8, 3, &mut rng))
    }

    #[test]
    fn forward_backward_shapes() {
        let mut m = model();
        let y = m
            .forward(&Tensor::zeros([5, 4]), Mode::Train)
            .expect("valid input");
        assert_eq!(y.dims(), &[5, 3]);
        let gx = m.backward(&Tensor::ones([5, 3])).expect("forward ran");
        assert_eq!(gx.dims(), &[5, 4]);
    }

    #[test]
    fn param_counting() {
        let m = model();
        assert_eq!(m.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(m.params().len(), 4);
        assert_eq!(m.weight_params().len(), 2);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut m = model();
        let _ = m
            .forward(&Tensor::ones([2, 4]), Mode::Train)
            .expect("valid input");
        m.backward(&Tensor::ones([2, 3])).expect("forward ran");
        assert!(m.params().iter().any(|p| p.grad().norm_sq() > 0.0));
        m.zero_grad();
        assert!(m.params().iter().all(|p| p.grad().norm_sq() == 0.0));
    }

    #[test]
    fn set_weight_masks_in_order() {
        let mut m = model();
        let masks = vec![Some(Tensor::zeros([8, 4])), None];
        m.set_weight_masks(&masks).expect("count matches");
        assert_eq!(m.weight_params()[0].masked_fraction(), 1.0);
        assert_eq!(m.weight_params()[1].masked_fraction(), 0.0);
        assert!(m.mask_invariants_hold());
        assert!(m.set_weight_masks(&[None]).is_err());
        m.clear_masks();
        assert_eq!(m.weight_params()[0].masked_fraction(), 0.0);
    }

    #[test]
    fn state_dict_round_trip() {
        let mut m = model();
        let state = m.state_dict();
        assert_eq!(state.len(), 4);
        assert!(state[0].0.contains("linear.weight"));
        // Perturb then restore.
        for p in m.params_mut() {
            p.value_mut().fill(0.0);
        }
        m.load_state_dict(&state).expect("matching checkpoint");
        let back = m.state_dict();
        for ((k1, v1), (k2, v2)) in state.iter().zip(&back) {
            assert_eq!(k1, k2);
            assert_eq!(v1, v2);
        }
    }

    #[test]
    fn load_state_dict_validates() {
        let mut m = model();
        let mut state = m.state_dict();
        state.pop();
        assert!(m.load_state_dict(&state).is_err());
        let mut state = m.state_dict();
        state[0].0 = "bogus".to_string();
        assert!(m.load_state_dict(&state).is_err());
    }

    #[test]
    fn load_reapplies_masks() {
        let mut m = model();
        let mut mask = Tensor::ones([8, 4]);
        mask.data_mut()[0] = 0.0;
        m.set_weight_masks(&[Some(mask), None])
            .expect("count matches");
        let mut state = model().state_dict();
        state[0].1.fill(9.0);
        m.load_state_dict(&state).expect("matching checkpoint");
        assert_eq!(m.weight_params()[0].value().data()[0], 0.0);
        assert!(m.mask_invariants_hold());
    }

    #[test]
    fn summary_mentions_layers() {
        let m = model();
        let s = m.summary();
        assert!(s.contains("linear(4→8)"));
        assert!(s.contains("total"));
    }

    #[test]
    fn empty_model_is_identity() {
        let mut m = Sequential::new();
        assert!(m.is_empty());
        let x = Tensor::ones([2, 2]);
        assert_eq!(m.forward(&x, Mode::Eval).expect("no layers"), x);
    }

    #[test]
    fn snapshot_is_zero_copy_and_restore_round_trips() {
        let mut m = model();
        let snap = m.snapshot();
        // Snapshot entries alias the live parameters until a write happens.
        for ((_, t), p) in snap.entries().iter().zip(m.params()) {
            assert!(t.shares_storage(p.value()));
        }
        for p in m.params_mut() {
            p.value_mut().fill(7.0);
        }
        // The write un-shared the parameters; the snapshot kept old values.
        for ((_, t), p) in snap.entries().iter().zip(m.params()) {
            assert!(!t.shares_storage(p.value()));
        }
        m.restore(&snap).expect("matching snapshot");
        for ((_, t), p) in snap.entries().iter().zip(m.params()) {
            assert_eq!(t, p.value());
        }
    }

    #[test]
    fn restore_validates_like_load_state_dict() {
        let mut m = model();
        let snap = ModelSnapshot::from_entries(vec![]);
        assert!(m.restore(&snap).is_err());
        assert!(snap.is_empty());
        assert_eq!(m.snapshot().len(), 4);
    }

    #[test]
    fn steady_state_training_iterations_are_allocation_free() {
        let mut m = model();
        let x = Tensor::rand_uniform([8, 4], -1.0, 1.0, 5);
        let g = Tensor::ones([8, 3]);
        // Warm-up: two iterations fill the pools (cached clones hand their
        // buffers back with a one-iteration delay).
        for _ in 0..2 {
            let y = m.forward(&x, Mode::Train).expect("valid input");
            m.workspace_mut().give(y);
            let gx = m.backward(&g).expect("forward ran");
            m.workspace_mut().give(gx);
        }
        let warm = m.workspace_stats().misses;
        for _ in 0..3 {
            let y = m.forward(&x, Mode::Train).expect("valid input");
            m.workspace_mut().give(y);
            let gx = m.backward(&g).expect("forward ran");
            m.workspace_mut().give(gx);
        }
        let stats = m.workspace_stats();
        assert_eq!(
            stats.misses, warm,
            "steady-state iterations must not allocate: {stats:?}"
        );
        assert!(stats.hits > 0);
        m.reset_workspace_stats();
        assert_eq!(m.workspace_stats().requests(), 0);
    }
}
