//! Loss functions.
//!
//! Each loss returns both the scalar loss and the gradient with respect to
//! the network output, ready to feed into the model's backward pass.

use crate::error::{NnError, Result};
use reduce_tensor::{ops, Tensor};

/// Value and gradient of a loss evaluated on one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss w.r.t. the network output.
    pub grad: Tensor,
}

/// A differentiable loss over batched predictions.
pub trait Loss: std::fmt::Debug + Send {
    /// Evaluates the loss and its gradient.
    ///
    /// # Errors
    ///
    /// Returns an error if predictions and targets are inconsistent.
    fn evaluate(&self, predictions: &Tensor, targets: Target<'_>) -> Result<LossOutput>;
}

/// Training targets: class labels or dense regression values.
///
/// Targets borrow the caller's data — a trainer hands each batch's label
/// slice straight through without copying it per batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target<'a> {
    /// One class index per batch row.
    Labels(&'a [usize]),
    /// Dense targets of the same shape as the predictions.
    Values(&'a Tensor),
}

impl Target<'_> {
    /// Number of examples in the target.
    pub fn len(&self) -> usize {
        match self {
            Target::Labels(l) => l.len(),
            Target::Values(v) => v.dims().first().copied().unwrap_or(0),
        }
    }

    /// Whether the target holds no examples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<'a> From<&'a [usize]> for Target<'a> {
    fn from(labels: &'a [usize]) -> Self {
        Target::Labels(labels)
    }
}

impl<'a> From<&'a Vec<usize>> for Target<'a> {
    fn from(labels: &'a Vec<usize>) -> Self {
        Target::Labels(labels)
    }
}

impl<'a> From<&'a Tensor> for Target<'a> {
    fn from(values: &'a Tensor) -> Self {
        Target::Values(values)
    }
}

/// Softmax cross-entropy over logits, fused for numerical stability.
///
/// `loss = -(1/N) Σ log softmax(logits)[i, y_i]`, and the gradient has the
/// classic closed form `softmax(logits) - onehot(y)` scaled by `1/N`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Creates the loss.
    pub fn new() -> Self {
        CrossEntropyLoss
    }
}

impl Loss for CrossEntropyLoss {
    fn evaluate(&self, predictions: &Tensor, targets: Target<'_>) -> Result<LossOutput> {
        let labels = match targets {
            Target::Labels(l) => l,
            Target::Values(_) => {
                return Err(NnError::InvalidConfig {
                    what: "cross-entropy requires class labels".to_string(),
                })
            }
        };
        let (n, c) = predictions.shape().as_matrix()?;
        if labels.len() != n {
            return Err(NnError::InvalidConfig {
                what: format!("{} labels for {n} predictions", labels.len()),
            });
        }
        if n == 0 {
            return Err(NnError::InvalidConfig {
                what: "empty batch".to_string(),
            });
        }
        let log_probs = ops::log_softmax_rows(predictions)?;
        let mut loss = 0.0f32;
        for (i, &y) in labels.iter().enumerate() {
            if y >= c {
                return Err(NnError::InvalidConfig {
                    what: format!("label {y} >= classes {c}"),
                });
            }
            loss -= log_probs.data()[i * c + y];
        }
        loss /= n as f32;
        let mut grad = ops::softmax_rows(predictions)?;
        let inv = 1.0 / n as f32;
        for (i, &y) in labels.iter().enumerate() {
            grad.data_mut()[i * c + y] -= 1.0;
        }
        grad.scale(inv);
        Ok(LossOutput { loss, grad })
    }
}

/// Mean squared error over dense targets: `(1/N·D) Σ (p - t)²`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl MseLoss {
    /// Creates the loss.
    pub fn new() -> Self {
        MseLoss
    }
}

impl Loss for MseLoss {
    fn evaluate(&self, predictions: &Tensor, targets: Target<'_>) -> Result<LossOutput> {
        let values = match targets {
            Target::Values(v) => v,
            Target::Labels(_) => {
                return Err(NnError::InvalidConfig {
                    what: "mse requires dense targets".to_string(),
                })
            }
        };
        if predictions.dims() != values.dims() {
            return Err(NnError::Tensor(reduce_tensor::TensorError::ShapeMismatch {
                op: "mse",
                lhs: predictions.dims().to_vec(),
                rhs: values.dims().to_vec(),
            }));
        }
        if predictions.is_empty() {
            return Err(NnError::InvalidConfig {
                what: "empty batch".to_string(),
            });
        }
        let diff = (predictions - values)?;
        let n = predictions.len() as f32;
        let loss = diff.norm_sq() / n;
        let grad = &diff * (2.0 / n);
        Ok(LossOutput { loss, grad })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros([2, 4]);
        let out = CrossEntropyLoss
            .evaluate(&logits, Target::Labels(&[0, 1]))
            .expect("valid");
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let mut logits = Tensor::zeros([1, 3]);
        logits.data_mut()[1] = 20.0;
        let out = CrossEntropyLoss
            .evaluate(&logits, Target::Labels(&[1]))
            .expect("valid");
        assert!(out.loss < 1e-6);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_diff() {
        let logits = Tensor::rand_uniform([3, 4], -2.0, 2.0, 1);
        let labels = Target::Labels(&[2, 0, 3]);
        let out = CrossEntropyLoss.evaluate(&logits, labels).expect("valid");
        let eps = 1e-3;
        for i in [0usize, 5, 11] {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let fp = CrossEntropyLoss.evaluate(&lp, labels).expect("valid").loss;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fm = CrossEntropyLoss.evaluate(&lm, labels).expect("valid").loss;
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - out.grad.data()[i]).abs() < 1e-3, "at {i}");
        }
    }

    #[test]
    fn cross_entropy_grad_rows_sum_to_zero() {
        let logits = Tensor::rand_uniform([4, 5], -1.0, 1.0, 2);
        let out = CrossEntropyLoss
            .evaluate(&logits, Target::Labels(&[0, 1, 2, 3]))
            .expect("valid");
        for i in 0..4 {
            let s: f32 = out.grad.row_slice(i).expect("in range").iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_validation() {
        let logits = Tensor::zeros([2, 3]);
        assert!(CrossEntropyLoss
            .evaluate(&logits, Target::Labels(&[0]))
            .is_err());
        assert!(CrossEntropyLoss
            .evaluate(&logits, Target::Labels(&[0, 3]))
            .is_err());
        let dense = Tensor::zeros([2, 3]);
        assert!(CrossEntropyLoss
            .evaluate(&logits, Target::Values(&dense))
            .is_err());
        assert!(CrossEntropyLoss
            .evaluate(&Tensor::zeros([0, 3]), Target::Labels(&[]))
            .is_err());
    }

    #[test]
    fn mse_zero_for_exact_prediction() {
        let p = Tensor::rand_uniform([4, 2], -1.0, 1.0, 3);
        let out = MseLoss.evaluate(&p, Target::Values(&p)).expect("valid");
        assert_eq!(out.loss, 0.0);
        assert_eq!(out.grad.sum(), 0.0);
    }

    #[test]
    fn mse_grad_matches_finite_diff() {
        let p = Tensor::rand_uniform([2, 3], -1.0, 1.0, 4);
        let tv = Tensor::rand_uniform([2, 3], -1.0, 1.0, 5);
        let t = Target::Values(&tv);
        let out = MseLoss.evaluate(&p, t).expect("valid");
        let eps = 1e-3;
        for i in [0usize, 3, 5] {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let fp = MseLoss.evaluate(&pp, t).expect("valid").loss;
            let mut pm = p.clone();
            pm.data_mut()[i] -= eps;
            let fm = MseLoss.evaluate(&pm, t).expect("valid").loss;
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - out.grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn mse_validation() {
        assert!(MseLoss
            .evaluate(&Tensor::zeros([2, 2]), Target::Labels(&[0, 1]))
            .is_err());
        let wrong = Tensor::zeros([2, 3]);
        assert!(MseLoss
            .evaluate(&Tensor::zeros([2, 2]), Target::Values(&wrong))
            .is_err());
    }

    #[test]
    fn target_len() {
        let labels = vec![1usize, 2, 3];
        assert_eq!(Target::from(&labels).len(), 3);
        let dense = Tensor::zeros([5, 2]);
        assert_eq!(Target::from(&dense).len(), 5);
        assert!(!Target::from(&labels[..1]).is_empty());
    }
}
