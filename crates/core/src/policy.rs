//! Step ② — retraining-amount selection policies.
//!
//! The paper's contribution is the *resilience-driven* policy: read the
//! chip's fault rate off its fault map and interpolate the Step-①
//! resilience table. The state-of-the-art baseline (Zhang et al., VTS'18)
//! is *fixed-policy* retraining: every chip gets the same pre-specified
//! number of epochs.

use crate::error::{ReduceError, Result};
use crate::resilience::{ResilienceTable, Selection, Statistic};
use serde::{Deserialize, Serialize};

/// How many FAT epochs a chip receives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RetrainPolicy {
    /// The Reduce framework: resilience-driven selection using the given
    /// per-rate statistic ([`Statistic::Max`] is the paper's
    /// recommendation; [`Statistic::Mean`] is its undertraining
    /// comparison).
    Reduce(Statistic),
    /// Fixed-policy baseline: the same epoch budget for every chip.
    Fixed(usize),
}

impl RetrainPolicy {
    /// Short label used in reports (mirrors the paper's figure captions).
    pub fn label(&self) -> String {
        match self {
            RetrainPolicy::Reduce(Statistic::Max) => "Reduce (max)".to_string(),
            RetrainPolicy::Reduce(Statistic::Mean) => "Reduce (mean)".to_string(),
            RetrainPolicy::Reduce(Statistic::MeanPlusMargin(m)) => {
                format!("Reduce (mean+{m:.1})")
            }
            RetrainPolicy::Fixed(e) => format!("Fixed ({e} epochs)"),
        }
    }

    /// Whether this policy needs a resilience characterisation.
    pub fn needs_table(&self) -> bool {
        matches!(self, RetrainPolicy::Reduce(_))
    }

    /// Selects the epoch budget for a chip with the given fault rate.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::MissingCharacterization`] if a Reduce policy
    /// is used without a table, and propagates lookup errors.
    pub fn epochs_for_chip(
        &self,
        table: Option<&ResilienceTable>,
        fault_rate: f64,
    ) -> Result<Selection> {
        match self {
            RetrainPolicy::Fixed(e) => Ok(Selection {
                epochs: *e,
                clamped: false,
            }),
            RetrainPolicy::Reduce(stat) => {
                let table = table.ok_or_else(|| ReduceError::MissingCharacterization {
                    reason: format!("{} requires a resilience table", self.label()),
                })?;
                table.epochs_for(fault_rate, *stat)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::TableEntry;

    fn table() -> ResilienceTable {
        ResilienceTable::from_entries(
            vec![
                TableEntry {
                    rate: 0.0,
                    mean_epochs: 0.0,
                    max_epochs: 0,
                },
                TableEntry {
                    rate: 0.2,
                    mean_epochs: 4.0,
                    max_epochs: 6,
                },
            ],
            10,
        )
        .expect("non-empty")
    }

    #[test]
    fn fixed_ignores_rate_and_table() {
        let p = RetrainPolicy::Fixed(3);
        assert!(!p.needs_table());
        assert_eq!(p.epochs_for_chip(None, 0.0).expect("fixed").epochs, 3);
        assert_eq!(p.epochs_for_chip(None, 0.9).expect("fixed").epochs, 3);
    }

    #[test]
    fn reduce_uses_table() {
        let t = table();
        let max = RetrainPolicy::Reduce(Statistic::Max);
        assert_eq!(
            max.epochs_for_chip(Some(&t), 0.1).expect("covered").epochs,
            3
        );
        let mean = RetrainPolicy::Reduce(Statistic::Mean);
        assert_eq!(
            mean.epochs_for_chip(Some(&t), 0.1).expect("covered").epochs,
            2
        );
    }

    #[test]
    fn reduce_without_table_is_error() {
        let p = RetrainPolicy::Reduce(Statistic::Max);
        assert!(matches!(
            p.epochs_for_chip(None, 0.1),
            Err(ReduceError::MissingCharacterization { .. })
        ));
    }

    #[test]
    fn labels() {
        assert_eq!(RetrainPolicy::Fixed(5).label(), "Fixed (5 epochs)");
        assert_eq!(
            RetrainPolicy::Reduce(Statistic::Max).label(),
            "Reduce (max)"
        );
        assert_eq!(
            RetrainPolicy::Reduce(Statistic::Mean).label(),
            "Reduce (mean)"
        );
        assert!(RetrainPolicy::Reduce(Statistic::MeanPlusMargin(1.0))
            .label()
            .contains("mean+1.0"));
    }
}
