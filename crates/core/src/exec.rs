//! Shared deterministic executor for the framework's parallel grids.
//!
//! Step ① (the `(rate, repeat)` characterisation grid) and Step ③
//! (per-chip fleet retraining) are both indexed maps over independent,
//! individually seeded jobs. This module is the one executor both paths
//! share, with three guarantees the results depend on:
//!
//! * **Ordering** — [`parallel_map`] returns results in input order, so
//!   the output is byte-identical to a sequential run regardless of
//!   thread count or OS scheduling. Each job's determinism comes from its
//!   own seed; the executor only has to keep index `i`'s result in slot
//!   `i`.
//! * **Panic containment** — a panicking job (always a bug: the framework
//!   returns typed errors) is caught with [`std::panic::catch_unwind`]
//!   and surfaced as [`ReduceError::Internal`] instead of unwinding
//!   through the scope join and aborting the entire run.
//! * **Auto-sizing** — a thread count of `0` sizes the pool from
//!   [`std::thread::available_parallelism`]; any other value is used
//!   as-is (capped at the number of jobs).
//!
//! Error reporting is deterministic too: when several jobs fail, the
//! error of the lowest input index is the one returned.

use crate::error::{ReduceError, Result};
use crate::telemetry::{Event, NullObserver, Observer};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How a framework entry point executes: worker-thread count plus the
/// telemetry sink its events go to.
///
/// This is the single execution knob of the public API — every
/// previously split `foo` / `foo_parallel` pair is now one method taking
/// an `&ExecConfig`. `threads == 0` auto-sizes from the machine (see
/// [`resolve_workers`]); the default is a sequential run with telemetry
/// discarded.
///
/// # Examples
///
/// ```
/// use reduce_core::exec::ExecConfig;
///
/// let sequential = ExecConfig::default();
/// assert_eq!(sequential.threads, 1);
/// let auto = ExecConfig::auto();
/// assert_eq!(auto.threads, 0);
/// ```
#[derive(Clone)]
pub struct ExecConfig {
    /// Worker threads for parallel grids; `0` auto-sizes.
    pub threads: usize,
    observer: Arc<dyn Observer>,
}

impl ExecConfig {
    /// An execution config over `threads` workers (`0` = auto) with
    /// telemetry discarded.
    pub fn new(threads: usize) -> Self {
        ExecConfig {
            threads,
            observer: Arc::new(NullObserver),
        }
    }

    /// Auto-sized execution (`threads == 0`).
    pub fn auto() -> Self {
        Self::new(0)
    }

    /// Attaches a telemetry sink; events from every framework call made
    /// with this config are delivered to it.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = observer;
        self
    }

    /// The attached telemetry sink.
    pub fn observer(&self) -> &dyn Observer {
        self.observer.as_ref()
    }
}

impl Default for ExecConfig {
    /// Sequential execution (`threads == 1`), telemetry discarded.
    fn default() -> Self {
        Self::new(1)
    }
}

impl std::fmt::Debug for ExecConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecConfig")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// Resolves a caller-facing thread count to an actual worker count:
/// `0` auto-sizes from [`std::thread::available_parallelism`], anything
/// else is taken literally; the result is clamped to `[1, jobs]` so a
/// tiny grid never spawns idle workers.
pub fn resolve_workers(threads: usize, jobs: usize) -> usize {
    let requested = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    requested.clamp(1, jobs.max(1))
}

/// Applies `job` to every item of `items` over `threads` scoped workers
/// and returns the results **in input order**.
///
/// `threads == 0` auto-sizes the pool (see [`resolve_workers`]); one
/// worker (or one item) degenerates to an inline sequential loop with the
/// same panic containment, so sequential and parallel runs share one code
/// path and one behaviour.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing job;
/// [`ReduceError::Internal`] when a job panicked.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, job: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R> + Sync,
{
    let workers = resolve_workers(threads, items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_contained(&job, i, item))
            .collect();
    }
    // Work queue of item indices; slot `i` only ever receives job `i`'s
    // result, which is what makes the output order-independent of the
    // scheduling.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R>>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let (Some(item), Some(slot)) = (items.get(i), slots.get(i)) else {
                    break;
                };
                let out = run_contained(&job, i, item);
                // Jobs cannot panic (contained above), so the lock cannot
                // be poisoned by this loop; handle poisoning anyway — the
                // stored value is still the slot we are about to fill.
                match slot.lock() {
                    Ok(mut cell) => *cell = Some(out),
                    Err(poisoned) => *poisoned.into_inner() = Some(out),
                }
            });
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        let cell = match slot.into_inner() {
            Ok(cell) => cell,
            Err(poisoned) => poisoned.into_inner(),
        };
        out.push(cell.ok_or_else(|| ReduceError::Internal {
            invariant: "every job index is claimed by exactly one worker".to_string(),
        })??);
    }
    Ok(out)
}

/// [`parallel_map`] with telemetry: each job gets a private event buffer,
/// and after the fan-out completes every buffer is flushed to `observer`
/// **in input order** — so the observed event sequence is identical at
/// any thread count (the determinism contract of
/// [`crate::telemetry`]). On error no per-job events are flushed; the
/// observer only ever sees complete, successful fan-outs.
///
/// # Errors
///
/// Same as [`parallel_map`]: lowest-indexed job error, or
/// [`ReduceError::Internal`] for a panicking job.
pub fn parallel_map_traced<T, R, F>(
    items: &[T],
    threads: usize,
    observer: &dyn Observer,
    job: F,
) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &mut Vec<Event>) -> Result<R> + Sync,
{
    let traced = parallel_map(items, threads, |i, item| {
        let mut events = Vec::new();
        let out = job(i, item, &mut events)?;
        Ok((out, events))
    })?;
    let mut results = Vec::with_capacity(traced.len());
    for (out, events) in traced {
        for event in &events {
            observer.on_event(event);
        }
        results.push(out);
    }
    Ok(results)
}

/// Runs one job with panic containment: a panic becomes
/// [`ReduceError::Internal`] carrying the job index and panic message.
fn run_contained<T, R, F>(job: &F, index: usize, item: &T) -> Result<R>
where
    F: Fn(usize, &T) -> Result<R>,
{
    // AssertUnwindSafe: on panic the in-flight result is discarded whole
    // and its slot reports a typed error, so no partially mutated state
    // is ever observed across the unwind boundary.
    match std::panic::catch_unwind(AssertUnwindSafe(|| job(index, item))) {
        Ok(result) => result,
        Err(payload) => Err(ReduceError::Internal {
            invariant: format!(
                "worker jobs must not panic (job {index} panicked: {})",
                panic_message(payload.as_ref())
            ),
        }),
    }
}

/// Best-effort extraction of a human-readable panic message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1usize, 2, 3, 8] {
            let out = parallel_map(&items, threads, |i, &x| {
                // Make late indices cheap and early indices slow-ish so
                // completion order differs from input order.
                let spin = (64 - i) * 50;
                let mut acc = 0u64;
                for k in 0..spin {
                    acc = acc.wrapping_add(k as u64);
                }
                Ok((i, x * 2, acc.min(1)))
            })
            .expect("no job fails");
            assert_eq!(out.len(), items.len());
            for (i, (idx, doubled, _)) in out.iter().enumerate() {
                assert_eq!(*idx, i, "{threads} threads permuted the output");
                assert_eq!(*doubled, i * 2);
            }
        }
    }

    #[test]
    fn panic_becomes_internal_error() {
        let items = vec![0usize, 1, 2, 3];
        for threads in [1usize, 4] {
            let res: Result<Vec<usize>> = parallel_map(&items, threads, |_, &x| {
                if x == 2 {
                    panic!("boom at {x}");
                }
                Ok(x)
            });
            match res {
                Err(ReduceError::Internal { invariant }) => {
                    assert!(invariant.contains("panic"), "unexpected: {invariant}");
                    assert!(invariant.contains("boom"), "payload lost: {invariant}");
                }
                other => panic!("expected Internal error, got {other:?}"),
            }
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<usize> = (0..32).collect();
        let res: Result<Vec<usize>> = parallel_map(&items, 8, |i, &x| {
            if x >= 5 {
                Err(ReduceError::InvalidConfig {
                    what: format!("job {i}"),
                })
            } else {
                Ok(x)
            }
        });
        match res {
            Err(ReduceError::InvalidConfig { what }) => assert_eq!(what, "job 5"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn zero_threads_auto_sizes() {
        let items: Vec<usize> = (0..16).collect();
        let out = parallel_map(&items, 0, |_, &x| Ok(x + 1)).expect("no job fails");
        assert_eq!(out, (1..17).collect::<Vec<_>>());
        assert!(resolve_workers(0, 16) >= 1);
        assert_eq!(resolve_workers(0, 0), 1);
        assert_eq!(resolve_workers(5, 2), 2);
        assert_eq!(resolve_workers(3, 100), 3);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let items: Vec<usize> = Vec::new();
        let out = parallel_map(&items, 4, |_, &x| Ok(x)).expect("nothing to fail");
        assert!(out.is_empty());
    }

    /// Test sink recording the order events arrive in.
    #[derive(Default)]
    struct SeqRecorder(Mutex<Vec<Event>>);

    impl Observer for SeqRecorder {
        fn on_event(&self, event: &Event) {
            if let Ok(mut log) = self.0.lock() {
                log.push(event.clone());
            }
        }
    }

    fn tick(i: usize, epoch: usize) -> Event {
        Event::EpochCompleted {
            scope: crate::telemetry::EpochScope::Chip { chip_id: i },
            epoch,
            accuracy: 0.5,
        }
    }

    #[test]
    fn traced_events_flush_in_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..16).collect();
        let mut sequences = Vec::new();
        for threads in [1usize, 2, 8] {
            let rec = SeqRecorder::default();
            let out = parallel_map_traced(&items, threads, &rec, |i, &x, events| {
                events.push(tick(i, 1));
                events.push(tick(i, 2));
                Ok(x)
            })
            .expect("no job fails");
            assert_eq!(out, items);
            sequences.push(rec.0.into_inner().expect("no poisoning"));
        }
        let (first, rest) = sequences.split_first().expect("three runs");
        assert_eq!(first.len(), items.len() * 2);
        for seq in rest {
            assert_eq!(seq, first, "event order varied with thread count");
        }
        // And input order: job i's events precede job i+1's.
        assert_eq!(first.first(), Some(&tick(0, 1)));
        assert_eq!(first.last(), Some(&tick(15, 2)));
    }

    #[test]
    fn traced_failure_flushes_no_events() {
        let items = vec![0usize, 1, 2];
        let rec = SeqRecorder::default();
        let res: Result<Vec<usize>> = parallel_map_traced(&items, 2, &rec, |i, &x, events| {
            events.push(tick(i, 1));
            if x == 1 {
                return Err(ReduceError::InvalidConfig {
                    what: "bad job".to_string(),
                });
            }
            Ok(x)
        });
        assert!(res.is_err());
        assert!(rec.0.into_inner().expect("no poisoning").is_empty());
    }

    #[test]
    fn exec_config_defaults_and_builder() {
        let cfg = ExecConfig::default();
        assert_eq!(cfg.threads, 1);
        let cfg = ExecConfig::new(4).with_observer(Arc::new(SeqRecorder::default()));
        assert_eq!(cfg.threads, 4);
        cfg.observer().on_event(&tick(0, 1));
        assert!(format!("{cfg:?}").contains("threads"));
    }
}
