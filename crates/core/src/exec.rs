//! Shared deterministic executor for the framework's parallel grids.
//!
//! Step ① (the `(rate, repeat)` characterisation grid) and Step ③
//! (per-chip fleet retraining) are both indexed maps over independent,
//! individually seeded jobs. This module is the one executor both paths
//! share, with three guarantees the results depend on:
//!
//! * **Ordering** — [`parallel_map`] returns results in input order, so
//!   the output is byte-identical to a sequential run regardless of
//!   thread count or OS scheduling. Each job's determinism comes from its
//!   own seed; the executor only has to keep index `i`'s result in slot
//!   `i`.
//! * **Panic containment** — a panicking job (always a bug: the framework
//!   returns typed errors) is caught with [`std::panic::catch_unwind`]
//!   and surfaced as [`ReduceError::Internal`] instead of unwinding
//!   through the scope join and aborting the entire run.
//! * **Auto-sizing** — a thread count of `0` sizes the pool from
//!   [`std::thread::available_parallelism`]; any other value is used
//!   as-is (capped at the number of jobs).
//!
//! Error reporting is deterministic too: when several jobs fail, the
//! error of the lowest input index is the one returned.
//!
//! # Failure containment
//!
//! [`parallel_map_resilient`] layers job-level fault tolerance on top:
//! a job that returns `Err` or panics is retried up to
//! [`ExecConfig::retry_budget`] times, each attempt reseeded with the
//! pure [`retry_seed`] function (no wall clock, no global state — the
//! retry schedule depends only on the job id and attempt number, so it
//! is identical at any thread count and across resumed runs). A job that
//! exhausts the budget is **quarantined**, not fatal: the fan-out
//! completes and the caller receives a typed [`JobStatus::Quarantined`]
//! outcome alongside its siblings' results. Only configuration-class
//! errors ([`ReduceError::InvalidConfig`],
//! [`ReduceError::MissingCharacterization`]) abort the whole map —
//! retrying a rejected configuration can never succeed.
//!
//! A deterministic [`ChaosPolicy`] can be injected through
//! [`ExecConfig::with_chaos`] to force chosen `(job, attempt)` pairs to
//! fail or panic — the test harness the containment guarantees are
//! proved with.

use crate::error::{ReduceError, Result};
use crate::telemetry::{Event, NullObserver, Observer, Stage};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How a framework entry point executes: worker-thread count plus the
/// telemetry sink its events go to.
///
/// This is the single execution knob of the public API — every
/// previously split `foo` / `foo_parallel` pair is now one method taking
/// an `&ExecConfig`. `threads == 0` auto-sizes from the machine (see
/// [`resolve_workers`]); the default is a sequential run with telemetry
/// discarded.
///
/// # Examples
///
/// ```
/// use reduce_core::exec::ExecConfig;
///
/// let sequential = ExecConfig::default();
/// assert_eq!(sequential.threads, 1);
/// let auto = ExecConfig::auto();
/// assert_eq!(auto.threads, 0);
/// ```
#[derive(Clone)]
pub struct ExecConfig {
    /// Worker threads for parallel grids; `0` auto-sizes.
    pub threads: usize,
    observer: Arc<dyn Observer>,
    retry_budget: u32,
    chaos: Option<Arc<ChaosPolicy>>,
}

impl ExecConfig {
    /// An execution config over `threads` workers (`0` = auto) with
    /// telemetry discarded, no retries, and no chaos injection.
    pub fn new(threads: usize) -> Self {
        ExecConfig {
            threads,
            observer: Arc::new(NullObserver),
            retry_budget: 0,
            chaos: None,
        }
    }

    /// Auto-sized execution (`threads == 0`).
    pub fn auto() -> Self {
        Self::new(0)
    }

    /// Attaches a telemetry sink; events from every framework call made
    /// with this config are delivered to it.
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = observer;
        self
    }

    /// Sets how many times [`parallel_map_resilient`] retries a failed
    /// job before quarantining it (`0` = a single attempt, no retries).
    #[must_use]
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Injects a deterministic fault-injection policy: chosen
    /// `(job, attempt)` pairs fail or panic before the job body runs.
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosPolicy) -> Self {
        self.chaos = Some(Arc::new(chaos));
        self
    }

    /// The attached telemetry sink.
    pub fn observer(&self) -> &dyn Observer {
        self.observer.as_ref()
    }

    /// Retries per job before quarantine (`0` = single attempt).
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// The injected chaos policy, if any.
    pub fn chaos(&self) -> Option<&ChaosPolicy> {
        self.chaos.as_deref()
    }
}

impl Default for ExecConfig {
    /// Sequential execution (`threads == 1`), telemetry discarded.
    fn default() -> Self {
        Self::new(1)
    }
}

impl std::fmt::Debug for ExecConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecConfig")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// Resolves a caller-facing thread count to an actual worker count:
/// `0` auto-sizes from [`std::thread::available_parallelism`], anything
/// else is taken literally; the result is clamped to `[1, jobs]` so a
/// tiny grid never spawns idle workers.
pub fn resolve_workers(threads: usize, jobs: usize) -> usize {
    let requested = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    requested.clamp(1, jobs.max(1))
}

/// Applies `job` to every item of `items` over `threads` scoped workers
/// and returns the results **in input order**.
///
/// `threads == 0` auto-sizes the pool (see [`resolve_workers`]); one
/// worker (or one item) degenerates to an inline sequential loop with the
/// same panic containment, so sequential and parallel runs share one code
/// path and one behaviour.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing job;
/// [`ReduceError::Internal`] when a job panicked.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, job: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R> + Sync,
{
    let workers = resolve_workers(threads, items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_contained(&job, i, item))
            .collect();
    }
    // Work queue of item indices; slot `i` only ever receives job `i`'s
    // result, which is what makes the output order-independent of the
    // scheduling.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R>>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let (Some(item), Some(slot)) = (items.get(i), slots.get(i)) else {
                    break;
                };
                let out = run_contained(&job, i, item);
                // Jobs cannot panic (contained above), so the lock cannot
                // be poisoned by this loop; handle poisoning anyway — the
                // stored value is still the slot we are about to fill.
                match slot.lock() {
                    Ok(mut cell) => *cell = Some(out),
                    Err(poisoned) => *poisoned.into_inner() = Some(out),
                }
            });
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        let cell = match slot.into_inner() {
            Ok(cell) => cell,
            Err(poisoned) => poisoned.into_inner(),
        };
        out.push(cell.ok_or_else(|| ReduceError::Internal {
            invariant: "every job index is claimed by exactly one worker".to_string(),
        })??);
    }
    Ok(out)
}

/// [`parallel_map`] with telemetry: each job gets a private event buffer,
/// and after the fan-out completes every buffer is flushed to `observer`
/// **in input order** — so the observed event sequence is identical at
/// any thread count (the determinism contract of
/// [`crate::telemetry`]). On error no per-job events are flushed; the
/// observer only ever sees complete, successful fan-outs.
///
/// # Errors
///
/// Same as [`parallel_map`]: lowest-indexed job error, or
/// [`ReduceError::Internal`] for a panicking job.
pub fn parallel_map_traced<T, R, F>(
    items: &[T],
    threads: usize,
    observer: &dyn Observer,
    job: F,
) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &mut Vec<Event>) -> Result<R> + Sync,
{
    let traced = parallel_map(items, threads, |i, item| {
        let mut events = Vec::new();
        let out = job(i, item, &mut events)?;
        Ok((out, events))
    })?;
    let mut results = Vec::with_capacity(traced.len());
    for (out, events) in traced {
        for event in &events {
            observer.on_event(event);
        }
        results.push(out);
    }
    Ok(results)
}

/// The retry-seed salt for `(job, attempt)`: `0` for the first attempt
/// (so a run without failures is bit-identical to one executed without
/// the retry layer), and a well-mixed splitmix64-style hash for retries.
///
/// This is a **pure** function — no wall clock, no global state — which
/// is what makes the retry schedule reproducible at any thread count and
/// across interrupted/resumed runs.
pub fn retry_seed(job: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        return 0;
    }
    let mut z = job
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // A zero salt means "first attempt"; keep retries distinguishable.
    if z == 0 {
        1
    } else {
        z
    }
}

/// What a [`ChaosPolicy`] does to one `(job, attempt)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// Run the job body normally.
    Pass,
    /// Fail the attempt with a typed error before the job body runs.
    Fail,
    /// Panic before the job body runs (exercises panic containment).
    Panic,
}

#[derive(Debug, Clone)]
enum ChaosMode {
    /// Explicit `(job, attempt)` pairs.
    Pairs(Vec<(u64, u32, ChaosOutcome)>),
    /// Every attempt of the listed jobs (guarantees quarantine).
    Jobs(Vec<(u64, ChaosOutcome)>),
    /// Seeded random failures at `fail_rate` per attempt.
    Seeded { seed: u64, fail_rate: f64 },
}

/// A deterministic fault-injection policy for
/// [`parallel_map_resilient`]: decides, purely from the job id and
/// attempt number, whether an attempt runs, fails, or panics.
///
/// Because [`ChaosPolicy::decide`] is a pure function, injected chaos is
/// reproducible: the same policy produces the same failures at any
/// thread count, and an interrupted run resumed later sees the same
/// outcomes for the jobs it re-executes.
#[derive(Debug, Clone)]
pub struct ChaosPolicy {
    mode: ChaosMode,
}

impl ChaosPolicy {
    /// Fails exactly the listed `(job, attempt)` pairs.
    pub fn fail_at(pairs: &[(u64, u32)]) -> Self {
        ChaosPolicy {
            mode: ChaosMode::Pairs(
                pairs
                    .iter()
                    .map(|&(j, a)| (j, a, ChaosOutcome::Fail))
                    .collect(),
            ),
        }
    }

    /// Panics on exactly the listed `(job, attempt)` pairs.
    pub fn panic_at(pairs: &[(u64, u32)]) -> Self {
        ChaosPolicy {
            mode: ChaosMode::Pairs(
                pairs
                    .iter()
                    .map(|&(j, a)| (j, a, ChaosOutcome::Panic))
                    .collect(),
            ),
        }
    }

    /// Fails **every** attempt of the listed jobs — the simplest way to
    /// guarantee a quarantine regardless of the retry budget.
    pub fn fail_jobs(jobs: &[u64]) -> Self {
        ChaosPolicy {
            mode: ChaosMode::Jobs(jobs.iter().map(|&j| (j, ChaosOutcome::Fail)).collect()),
        }
    }

    /// Panics on every attempt of the listed jobs.
    pub fn panic_jobs(jobs: &[u64]) -> Self {
        ChaosPolicy {
            mode: ChaosMode::Jobs(jobs.iter().map(|&j| (j, ChaosOutcome::Panic)).collect()),
        }
    }

    /// Fails a seeded pseudo-random `fail_rate` fraction of attempts
    /// (clamped to `[0, 1]`). Each `(job, attempt)` pair is decided
    /// independently, so retries of an unlucky job may still succeed.
    pub fn seeded(seed: u64, fail_rate: f64) -> Self {
        ChaosPolicy {
            mode: ChaosMode::Seeded {
                seed,
                fail_rate: fail_rate.clamp(0.0, 1.0),
            },
        }
    }

    /// The outcome for `(job, attempt)` — a pure function of the policy
    /// and its arguments.
    pub fn decide(&self, job: u64, attempt: u32) -> ChaosOutcome {
        match &self.mode {
            ChaosMode::Pairs(pairs) => pairs
                .iter()
                .find(|&&(j, a, _)| j == job && a == attempt)
                .map(|&(_, _, out)| out)
                .unwrap_or(ChaosOutcome::Pass),
            ChaosMode::Jobs(jobs) => jobs
                .iter()
                .find(|&&(j, _)| j == job)
                .map(|&(_, out)| out)
                .unwrap_or(ChaosOutcome::Pass),
            ChaosMode::Seeded { seed, fail_rate } => {
                // Map a splitmix-style hash of (seed, job, attempt) onto
                // [0, 1) through the top 53 bits (exact in f64).
                let mut z = seed
                    .wrapping_add(job.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(u64::from(attempt).wrapping_mul(0xD134_2543_DE82_EF95));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
                if unit < *fail_rate {
                    ChaosOutcome::Fail
                } else {
                    ChaosOutcome::Pass
                }
            }
        }
    }
}

/// The terminal status of one resilient job: a result, or a quarantine
/// record carrying the attempt count and final error.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus<R> {
    /// The job produced a result (possibly after retries).
    Ok(R),
    /// Every attempt failed; the job is contained, siblings unaffected.
    Quarantined {
        /// Attempts made (`retry_budget + 1`).
        attempts: u32,
        /// The error of the final attempt, rendered.
        error: String,
    },
}

impl<R> JobStatus<R> {
    /// The successful result, if any.
    pub fn as_ok(&self) -> Option<&R> {
        match self {
            JobStatus::Ok(r) => Some(r),
            JobStatus::Quarantined { .. } => None,
        }
    }
}

/// One job's sealed outcome from [`parallel_map_resilient`]: its stable
/// id, terminal status, and the telemetry events it buffered (including
/// the [`Event::JobFailed`] / [`Event::RetryScheduled`] /
/// [`Event::DivergenceRecovered`] records of its retry history).
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport<R> {
    /// The caller-assigned stable job id.
    pub job: u64,
    /// Terminal status.
    pub status: JobStatus<R>,
    /// Buffered events, in deterministic per-job order.
    pub events: Vec<Event>,
}

/// Whether an error class can never be fixed by retrying: rejected
/// configurations and missing characterisations are deterministic
/// precondition failures, so they abort the fan-out instead of burning
/// the retry budget and masquerading as quarantines.
fn is_fatal(e: &ReduceError) -> bool {
    matches!(
        e,
        ReduceError::InvalidConfig { .. } | ReduceError::MissingCharacterization { .. }
    )
}

/// [`parallel_map`] with job-level failure containment.
///
/// Each item carries a caller-assigned stable `u64` job id (the first
/// tuple element) — **not** its position in `items` — so retry seeds and
/// chaos decisions stay attached to the same logical job when a resumed
/// run fans out only the missing subset of a grid.
///
/// Per attempt, the job receives a *seed salt* ([`retry_seed`]): `0` on
/// the first attempt, a fresh deterministic value per retry, to be XORed
/// into whatever base seed the job derives its randomness from. A failed
/// attempt's buffered events are discarded (as if the attempt never
/// ran); the retry layer records [`Event::JobFailed`] and, if budget
/// remains, [`Event::RetryScheduled`] in their place. A success after a
/// divergence failure additionally records
/// [`Event::DivergenceRecovered`].
///
/// `on_sealed` runs on the worker thread as soon as a job's outcome is
/// final — the checkpoint-journal hook — and may fail, which aborts the
/// fan-out.
///
/// # Errors
///
/// Configuration-class errors ([`is_fatal`]) from the lowest-indexed
/// failing job, or an `on_sealed` error; never a quarantined job.
pub fn parallel_map_resilient<T, R, F, S>(
    items: &[(u64, T)],
    exec: &ExecConfig,
    stage: Stage,
    job: F,
    on_sealed: S,
) -> Result<Vec<JobReport<R>>>
where
    T: Sync,
    R: Send,
    F: Fn(u64, &T, u64, &mut Vec<Event>) -> Result<R> + Sync,
    S: Fn(&JobReport<R>) -> Result<()> + Sync,
{
    parallel_map(items, exec.threads, |_, (id, item)| {
        let report = run_job_resilient(*id, item, exec, stage, &job)?;
        on_sealed(&report)?;
        Ok(report)
    })
}

/// The per-job retry loop behind [`parallel_map_resilient`], exposed for
/// schedulers that batch several logical jobs inside one executor job
/// (e.g. the fleet epoch-budget batches, where a batch of chips shares a
/// workspace but each chip keeps its own id-keyed retry/chaos schedule).
///
/// Semantics are identical to one item of [`parallel_map_resilient`]:
/// per-attempt salts come from [`retry_seed`], chaos is consulted per
/// `(id, attempt)`, failed attempts' events are replaced by the typed
/// retry records, and only fatal errors propagate.
///
/// # Errors
///
/// Configuration-class errors ([`is_fatal`]) only; exhausted retries
/// surface as [`JobStatus::Quarantined`], never as `Err`.
pub fn run_job_resilient<T, R, F>(
    id: u64,
    item: &T,
    exec: &ExecConfig,
    stage: Stage,
    job: &F,
) -> Result<JobReport<R>>
where
    F: Fn(u64, &T, u64, &mut Vec<Event>) -> Result<R>,
{
    let budget = exec.retry_budget();
    let mut events: Vec<Event> = Vec::new();
    let mut last_error = String::new();
    let mut saw_divergence = false;
    for attempt in 0..=budget {
        let salt = retry_seed(id, attempt);
        let mut attempt_events = Vec::new();
        let decision = exec
            .chaos()
            .map_or(ChaosOutcome::Pass, |c| c.decide(id, attempt));
        let result = match decision {
            ChaosOutcome::Fail => Err(ReduceError::Internal {
                invariant: format!("chaos injection: forced failure (job {id}, attempt {attempt})"),
            }),
            ChaosOutcome::Panic => contain_unwind(id, || {
                // xtask:allow(panic): chaos harness deliberately injects a contained panic
                panic!("chaos injection: forced panic (job {id}, attempt {attempt})")
            }),
            ChaosOutcome::Pass => contain_unwind(id, || job(id, item, salt, &mut attempt_events)),
        };
        match result {
            Ok(out) => {
                events.extend(attempt_events);
                if saw_divergence {
                    events.push(Event::DivergenceRecovered {
                        stage,
                        job: id,
                        attempts: attempt,
                    });
                }
                return Ok(JobReport {
                    job: id,
                    status: JobStatus::Ok(out),
                    events,
                });
            }
            Err(e) if is_fatal(&e) => return Err(e),
            Err(e) => {
                // The failed attempt's events are discarded whole — the
                // event stream only ever shows complete attempts plus
                // the typed retry records below.
                saw_divergence = matches!(e, ReduceError::Divergence { .. });
                last_error = e.to_string();
                events.push(Event::JobFailed {
                    stage,
                    job: id,
                    attempt,
                    error: last_error.clone(),
                });
                if attempt < budget {
                    events.push(Event::RetryScheduled {
                        stage,
                        job: id,
                        attempt: attempt + 1,
                        seed: retry_seed(id, attempt + 1),
                    });
                }
            }
        }
    }
    Ok(JobReport {
        job: id,
        status: JobStatus::Quarantined {
            attempts: budget + 1,
            error: last_error,
        },
        events,
    })
}

/// Closure variant of [`run_contained`]: panics become typed errors.
fn contain_unwind<R>(id: u64, f: impl FnOnce() -> Result<R>) -> Result<R> {
    match std::panic::catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(ReduceError::Internal {
            invariant: format!(
                "worker jobs must not panic (job {id} panicked: {})",
                panic_message(payload.as_ref())
            ),
        }),
    }
}

/// Runs one job with panic containment: a panic becomes
/// [`ReduceError::Internal`] carrying the job index and panic message.
fn run_contained<T, R, F>(job: &F, index: usize, item: &T) -> Result<R>
where
    F: Fn(usize, &T) -> Result<R>,
{
    // AssertUnwindSafe: on panic the in-flight result is discarded whole
    // and its slot reports a typed error, so no partially mutated state
    // is ever observed across the unwind boundary.
    match std::panic::catch_unwind(AssertUnwindSafe(|| job(index, item))) {
        Ok(result) => result,
        Err(payload) => Err(ReduceError::Internal {
            invariant: format!(
                "worker jobs must not panic (job {index} panicked: {})",
                panic_message(payload.as_ref())
            ),
        }),
    }
}

/// Best-effort extraction of a human-readable panic message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1usize, 2, 3, 8] {
            let out = parallel_map(&items, threads, |i, &x| {
                // Make late indices cheap and early indices slow-ish so
                // completion order differs from input order.
                let spin = (64 - i) * 50;
                let mut acc = 0u64;
                for k in 0..spin {
                    acc = acc.wrapping_add(k as u64);
                }
                Ok((i, x * 2, acc.min(1)))
            })
            .expect("no job fails");
            assert_eq!(out.len(), items.len());
            for (i, (idx, doubled, _)) in out.iter().enumerate() {
                assert_eq!(*idx, i, "{threads} threads permuted the output");
                assert_eq!(*doubled, i * 2);
            }
        }
    }

    #[test]
    fn panic_becomes_internal_error() {
        let items = vec![0usize, 1, 2, 3];
        for threads in [1usize, 4] {
            let res: Result<Vec<usize>> = parallel_map(&items, threads, |_, &x| {
                if x == 2 {
                    panic!("boom at {x}");
                }
                Ok(x)
            });
            match res {
                Err(ReduceError::Internal { invariant }) => {
                    assert!(invariant.contains("panic"), "unexpected: {invariant}");
                    assert!(invariant.contains("boom"), "payload lost: {invariant}");
                }
                other => panic!("expected Internal error, got {other:?}"),
            }
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<usize> = (0..32).collect();
        let res: Result<Vec<usize>> = parallel_map(&items, 8, |i, &x| {
            if x >= 5 {
                Err(ReduceError::InvalidConfig {
                    what: format!("job {i}"),
                })
            } else {
                Ok(x)
            }
        });
        match res {
            Err(ReduceError::InvalidConfig { what }) => assert_eq!(what, "job 5"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn zero_threads_auto_sizes() {
        let items: Vec<usize> = (0..16).collect();
        let out = parallel_map(&items, 0, |_, &x| Ok(x + 1)).expect("no job fails");
        assert_eq!(out, (1..17).collect::<Vec<_>>());
        assert!(resolve_workers(0, 16) >= 1);
        assert_eq!(resolve_workers(0, 0), 1);
        assert_eq!(resolve_workers(5, 2), 2);
        assert_eq!(resolve_workers(3, 100), 3);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let items: Vec<usize> = Vec::new();
        let out = parallel_map(&items, 4, |_, &x| Ok(x)).expect("nothing to fail");
        assert!(out.is_empty());
    }

    /// Test sink recording the order events arrive in.
    #[derive(Default)]
    struct SeqRecorder(Mutex<Vec<Event>>);

    impl Observer for SeqRecorder {
        fn on_event(&self, event: &Event) {
            if let Ok(mut log) = self.0.lock() {
                log.push(event.clone());
            }
        }
    }

    fn tick(i: usize, epoch: usize) -> Event {
        Event::EpochCompleted {
            scope: crate::telemetry::EpochScope::Chip { chip_id: i },
            epoch,
            accuracy: 0.5,
        }
    }

    #[test]
    fn traced_events_flush_in_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..16).collect();
        let mut sequences = Vec::new();
        for threads in [1usize, 2, 8] {
            let rec = SeqRecorder::default();
            let out = parallel_map_traced(&items, threads, &rec, |i, &x, events| {
                events.push(tick(i, 1));
                events.push(tick(i, 2));
                Ok(x)
            })
            .expect("no job fails");
            assert_eq!(out, items);
            sequences.push(rec.0.into_inner().expect("no poisoning"));
        }
        let (first, rest) = sequences.split_first().expect("three runs");
        assert_eq!(first.len(), items.len() * 2);
        for seq in rest {
            assert_eq!(seq, first, "event order varied with thread count");
        }
        // And input order: job i's events precede job i+1's.
        assert_eq!(first.first(), Some(&tick(0, 1)));
        assert_eq!(first.last(), Some(&tick(15, 2)));
    }

    #[test]
    fn traced_failure_flushes_no_events() {
        let items = vec![0usize, 1, 2];
        let rec = SeqRecorder::default();
        let res: Result<Vec<usize>> = parallel_map_traced(&items, 2, &rec, |i, &x, events| {
            events.push(tick(i, 1));
            if x == 1 {
                return Err(ReduceError::InvalidConfig {
                    what: "bad job".to_string(),
                });
            }
            Ok(x)
        });
        assert!(res.is_err());
        assert!(rec.0.into_inner().expect("no poisoning").is_empty());
    }

    #[test]
    fn exec_config_defaults_and_builder() {
        let cfg = ExecConfig::default();
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.retry_budget(), 0);
        assert!(cfg.chaos().is_none());
        let cfg = ExecConfig::new(4)
            .with_observer(Arc::new(SeqRecorder::default()))
            .with_retry_budget(3)
            .with_chaos(ChaosPolicy::fail_jobs(&[9]));
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.retry_budget(), 3);
        assert!(cfg.chaos().is_some());
        cfg.observer().on_event(&tick(0, 1));
        assert!(format!("{cfg:?}").contains("threads"));
    }

    #[test]
    fn retry_seed_is_pure_and_salts_only_retries() {
        for job in [0u64, 1, 17, u64::MAX] {
            assert_eq!(retry_seed(job, 0), 0, "first attempt must not be salted");
            for attempt in 1..5u32 {
                let salt = retry_seed(job, attempt);
                assert_ne!(salt, 0, "retry salts must be non-zero");
                assert_eq!(salt, retry_seed(job, attempt), "must be pure");
            }
        }
        assert_ne!(retry_seed(3, 1), retry_seed(3, 2));
        assert_ne!(retry_seed(3, 1), retry_seed(4, 1));
    }

    #[test]
    fn chaos_policy_is_deterministic() {
        let pairs = ChaosPolicy::fail_at(&[(2, 0)]);
        assert_eq!(pairs.decide(2, 0), ChaosOutcome::Fail);
        assert_eq!(pairs.decide(2, 1), ChaosOutcome::Pass);
        assert_eq!(pairs.decide(1, 0), ChaosOutcome::Pass);
        let panics = ChaosPolicy::panic_at(&[(0, 1)]);
        assert_eq!(panics.decide(0, 1), ChaosOutcome::Panic);
        let jobs = ChaosPolicy::fail_jobs(&[5]);
        for attempt in 0..4 {
            assert_eq!(jobs.decide(5, attempt), ChaosOutcome::Fail);
            assert_eq!(jobs.decide(6, attempt), ChaosOutcome::Pass);
        }
        let seeded = ChaosPolicy::seeded(42, 0.5);
        let first: Vec<ChaosOutcome> = (0..64).map(|j| seeded.decide(j, 0)).collect();
        let again: Vec<ChaosOutcome> = (0..64).map(|j| seeded.decide(j, 0)).collect();
        assert_eq!(first, again, "seeded chaos must be pure");
        let failures = first.iter().filter(|&&o| o == ChaosOutcome::Fail).count();
        assert!(failures > 0, "rate 0.5 over 64 jobs should fail some");
        assert!(failures < 64, "rate 0.5 over 64 jobs should pass some");
        assert!((0..64).all(|j| ChaosPolicy::seeded(7, 0.0).decide(j, 0) == ChaosOutcome::Pass));
        assert!((0..64).all(|j| ChaosPolicy::seeded(7, 1.0).decide(j, 0) == ChaosOutcome::Fail));
    }

    /// Runs a resilient map over `n` synthetic jobs; job bodies succeed
    /// unless chaos interferes, and report the salt they were given.
    fn resilient_run(n: u64, exec: &ExecConfig) -> Vec<JobReport<(u64, u64)>> {
        let items: Vec<(u64, u64)> = (0..n).map(|i| (i, i * 10)).collect();
        parallel_map_resilient(
            &items,
            exec,
            Stage::Characterize,
            |id, &payload, salt, events| {
                events.push(tick(id as usize, 1));
                Ok((payload, salt))
            },
            |_| Ok(()),
        )
        .expect("no fatal errors")
    }

    #[test]
    fn resilient_map_without_chaos_matches_plain_map() {
        let reports = resilient_run(8, &ExecConfig::new(4).with_retry_budget(2));
        assert_eq!(reports.len(), 8);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.job, i as u64);
            // No failures -> first attempt, zero salt, one buffered tick.
            assert_eq!(report.status, JobStatus::Ok((i as u64 * 10, 0)));
            assert_eq!(report.events, vec![tick(i, 1)]);
        }
    }

    #[test]
    fn quarantine_is_contained_and_thread_invariant() {
        let chaos = ChaosPolicy::fail_jobs(&[1, 5]);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            let exec = ExecConfig::new(threads)
                .with_retry_budget(1)
                .with_chaos(chaos.clone());
            runs.push(resilient_run(8, &exec));
        }
        let (first, rest) = runs.split_first().expect("three runs");
        for other in rest {
            assert_eq!(other, first, "reports varied with thread count");
        }
        for (i, report) in first.iter().enumerate() {
            if i == 1 || i == 5 {
                match &report.status {
                    JobStatus::Quarantined { attempts, error } => {
                        assert_eq!(*attempts, 2, "budget 1 = two attempts");
                        assert!(error.contains("chaos injection"), "cause kept: {error}");
                    }
                    other => panic!("job {i} should be quarantined, got {other:?}"),
                }
                // Retry history: failed attempt, scheduled retry, failed again.
                assert_eq!(report.events.len(), 3);
                assert!(matches!(
                    report.events[0],
                    Event::JobFailed { attempt: 0, .. }
                ));
                assert!(matches!(
                    report.events[1],
                    Event::RetryScheduled { attempt: 1, seed, .. } if seed == retry_seed(i as u64, 1)
                ));
                assert!(matches!(
                    report.events[2],
                    Event::JobFailed { attempt: 1, .. }
                ));
            } else {
                // Siblings are untouched: same result and events as a
                // chaos-free run.
                assert_eq!(report.status, JobStatus::Ok((i as u64 * 10, 0)));
                assert_eq!(report.events, vec![tick(i, 1)]);
            }
        }
    }

    #[test]
    fn retry_recovers_with_a_fresh_salt() {
        let exec = ExecConfig::new(2)
            .with_retry_budget(2)
            .with_chaos(ChaosPolicy::fail_at(&[(3, 0), (3, 1)]));
        let reports = resilient_run(6, &exec);
        match &reports[3].status {
            JobStatus::Ok((payload, salt)) => {
                assert_eq!(*payload, 30);
                assert_eq!(*salt, retry_seed(3, 2), "third attempt's salt");
            }
            other => panic!("job 3 should recover, got {other:?}"),
        }
        // Two failures, two scheduled retries, then the successful
        // attempt's own events.
        assert_eq!(reports[3].events.len(), 5);
        assert_eq!(reports[3].events[4], tick(3, 1));
    }

    #[test]
    fn injected_panics_are_quarantined_not_fatal() {
        let exec = ExecConfig::new(4).with_chaos(ChaosPolicy::panic_jobs(&[2]));
        let reports = resilient_run(4, &exec);
        match &reports[2].status {
            JobStatus::Quarantined { attempts, error } => {
                assert_eq!(*attempts, 1);
                assert!(error.contains("panic"), "panic cause kept: {error}");
            }
            other => panic!("job 2 should be quarantined, got {other:?}"),
        }
        assert!(matches!(reports[0].status, JobStatus::Ok(_)));
        assert!(matches!(reports[3].status, JobStatus::Ok(_)));
    }

    #[test]
    fn job_panics_are_quarantined_too() {
        let items: Vec<(u64, u64)> = (0..3).map(|i| (i, i)).collect();
        let exec = ExecConfig::new(2);
        let reports = parallel_map_resilient(
            &items,
            &exec,
            Stage::Deploy,
            |id, _, _, _events| {
                if id == 1 {
                    panic!("boom in the job body");
                }
                Ok(id)
            },
            |_| Ok(()),
        )
        .expect("panic is contained, not fatal");
        assert!(
            matches!(&reports[1].status, JobStatus::Quarantined { error, .. } if error.contains("boom"))
        );
    }

    #[test]
    fn divergence_recovery_emits_typed_event() {
        let items: Vec<(u64, u64)> = (0..4).map(|i| (i, i)).collect();
        let exec = ExecConfig::new(2).with_retry_budget(1);
        let reports = parallel_map_resilient(
            &items,
            &exec,
            Stage::Characterize,
            |id, _, salt, _events| {
                if id == 2 && salt == 0 {
                    // First attempt diverges; the reseeded retry recovers.
                    return Err(ReduceError::Divergence {
                        what: "accuracy became NaN at epoch 1".to_string(),
                    });
                }
                Ok(id)
            },
            |_| Ok(()),
        )
        .expect("divergence is retryable");
        assert_eq!(reports[2].status, JobStatus::Ok(2));
        assert!(
            matches!(
                reports[2].events.last(),
                Some(Event::DivergenceRecovered {
                    job: 2,
                    attempts: 1,
                    ..
                })
            ),
            "events were {:?}",
            reports[2].events
        );
    }

    #[test]
    fn fatal_errors_abort_instead_of_quarantining() {
        let items: Vec<(u64, u64)> = (0..4).map(|i| (i, i)).collect();
        let exec = ExecConfig::new(2).with_retry_budget(5);
        let res = parallel_map_resilient(
            &items,
            &exec,
            Stage::Deploy,
            |id, _, _, _| {
                if id == 1 {
                    return Err(ReduceError::MissingCharacterization {
                        reason: "no table".to_string(),
                    });
                }
                Ok(id)
            },
            |_: &JobReport<u64>| Ok(()),
        );
        assert!(
            matches!(res, Err(ReduceError::MissingCharacterization { .. })),
            "precondition failures must not burn the retry budget"
        );
    }

    #[test]
    fn on_sealed_sees_every_outcome_and_may_abort() {
        let items: Vec<(u64, u64)> = (0..6).map(|i| (i, i)).collect();
        let exec = ExecConfig::new(3).with_chaos(ChaosPolicy::fail_jobs(&[4]));
        let sealed = Mutex::new(Vec::new());
        let reports = parallel_map_resilient(
            &items,
            &exec,
            Stage::Characterize,
            |id, _, _, _| Ok(id),
            |report| {
                if let Ok(mut log) = sealed.lock() {
                    log.push(report.job);
                }
                Ok(())
            },
        )
        .expect("quarantine is not fatal");
        let mut seen = sealed.into_inner().expect("no poisoning");
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert!(matches!(reports[4].status, JobStatus::Quarantined { .. }));
        let res = parallel_map_resilient(
            &items,
            &ExecConfig::new(2),
            Stage::Characterize,
            |id, _, _, _| Ok(id),
            |report| {
                if report.job == 3 {
                    return Err(ReduceError::InvalidConfig {
                        what: "journal write failed".to_string(),
                    });
                }
                Ok(())
            },
        );
        assert!(matches!(res, Err(ReduceError::InvalidConfig { .. })));
    }
}
