//! Error type for the Reduce framework.

use reduce_data::DataError;
use reduce_nn::NnError;
use reduce_systolic::SystolicError;
use reduce_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error produced by the Reduce framework.
#[derive(Debug, Clone, PartialEq)]
pub enum ReduceError {
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// The NN substrate failed.
    Nn(NnError),
    /// The dataset substrate failed.
    Data(DataError),
    /// The accelerator model failed.
    Systolic(SystolicError),
    /// A framework-level configuration was rejected.
    InvalidConfig {
        /// What configuration was invalid.
        what: String,
    },
    /// Step 2 was asked to select a retraining amount without (or outside)
    /// a resilience characterisation.
    MissingCharacterization {
        /// Why the lookup failed.
        reason: String,
    },
    /// Training produced a non-finite loss or accuracy. Surfaced as a
    /// typed error (instead of a NaN silently comparing `false` against
    /// the accuracy constraint) so the retry layer can roll back to the
    /// pre-mask snapshot and reseed, and so quarantine reports carry the
    /// real cause.
    Divergence {
        /// What diverged (which quantity, at which epoch).
        what: String,
    },
    /// A resume journal is damaged in a way self-healing cannot repair
    /// automatically: a record in the *middle* of the journal (with valid
    /// records after it) failed verification, so truncating to the valid
    /// prefix would silently drop completed work. Resume surfaces this
    /// typed error instead of guessing; `journal-tool repair` performs the
    /// explicit, operator-sanctioned truncation.
    JournalCorrupt {
        /// 0-based shard index (0 for single-file v1 journals).
        shard: usize,
        /// 0-based record index within the shard where damage was found.
        record: usize,
        /// What kind of damage verification found.
        kind: CorruptKind,
    },
    /// An internal invariant was violated — always a bug in this crate,
    /// surfaced as an error instead of a panic so fleet runs fail softly.
    /// Worker panics contained by the parallel executor ([`crate::exec`])
    /// are also reported through this variant, carrying the job index and
    /// panic message.
    Internal {
        /// Which invariant broke.
        invariant: String,
    },
}

/// The damage class a journal verification failure reports
/// ([`ReduceError::JournalCorrupt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// The manifest line itself is unreadable or structurally invalid.
    Manifest,
    /// The manifest names a sealed shard whose file is missing.
    MissingShard,
    /// A v3 frame is malformed (bad hex CRC, bad length, or the framed
    /// length disagrees with the payload).
    BadFrame,
    /// A v3 frame's CRC32 does not match its payload — a detected bitflip.
    BadCrc,
    /// A line parses as a frame but its payload is not a valid journal
    /// record.
    BadRecord,
    /// A sealed shard's footer is missing or its record count disagrees
    /// with the records actually present.
    BadFooter,
    /// A sealed shard's whole-file digest disagrees with the digest the
    /// manifest recorded for it.
    DigestMismatch,
}

impl CorruptKind {
    /// Stable kebab-case name (used in error messages and `journal-tool`
    /// output).
    pub fn name(self) -> &'static str {
        match self {
            CorruptKind::Manifest => "manifest",
            CorruptKind::MissingShard => "missing-shard",
            CorruptKind::BadFrame => "bad-frame",
            CorruptKind::BadCrc => "bad-crc",
            CorruptKind::BadRecord => "bad-record",
            CorruptKind::BadFooter => "bad-footer",
            CorruptKind::DigestMismatch => "digest-mismatch",
        }
    }
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::Tensor(e) => write!(f, "tensor error: {e}"),
            ReduceError::Nn(e) => write!(f, "nn error: {e}"),
            ReduceError::Data(e) => write!(f, "data error: {e}"),
            ReduceError::Systolic(e) => write!(f, "systolic error: {e}"),
            ReduceError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            ReduceError::MissingCharacterization { reason } => {
                write!(f, "missing resilience characterisation: {reason}")
            }
            ReduceError::Divergence { what } => {
                write!(f, "training diverged: {what}")
            }
            ReduceError::JournalCorrupt {
                shard,
                record,
                kind,
            } => {
                write!(
                    f,
                    "journal corrupt: shard {shard} record {record}: {kind} \
                     (run `journal-tool repair` to truncate to the valid prefix)"
                )
            }
            ReduceError::Internal { invariant } => {
                write!(f, "internal invariant violated: {invariant}")
            }
        }
    }
}

impl Error for ReduceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReduceError::Tensor(e) => Some(e),
            ReduceError::Nn(e) => Some(e),
            ReduceError::Data(e) => Some(e),
            ReduceError::Systolic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ReduceError {
    fn from(e: TensorError) -> Self {
        ReduceError::Tensor(e)
    }
}

impl From<NnError> for ReduceError {
    fn from(e: NnError) -> Self {
        ReduceError::Nn(e)
    }
}

impl From<DataError> for ReduceError {
    fn from(e: DataError) -> Self {
        ReduceError::Data(e)
    }
}

impl From<SystolicError> for ReduceError {
    fn from(e: SystolicError) -> Self {
        ReduceError::Systolic(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ReduceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ReduceError = TensorError::LengthMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(e.to_string().contains("tensor error"));
        let e: ReduceError = NnError::InvalidConfig { what: "x".into() }.into();
        assert!(e.to_string().contains("nn error"));
        let e = ReduceError::MissingCharacterization {
            reason: "no table".into(),
        };
        assert!(e.to_string().contains("characterisation"));
    }

    #[test]
    fn journal_corrupt_names_shard_record_and_kind() {
        let e = ReduceError::JournalCorrupt {
            shard: 2,
            record: 17,
            kind: CorruptKind::BadCrc,
        };
        let msg = e.to_string();
        assert!(msg.contains("shard 2"), "{msg}");
        assert!(msg.contains("record 17"), "{msg}");
        assert!(msg.contains("bad-crc"), "{msg}");
        assert!(msg.contains("journal-tool repair"), "{msg}");
    }

    #[test]
    fn source_chain() {
        use std::error::Error as _;
        let e: ReduceError = SystolicError::InvalidConfig { what: "y".into() }.into();
        assert!(e.source().is_some());
        assert!(ReduceError::InvalidConfig { what: "z".into() }
            .source()
            .is_none());
    }
}
