//! Error type for the Reduce framework.

use reduce_data::DataError;
use reduce_nn::NnError;
use reduce_systolic::SystolicError;
use reduce_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error produced by the Reduce framework.
#[derive(Debug, Clone, PartialEq)]
pub enum ReduceError {
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// The NN substrate failed.
    Nn(NnError),
    /// The dataset substrate failed.
    Data(DataError),
    /// The accelerator model failed.
    Systolic(SystolicError),
    /// A framework-level configuration was rejected.
    InvalidConfig {
        /// What configuration was invalid.
        what: String,
    },
    /// Step 2 was asked to select a retraining amount without (or outside)
    /// a resilience characterisation.
    MissingCharacterization {
        /// Why the lookup failed.
        reason: String,
    },
    /// Training produced a non-finite loss or accuracy. Surfaced as a
    /// typed error (instead of a NaN silently comparing `false` against
    /// the accuracy constraint) so the retry layer can roll back to the
    /// pre-mask snapshot and reseed, and so quarantine reports carry the
    /// real cause.
    Divergence {
        /// What diverged (which quantity, at which epoch).
        what: String,
    },
    /// An internal invariant was violated — always a bug in this crate,
    /// surfaced as an error instead of a panic so fleet runs fail softly.
    /// Worker panics contained by the parallel executor ([`crate::exec`])
    /// are also reported through this variant, carrying the job index and
    /// panic message.
    Internal {
        /// Which invariant broke.
        invariant: String,
    },
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::Tensor(e) => write!(f, "tensor error: {e}"),
            ReduceError::Nn(e) => write!(f, "nn error: {e}"),
            ReduceError::Data(e) => write!(f, "data error: {e}"),
            ReduceError::Systolic(e) => write!(f, "systolic error: {e}"),
            ReduceError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            ReduceError::MissingCharacterization { reason } => {
                write!(f, "missing resilience characterisation: {reason}")
            }
            ReduceError::Divergence { what } => {
                write!(f, "training diverged: {what}")
            }
            ReduceError::Internal { invariant } => {
                write!(f, "internal invariant violated: {invariant}")
            }
        }
    }
}

impl Error for ReduceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReduceError::Tensor(e) => Some(e),
            ReduceError::Nn(e) => Some(e),
            ReduceError::Data(e) => Some(e),
            ReduceError::Systolic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ReduceError {
    fn from(e: TensorError) -> Self {
        ReduceError::Tensor(e)
    }
}

impl From<NnError> for ReduceError {
    fn from(e: NnError) -> Self {
        ReduceError::Nn(e)
    }
}

impl From<DataError> for ReduceError {
    fn from(e: DataError) -> Self {
        ReduceError::Data(e)
    }
}

impl From<SystolicError> for ReduceError {
    fn from(e: SystolicError) -> Self {
        ReduceError::Systolic(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ReduceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ReduceError = TensorError::LengthMismatch {
            expected: 1,
            actual: 2,
        }
        .into();
        assert!(e.to_string().contains("tensor error"));
        let e: ReduceError = NnError::InvalidConfig { what: "x".into() }.into();
        assert!(e.to_string().contains("nn error"));
        let e = ReduceError::MissingCharacterization {
            reason: "no table".into(),
        };
        assert!(e.to_string().contains("characterisation"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error as _;
        let e: ReduceError = SystolicError::InvalidConfig { what: "y".into() }.into();
        assert!(e.source().is_some());
        assert!(ReduceError::InvalidConfig { what: "z".into() }
            .source()
            .is_none());
    }
}
