//! Step ③ at fleet scale — retraining every chip under a policy and
//! accounting for the cost (the data behind Fig. 3).

use crate::error::{ReduceError, Result};
use crate::exec::{self, ExecConfig, JobStatus};
use crate::fat::{FatRunner, Mitigation, StopRule};
use crate::journal::{Checkpoint, JournalRecord};
use crate::policy::RetrainPolicy;
use crate::resilience::ResilienceTable;
use crate::telemetry::{self, EpochScope, Event, Stage};
use crate::workbench::Pretrained;
use reduce_nn::WorkspaceStats;
use reduce_systolic::{Chip, CostModel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The outcome of retraining one chip under a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipOutcome {
    /// Chip identifier.
    pub chip_id: usize,
    /// The chip's fault rate (fraction of faulty PEs).
    pub fault_rate: f64,
    /// Epochs the policy budgeted for this chip.
    pub epochs_budgeted: usize,
    /// Epochs actually executed (equals the budget under
    /// [`StopRule::Exact`]).
    pub epochs_run: usize,
    /// Test accuracy after masking, before retraining.
    pub pre_retrain_accuracy: f32,
    /// Deployed (post-FAT) test accuracy.
    pub final_accuracy: f32,
    /// Whether the deployed accuracy meets the constraint.
    pub meets_constraint: bool,
    /// Fraction of GEMM weights the chip's faults pruned.
    pub pruned_fraction: f32,
    /// Whether the chip's fault rate fell outside the characterised range.
    pub clamped: bool,
}

/// A chip whose FAT run exhausted its retry budget and was quarantined.
///
/// Quarantined chips are excluded from every aggregate statistic — a
/// handful of failing chips must not abort (or silently skew) the rest of
/// the fleet's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedChip {
    /// Chip identifier.
    pub chip_id: usize,
    /// The chip's fault rate.
    pub fault_rate: f64,
    /// Attempts consumed (retry budget + 1).
    pub attempts: u32,
    /// The final attempt's error.
    pub error: String,
}

/// Containment status of one chip in a [`FleetReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChipStatus {
    /// The chip was retrained and contributes to the aggregates.
    Ok,
    /// The chip exhausted its retry budget and was quarantined.
    Quarantined,
}

/// Aggregate results of retraining a fleet under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Policy label (for tables/figures).
    pub policy: String,
    /// The accuracy constraint evaluated against.
    pub constraint: f32,
    /// Per-chip outcomes of the successfully retrained chips, in fleet
    /// order.
    pub chips: Vec<ChipOutcome>,
    /// Chips quarantined after exhausting the retry budget, in fleet
    /// order. Empty on a clean run.
    pub quarantined: Vec<QuarantinedChip>,
    /// Total retraining epochs spent across the fleet — the paper's
    /// overhead metric.
    pub total_epochs: usize,
    /// Number of chips meeting the constraint — the paper's robustness
    /// metric.
    pub satisfied: usize,
    /// Mean deployed accuracy.
    pub mean_accuracy: f32,
    /// Worst deployed accuracy.
    pub min_accuracy: f32,
    /// Estimated retraining cycles on the accelerator (cost-model based),
    /// if a cost model was supplied.
    pub retrain_cycles: Option<u64>,
}

impl FleetReport {
    /// Fraction of chips meeting the constraint.
    pub fn yield_fraction(&self) -> f32 {
        if self.chips.is_empty() {
            return 0.0;
        }
        self.satisfied as f32 / self.chips.len() as f32
    }

    /// Mean epochs per chip.
    pub fn mean_epochs(&self) -> f32 {
        if self.chips.is_empty() {
            return 0.0;
        }
        self.total_epochs as f32 / self.chips.len() as f32
    }

    /// The containment status of every evaluated chip, in chip-id order.
    pub fn statuses(&self) -> Vec<(usize, ChipStatus)> {
        let mut statuses: Vec<(usize, ChipStatus)> = self
            .chips
            .iter()
            .map(|c| (c.chip_id, ChipStatus::Ok))
            .chain(
                self.quarantined
                    .iter()
                    .map(|q| (q.chip_id, ChipStatus::Quarantined)),
            )
            .collect();
        statuses.sort_by_key(|&(id, _)| id);
        statuses
    }

    /// Number of chips quarantined after exhausting the retry budget.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }
}

/// Configuration of a fleet evaluation run.
#[derive(Debug, Clone)]
pub struct FleetEvalConfig {
    /// The retraining policy to apply.
    pub policy: RetrainPolicy,
    /// The user's accuracy constraint.
    pub constraint: f32,
    /// Mitigation strategy (FAP per the paper; FAM as ablation).
    pub strategy: Mitigation,
    /// Stop each chip's FAT as soon as its test accuracy reaches the
    /// constraint instead of spending the whole budget (the early-stop
    /// extension, ablation A5). The paper's Step ③ spends the budget
    /// exactly, so this defaults to `false`.
    pub early_stop: bool,
    /// Optional accelerator cost model for cycle accounting.
    pub cost_model: Option<CostModel>,
    /// Per-chip run-seed base (decorrelates shuffling across chips).
    pub seed: u64,
}

impl FleetEvalConfig {
    /// A plain-FAP evaluation of `policy` against `constraint`.
    pub fn new(policy: RetrainPolicy, constraint: f32) -> Self {
        FleetEvalConfig {
            policy,
            constraint,
            strategy: Mitigation::Fap,
            early_stop: false,
            cost_model: None,
            seed: 0xF1EE7,
        }
    }
}

/// Retrains every chip in `fleet` under the configured policy and collects
/// the per-chip and aggregate statistics of Fig. 3.
///
/// Chips are distributed over `exec.threads` workers on the shared
/// deterministic executor ([`crate::exec`]). Each chip's FAT run is fully
/// self-contained and seeded and the executor returns outcomes in fleet
/// order, so the report is byte-identical at any thread count
/// (`exec.threads == 0` auto-sizes the pool). `exec`'s observer receives
/// a `Deploy` stage pair plus per-epoch ticks and one
/// [`Event::ChipRetrained`] per chip, flushed in fleet order.
///
/// # Errors
///
/// Propagates fatal configuration errors (e.g. the Reduce policy without a
/// table). A chip whose FAT run fails or panics is retried up to
/// `exec.retry_budget()` times with a deterministically derived reseed and
/// then *quarantined* into [`FleetReport::quarantined`] — never fatal to
/// the rest of the fleet.
///
/// # Examples
///
/// ```
/// use reduce_core::exec::ExecConfig;
/// use reduce_core::{evaluate_fleet, FatRunner, FleetEvalConfig, RetrainPolicy, Workbench};
/// use reduce_systolic::{generate_fleet, FaultModel, FleetConfig, RateDistribution};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let workbench = Workbench::toy(1);
/// let pretrained = workbench.pretrain(5)?;
/// let runner = FatRunner::new(workbench)?;
/// let fleet = generate_fleet(&FleetConfig {
///     chips: 3,
///     rows: 8,
///     cols: 8,
///     rates: RateDistribution::Fixed(0.1),
///     model: FaultModel::Random,
///     seed: 2,
/// })?;
/// let config = FleetEvalConfig::new(RetrainPolicy::Fixed(1), 0.8);
/// let report =
///     evaluate_fleet(&runner, &pretrained, &fleet, None, &config, &ExecConfig::default())?;
/// assert_eq!(report.total_epochs, 3);
/// # Ok(())
/// # }
/// ```
pub fn evaluate_fleet(
    runner: &FatRunner,
    pretrained: &Pretrained,
    fleet: &[Chip],
    table: Option<&ResilienceTable>,
    config: &FleetEvalConfig,
    exec: &ExecConfig,
) -> Result<FleetReport> {
    evaluate_fleet_resumable(runner, pretrained, fleet, table, config, exec, None)
}

/// [`evaluate_fleet`] with checkpoint/resume: every sealed chip (retrained
/// or quarantined) is appended to `checkpoint` keyed by `(policy label,
/// chip id)`, and chips already journaled under this config's policy are
/// replayed — their outcomes and buffered telemetry re-emitted
/// bit-identically, in fleet order — instead of re-run. One journal can
/// hold several policies' outcomes (the fig3 sweep shares one).
///
/// # Errors
///
/// Propagates fatal configuration errors and checkpoint-write failures.
pub fn evaluate_fleet_resumable(
    runner: &FatRunner,
    pretrained: &Pretrained,
    fleet: &[Chip],
    table: Option<&ResilienceTable>,
    config: &FleetEvalConfig,
    exec: &ExecConfig,
    checkpoint: Option<&Checkpoint>,
) -> Result<FleetReport> {
    let policy_label = config.policy.label();
    let mut replayed: BTreeMap<usize, JournalRecord> = BTreeMap::new();
    if let Some(cp) = checkpoint {
        for record in cp.records()? {
            if let Some((policy, chip_id)) = record.chip_key() {
                if policy == policy_label {
                    replayed.insert(chip_id, record);
                }
            }
        }
    }
    // Job ids are the chip ids — stable across resume subsetting, so retry
    // salts and chaos decisions don't depend on which chips already ran.
    let missing: Vec<(u64, &Chip)> = fleet
        .iter()
        .filter(|chip| !replayed.contains_key(&chip.id()))
        .map(|chip| (chip.id() as u64, chip))
        .collect();
    let rates: BTreeMap<u64, f64> = fleet
        .iter()
        .map(|chip| (chip.id() as u64, chip.fault_rate()))
        .collect();
    let (chips, quarantined) = telemetry::timed_stage(exec.observer(), Stage::Deploy, || {
        let fresh = exec::parallel_map_resilient(
            &missing,
            exec,
            Stage::Deploy,
            |_, chip, salt, events| {
                retrain_chip(runner, pretrained, table, config, chip, salt, events)
            },
            |report| {
                let Some(cp) = checkpoint else {
                    return Ok(());
                };
                let record = match &report.status {
                    JobStatus::Ok((outcome, workspace)) => JournalRecord::Chip {
                        job: report.job,
                        policy: policy_label.clone(),
                        outcome: outcome.clone(),
                        workspace: *workspace,
                        events: report.events.clone(),
                    },
                    JobStatus::Quarantined { attempts, error } => JournalRecord::ChipFailed {
                        job: report.job,
                        policy: policy_label.clone(),
                        chip_id: report.job as usize,
                        fault_rate: rates.get(&report.job).copied().unwrap_or(f64::NAN),
                        attempts: *attempts,
                        error: error.clone(),
                        events: report.events.clone(),
                    },
                };
                cp.append(record)
            },
        )?;
        let mut fresh_by_job: BTreeMap<u64, _> = fresh.into_iter().map(|r| (r.job, r)).collect();
        // Stitch replayed and fresh outcomes back into fleet order; the
        // event stream and aggregates are therefore independent of both
        // thread count and the resume split.
        let mut chips = Vec::with_capacity(fleet.len());
        let mut quarantined = Vec::new();
        let mut ws = WorkspaceStats::default();
        for chip in fleet {
            if let Some(record) = replayed.get(&chip.id()) {
                match record {
                    JournalRecord::Chip {
                        outcome,
                        workspace,
                        events,
                        ..
                    } => {
                        for e in events {
                            exec.observer().on_event(e);
                        }
                        ws.merge(workspace);
                        chips.push(outcome.clone());
                    }
                    JournalRecord::ChipFailed {
                        attempts,
                        error,
                        events,
                        ..
                    } => {
                        for e in events {
                            exec.observer().on_event(e);
                        }
                        quarantined.push(QuarantinedChip {
                            chip_id: chip.id(),
                            fault_rate: chip.fault_rate(),
                            attempts: *attempts,
                            error: error.clone(),
                        });
                    }
                    _ => {
                        return Err(ReduceError::Internal {
                            invariant: "chip-keyed journal records are chip records".to_string(),
                        })
                    }
                }
            } else if let Some(report) = fresh_by_job.remove(&(chip.id() as u64)) {
                for e in &report.events {
                    exec.observer().on_event(e);
                }
                match report.status {
                    JobStatus::Ok((outcome, stats)) => {
                        ws.merge(&stats);
                        chips.push(outcome);
                    }
                    JobStatus::Quarantined { attempts, error } => {
                        quarantined.push(QuarantinedChip {
                            chip_id: chip.id(),
                            fault_rate: chip.fault_rate(),
                            attempts,
                            error,
                        });
                    }
                }
            } else {
                return Err(ReduceError::Internal {
                    invariant: "every chip is either replayed or freshly run".to_string(),
                });
            }
        }
        exec.observer().on_event(&Event::WorkspaceUsed {
            stage: Stage::Deploy,
            hits: ws.hits,
            misses: ws.misses,
            bytes_allocated: ws.bytes_allocated,
        });
        if checkpoint.is_some() {
            exec.observer().on_event(&Event::CheckpointWritten {
                stage: Stage::Deploy,
                completed: fleet.len(),
            });
        }
        Ok::<_, ReduceError>((chips, quarantined))
    })?;
    build_report(runner, config, chips, quarantined)
}

/// Steps ②+③ for one chip: select a budget, retrain, record the outcome
/// (and its telemetry events, in chip order) plus the run's workspace
/// counters for the stage-level aggregate.
fn retrain_chip(
    runner: &FatRunner,
    pretrained: &Pretrained,
    table: Option<&ResilienceTable>,
    config: &FleetEvalConfig,
    chip: &Chip,
    salt: u64,
    events: &mut Vec<Event>,
) -> Result<(ChipOutcome, WorkspaceStats)> {
    let rate = chip.fault_rate();
    let selection = config.policy.epochs_for_chip(table, rate)?;
    let stop = if config.early_stop {
        StopRule::AtAccuracy(config.constraint)
    } else {
        StopRule::Exact
    };
    let outcome = runner.run_observed(
        pretrained,
        chip.fault_map(),
        selection.epochs,
        stop,
        config.strategy,
        // `salt` is 0 on the first attempt; retries re-randomise the
        // chip's training shuffle without touching its fault map.
        config.seed.wrapping_add(chip.id() as u64) ^ salt,
        &mut |epoch, accuracy| {
            events.push(Event::EpochCompleted {
                scope: EpochScope::Chip { chip_id: chip.id() },
                epoch,
                accuracy,
            });
        },
    )?;
    outcome.ensure_finite()?;
    let final_accuracy = outcome.final_accuracy();
    events.push(Event::ChipRetrained {
        chip_id: chip.id(),
        fault_rate: rate,
        epochs_budgeted: selection.epochs,
        epochs_run: outcome.epochs_run(),
        final_accuracy,
        satisfied: final_accuracy >= config.constraint,
    });
    Ok((
        ChipOutcome {
            chip_id: chip.id(),
            fault_rate: rate,
            epochs_budgeted: selection.epochs,
            epochs_run: outcome.epochs_run(),
            pre_retrain_accuracy: outcome.pre_retrain_accuracy,
            final_accuracy,
            meets_constraint: final_accuracy >= config.constraint,
            pruned_fraction: outcome.pruned_fraction,
            clamped: selection.clamped,
        },
        outcome.workspace,
    ))
}

/// Aggregates per-chip outcomes into a [`FleetReport`] — the one builder
/// behind both the sequential and the parallel evaluation path.
fn build_report(
    runner: &FatRunner,
    config: &FleetEvalConfig,
    chips: Vec<ChipOutcome>,
    quarantined: Vec<QuarantinedChip>,
) -> Result<FleetReport> {
    // FAT runs guard this at the source; re-check here so a hand-edited
    // journal (or future caller) can't slip a NaN into the aggregates,
    // where it would poison the means and vanish in `min` comparisons.
    for c in &chips {
        if !c.final_accuracy.is_finite() {
            return Err(ReduceError::Divergence {
                what: format!("chip {} final accuracy is {}", c.chip_id, c.final_accuracy),
            });
        }
    }
    let satisfied = chips.iter().filter(|c| c.meets_constraint).count();
    let total_epochs = chips.iter().map(|c| c.epochs_run).sum::<usize>();
    let mean_accuracy = if chips.is_empty() {
        0.0
    } else {
        chips.iter().map(|c| c.final_accuracy).sum::<f32>() / chips.len() as f32
    };
    let min_accuracy = chips
        .iter()
        .map(|c| c.final_accuracy)
        .fold(f32::INFINITY, f32::min);
    let retrain_cycles = match &config.cost_model {
        Some(cm) => {
            let wb = runner.workbench();
            let shapes = wb.model.gemm_shapes(wb.train.batch_size)?;
            let samples = runner.train_data().len();
            let per_epoch = cm.epoch_cycles(&shapes, samples, wb.train.batch_size)?;
            Some(per_epoch * total_epochs as u64)
        }
        None => None,
    };
    Ok(FleetReport {
        policy: config.policy.label(),
        constraint: config.constraint,
        chips,
        quarantined,
        total_epochs,
        satisfied,
        mean_accuracy,
        min_accuracy: if min_accuracy.is_finite() {
            min_accuracy
        } else {
            0.0
        },
        retrain_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{Statistic, TableEntry};
    use crate::workbench::Workbench;
    use reduce_systolic::{generate_fleet, FaultModel, FleetConfig, RateDistribution};

    fn setup() -> (FatRunner, Pretrained, Vec<Chip>) {
        let wb = Workbench::toy(21);
        let pre = wb.pretrain(12).expect("valid workbench");
        let runner = FatRunner::new(wb).expect("valid workbench");
        let fleet = generate_fleet(&FleetConfig {
            chips: 6,
            rows: 8,
            cols: 8,
            rates: RateDistribution::Uniform { lo: 0.0, hi: 0.25 },
            model: FaultModel::Random,
            seed: 5,
        })
        .expect("valid fleet");
        (runner, pre, fleet)
    }

    fn table() -> ResilienceTable {
        ResilienceTable::from_entries(
            vec![
                TableEntry {
                    rate: 0.0,
                    mean_epochs: 0.0,
                    max_epochs: 0,
                },
                TableEntry {
                    rate: 0.25,
                    mean_epochs: 3.0,
                    max_epochs: 5,
                },
            ],
            8,
        )
        .expect("non-empty")
    }

    #[test]
    fn fixed_policy_charges_every_chip_equally() {
        let (runner, pre, fleet) = setup();
        let config = FleetEvalConfig::new(RetrainPolicy::Fixed(2), 0.85);
        let report = evaluate_fleet(&runner, &pre, &fleet, None, &config, &ExecConfig::default())
            .expect("valid run");
        assert_eq!(report.chips.len(), 6);
        assert!(report.chips.iter().all(|c| c.epochs_run == 2));
        assert_eq!(report.total_epochs, 12);
        assert_eq!(report.policy, "Fixed (2 epochs)");
    }

    #[test]
    fn reduce_policy_scales_epochs_with_fault_rate() {
        let (runner, pre, fleet) = setup();
        let t = table();
        let config = FleetEvalConfig::new(RetrainPolicy::Reduce(Statistic::Max), 0.85);
        let report = evaluate_fleet(
            &runner,
            &pre,
            &fleet,
            Some(&t),
            &config,
            &ExecConfig::default(),
        )
        .expect("valid run");
        // Chips with higher fault rates get more epochs (monotone table).
        let mut sorted = report.chips.clone();
        sorted.sort_by(|a, b| a.fault_rate.partial_cmp(&b.fault_rate).expect("finite"));
        for pair in sorted.windows(2) {
            assert!(pair[0].epochs_budgeted <= pair[1].epochs_budgeted);
        }
        // A clean chip costs nothing.
        if let Some(clean) = report.chips.iter().find(|c| c.fault_rate == 0.0) {
            assert_eq!(clean.epochs_run, 0);
        }
    }

    #[test]
    fn reduce_spends_less_than_fixed_high_for_same_yield_level() {
        let (runner, pre, fleet) = setup();
        let t = table();
        let constraint = 0.85;
        let reduce = evaluate_fleet(
            &runner,
            &pre,
            &fleet,
            Some(&t),
            &FleetEvalConfig::new(RetrainPolicy::Reduce(Statistic::Max), constraint),
            &ExecConfig::default(),
        )
        .expect("valid run");
        let fixed_high = evaluate_fleet(
            &runner,
            &pre,
            &fleet,
            None,
            &FleetEvalConfig::new(RetrainPolicy::Fixed(5), constraint),
            &ExecConfig::default(),
        )
        .expect("valid run");
        assert!(
            reduce.total_epochs < fixed_high.total_epochs,
            "Reduce ({}) should be cheaper than Fixed-5 ({})",
            reduce.total_epochs,
            fixed_high.total_epochs
        );
    }

    #[test]
    fn report_aggregates() {
        let (runner, pre, fleet) = setup();
        let config = FleetEvalConfig::new(RetrainPolicy::Fixed(1), 0.5);
        let report = evaluate_fleet(&runner, &pre, &fleet, None, &config, &ExecConfig::default())
            .expect("valid run");
        assert!(report.yield_fraction() > 0.0);
        assert!((report.mean_epochs() - 1.0).abs() < 1e-6);
        assert!(report.min_accuracy <= report.mean_accuracy);
        assert_eq!(
            report.satisfied,
            report.chips.iter().filter(|c| c.meets_constraint).count()
        );
    }

    #[test]
    fn cycle_accounting_present_with_cost_model() {
        let (runner, pre, fleet) = setup();
        let mut config = FleetEvalConfig::new(RetrainPolicy::Fixed(1), 0.5);
        config.cost_model = Some(CostModel::small(8, 8));
        let report = evaluate_fleet(&runner, &pre, &fleet, None, &config, &ExecConfig::default())
            .expect("valid run");
        let cycles = report.retrain_cycles.expect("cost model supplied");
        assert!(cycles > 0);
        // Double the epochs, double the cycles.
        let mut config2 = FleetEvalConfig::new(RetrainPolicy::Fixed(2), 0.5);
        config2.cost_model = Some(CostModel::small(8, 8));
        let report2 = evaluate_fleet(
            &runner,
            &pre,
            &fleet,
            None,
            &config2,
            &ExecConfig::default(),
        )
        .expect("valid run");
        assert_eq!(
            report2.retrain_cycles.expect("cost model supplied"),
            2 * cycles
        );
    }

    #[test]
    fn early_stop_fleet_never_spends_more() {
        let (runner, pre, fleet) = setup();
        let exact = evaluate_fleet(
            &runner,
            &pre,
            &fleet,
            None,
            &FleetEvalConfig::new(RetrainPolicy::Fixed(4), 0.85),
            &ExecConfig::default(),
        )
        .expect("valid run");
        let mut cfg = FleetEvalConfig::new(RetrainPolicy::Fixed(4), 0.85);
        cfg.early_stop = true;
        let stopped = evaluate_fleet(&runner, &pre, &fleet, None, &cfg, &ExecConfig::default())
            .expect("valid run");
        assert!(stopped.total_epochs <= exact.total_epochs);
        // Early stop only stops *after* the constraint is met, so yield
        // cannot be worse.
        assert!(stopped.satisfied >= exact.satisfied.saturating_sub(1));
        for c in &stopped.chips {
            assert!(c.epochs_run <= c.epochs_budgeted);
        }
    }

    #[test]
    fn parallel_fleet_matches_sequential() {
        let (runner, pre, fleet) = setup();
        let config = FleetEvalConfig::new(RetrainPolicy::Fixed(2), 0.85);
        let seq = evaluate_fleet(&runner, &pre, &fleet, None, &config, &ExecConfig::default())
            .expect("valid run");
        // 0 auto-sizes from the hardware; the report must still match.
        for threads in [0usize, 1, 2, 4] {
            let par = evaluate_fleet(
                &runner,
                &pre,
                &fleet,
                None,
                &config,
                &ExecConfig::new(threads),
            )
            .expect("valid run");
            assert_eq!(par, seq, "{threads}-thread report differs from sequential");
        }
    }

    #[test]
    fn unprotected_execution_is_catastrophic() {
        let (runner, pre, _) = setup();
        // A mere 5% of stuck-at-saturated PEs without FAP...
        let map =
            reduce_systolic::FaultMap::generate(8, 8, 0.05, reduce_systolic::FaultModel::Random, 3)
                .expect("valid rate");
        let unprotected = runner
            .unprotected_accuracy(&pre, &map, 8.0)
            .expect("valid run");
        // ...versus the same chip under FAP bypass.
        let fap = runner
            .run(
                &pre,
                &map,
                0,
                crate::fat::StopRule::Exact,
                Mitigation::Fap,
                0,
            )
            .expect("valid run")
            .pre_retrain_accuracy;
        assert!(
            unprotected < fap - 0.1,
            "stuck-at faults should be much worse than bypass: {unprotected} vs {fap}"
        );
    }

    #[test]
    fn reduce_without_table_fails() {
        let (runner, pre, fleet) = setup();
        let config = FleetEvalConfig::new(RetrainPolicy::Reduce(Statistic::Max), 0.85);
        assert!(
            evaluate_fleet(&runner, &pre, &fleet, None, &config, &ExecConfig::default()).is_err()
        );
    }

    #[test]
    fn empty_fleet_is_empty_report() {
        let (runner, pre, _) = setup();
        let config = FleetEvalConfig::new(RetrainPolicy::Fixed(1), 0.5);
        let report = evaluate_fleet(&runner, &pre, &[], None, &config, &ExecConfig::default())
            .expect("valid run");
        assert_eq!(report.chips.len(), 0);
        assert_eq!(report.yield_fraction(), 0.0);
        assert_eq!(report.min_accuracy, 0.0);
    }
}
