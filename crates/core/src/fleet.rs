//! Step ③ at fleet scale — streaming evaluation of chip populations under
//! a retraining policy (the data behind Fig. 3).
//!
//! The evaluator is built for fleets of 10⁴–10⁶ chips, far beyond what a
//! materialised `Vec<Chip>` + `Vec<FatOutcome>` pipeline can hold:
//!
//! * **Intake** is a [`ChipSource`] — chips are pulled on demand by id
//!   ([`SeededChips`] regenerates them from the fleet seed), never stored.
//! * **Scheduling** walks the fleet in fixed windows; within a window the
//!   epoch-budget scheduler groups chips by the budget the policy selects
//!   for them, so a batch of same-budget chips shares one pooled model
//!   workspace (only the first chip of a batch pays warm-up allocations).
//! * **Accounting** streams into a constant-size [`FleetReport`]: counts,
//!   epoch-spend histogram and running min/mean/max — per-chip
//!   [`ChipOutcome`]s are only kept when
//!   [`FleetEvaluation::collect_outcomes`] asks for them.
//! * **Checkpointing** journals one [`crate::journal::JournalRecord::FleetBatch`]
//!   per sealed batch; batch composition is a pure function of the config,
//!   so a resumed run recomputes the same batches, replays the sealed ones
//!   bit-identically, and runs only the missing ones.
//!
//! Everything is keyed on stable chip ids, so reports and telemetry are
//! byte-identical across thread counts and across kill-and-resume.

use crate::error::{ReduceError, Result};
use crate::exec::{self, ExecConfig, JobStatus};
use crate::fat::{FatRunner, Mitigation, StopRule};
use crate::journal::{Checkpoint, JournalRecord};
use crate::policy::RetrainPolicy;
use crate::resilience::ResilienceTable;
use crate::telemetry::{self, EpochScope, Event, Stage};
use crate::workbench::Pretrained;
use reduce_nn::{Workspace, WorkspaceStats};
use reduce_systolic::{
    chip_rate, cluster_fault_maps, generate_chip, Chip, Cluster, ClusterConfig, CostModel,
    FaultMap, FleetConfig,
};
use reduce_tensor::Tensor;

/// A model's named-parameter snapshot (`state_dict()` order) — the
/// warm-start payload a cluster representative donates to its members.
type ModelState = Vec<(String, Tensor)>;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// The outcome of retraining one chip under a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipOutcome {
    /// Chip identifier.
    pub chip_id: usize,
    /// The chip's fault rate (fraction of faulty PEs).
    pub fault_rate: f64,
    /// Epochs the policy budgeted for this chip.
    pub epochs_budgeted: usize,
    /// Epochs actually executed (equals the budget under
    /// [`StopRule::Exact`]).
    pub epochs_run: usize,
    /// Test accuracy after masking, before retraining.
    pub pre_retrain_accuracy: f32,
    /// Deployed (post-FAT) test accuracy.
    pub final_accuracy: f32,
    /// Whether the deployed accuracy meets the constraint.
    pub meets_constraint: bool,
    /// Fraction of GEMM weights the chip's faults pruned.
    pub pruned_fraction: f32,
    /// Whether the chip's fault rate fell outside the characterised range.
    pub clamped: bool,
    /// Whether the chip warm-started from a cluster representative's
    /// converged state instead of the pretrained baseline
    /// ([`FleetStrategy::Clustered`]). Defaults to `false` when absent so
    /// records written before the eFAT extension still deserialize.
    #[serde(default)]
    pub warm_started: bool,
}

/// A chip whose FAT run exhausted its retry budget and was quarantined.
///
/// Quarantined chips are excluded from every aggregate statistic — a
/// handful of failing chips must not abort (or silently skew) the rest of
/// the fleet's evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedChip {
    /// Chip identifier.
    pub chip_id: usize,
    /// The chip's fault rate.
    pub fault_rate: f64,
    /// Attempts consumed (retry budget + 1).
    pub attempts: u32,
    /// The final attempt's error.
    pub error: String,
}

/// Containment status of one chip in a [`FleetReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChipStatus {
    /// The chip was retrained and contributes to the aggregates.
    Ok,
    /// The chip exhausted its retry budget and was quarantined.
    Quarantined,
}

/// One chip's sealed fate inside an evaluated batch: the unit the fleet
/// journal records and the report accumulator absorbs.
#[derive(Debug, Clone, PartialEq)]
pub enum SealedChip {
    /// The chip was retrained (successfully or not w.r.t. the constraint).
    Retrained(ChipOutcome),
    /// The chip exhausted its retry budget.
    Quarantined(QuarantinedChip),
}

impl SealedChip {
    /// The chip's identifier.
    pub fn chip_id(&self) -> usize {
        match self {
            SealedChip::Retrained(c) => c.chip_id,
            SealedChip::Quarantined(q) => q.chip_id,
        }
    }

    /// The chip's containment status.
    pub fn status(&self) -> ChipStatus {
        match self {
            SealedChip::Retrained(_) => ChipStatus::Ok,
            SealedChip::Quarantined(_) => ChipStatus::Quarantined,
        }
    }
}

/// How the epoch-budget scheduler shares retraining across a batch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FleetStrategy {
    /// Every chip runs FAT from the pretrained baseline — the paper's
    /// Step ③ and the default.
    #[default]
    PerChip,
    /// eFAT (arXiv:2304.12949): chips in a batch are clustered by
    /// fault-map similarity; each cluster's highest-fault representative
    /// runs FAT from the pretrained baseline and the members warm-start
    /// from its converged state. The whole pipeline is constraint-aware —
    /// every chip stops the moment it meets the constraint (eFAT computes
    /// the *required* retraining, where Reduce spends the selected budget
    /// open-loop) — and the policy budget stays the upper bound.
    Clustered(ClusterConfig),
}

/// A source of chips addressed by stable id — the streaming intake of the
/// fleet evaluator.
///
/// Implementations must be pure: `chip(id)` returns the same chip every
/// call (the evaluator may re-pull a chip on retry or resume), and
/// `fault_rate(id)` equals `chip(id)?.fault_rate()`. Slices satisfy this
/// trivially; [`SeededChips`] regenerates chips from the fleet seed so a
/// 10⁶-chip fleet never exists in memory at once.
pub trait ChipSource: Sync {
    /// Number of chips in the fleet.
    fn len(&self) -> usize;

    /// Whether the fleet is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises chip `id`.
    ///
    /// # Errors
    ///
    /// Implementation-defined; ids in `0..len()` must succeed on a valid
    /// source.
    fn chip(&self, id: usize) -> Result<Chip>;

    /// The fault rate of chip `id` — ideally without materialising the
    /// chip (the scheduler calls this for every chip in a window before
    /// running any of them).
    ///
    /// # Errors
    ///
    /// Same domain as [`ChipSource::chip`].
    fn fault_rate(&self, id: usize) -> Result<f64> {
        Ok(self.chip(id)?.fault_rate())
    }
}

impl ChipSource for [Chip] {
    fn len(&self) -> usize {
        <[Chip]>::len(self)
    }

    fn chip(&self, id: usize) -> Result<Chip> {
        let chip = self.get(id).ok_or_else(|| ReduceError::InvalidConfig {
            what: format!(
                "chip id {id} outside fleet of {} chips",
                <[Chip]>::len(self)
            ),
        })?;
        if chip.id() != id {
            return Err(ReduceError::InvalidConfig {
                what: format!(
                    "slice chip sources must be in id order (found chip {} at index {id})",
                    chip.id()
                ),
            });
        }
        Ok(chip.clone())
    }

    fn fault_rate(&self, id: usize) -> Result<f64> {
        self.get(id)
            .map(Chip::fault_rate)
            .ok_or_else(|| ReduceError::InvalidConfig {
                what: format!(
                    "chip id {id} outside fleet of {} chips",
                    <[Chip]>::len(self)
                ),
            })
    }
}

impl ChipSource for &[Chip] {
    fn len(&self) -> usize {
        ChipSource::len(&**self)
    }

    fn chip(&self, id: usize) -> Result<Chip> {
        ChipSource::chip(&**self, id)
    }

    fn fault_rate(&self, id: usize) -> Result<f64> {
        ChipSource::fault_rate(&**self, id)
    }
}

impl ChipSource for Vec<Chip> {
    fn len(&self) -> usize {
        self.as_slice().len()
    }

    fn chip(&self, id: usize) -> Result<Chip> {
        ChipSource::chip(self.as_slice(), id)
    }

    fn fault_rate(&self, id: usize) -> Result<f64> {
        ChipSource::fault_rate(self.as_slice(), id)
    }
}

/// A [`ChipSource`] that regenerates each chip on demand from a
/// [`FleetConfig`] seed ([`reduce_systolic::generate_chip`]), so the fleet
/// is never materialised: the intake primitive behind
/// `fig3 --fleet-size 100000`.
#[derive(Debug, Clone)]
pub struct SeededChips {
    config: FleetConfig,
}

impl SeededChips {
    /// A streaming view of the fleet `config` describes.
    pub fn new(config: FleetConfig) -> Self {
        SeededChips { config }
    }

    /// The underlying fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }
}

impl ChipSource for SeededChips {
    fn len(&self) -> usize {
        self.config.chips
    }

    fn chip(&self, id: usize) -> Result<Chip> {
        Ok(generate_chip(&self.config, id)?)
    }

    fn fault_rate(&self, id: usize) -> Result<f64> {
        // The rate draw alone — no fault map is generated, so scheduling a
        // window costs O(window) RNG seeds, not O(window) fault maps.
        Ok(chip_rate(&self.config, id)?)
    }
}

/// Aggregate results of retraining a fleet under one policy.
///
/// The report is constant-size by construction — counts, a histogram and
/// streaming extrema — so evaluating 10⁶ chips needs no per-chip memory.
/// Per-chip [`ChipOutcome`]s appear in [`FleetReport::outcomes`] only when
/// [`FleetEvaluation::collect_outcomes`] requested them.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Policy label (for tables/figures).
    pub policy: String,
    /// The accuracy constraint evaluated against.
    pub constraint: f32,
    /// Number of successfully retrained chips (quarantined chips are
    /// counted separately).
    pub evaluated: usize,
    /// Chips quarantined after exhausting the retry budget, in scheduler
    /// order. Empty on a clean run.
    pub quarantined: Vec<QuarantinedChip>,
    /// Total retraining epochs spent across the fleet — the paper's
    /// overhead metric.
    pub total_epochs: usize,
    /// Number of chips meeting the constraint — the paper's robustness
    /// metric.
    pub satisfied: usize,
    /// Mean deployed accuracy (f64-accumulated in scheduler order).
    pub mean_accuracy: f32,
    /// Worst deployed accuracy.
    pub min_accuracy: f32,
    /// Best deployed accuracy.
    pub max_accuracy: f32,
    /// Epoch-spend histogram: `epochs_run → chips` — the streaming
    /// replacement for walking per-chip outcomes.
    pub epoch_histogram: BTreeMap<usize, usize>,
    /// Estimated retraining cycles on the accelerator (cost-model based),
    /// if a cost model was supplied.
    pub retrain_cycles: Option<u64>,
    /// Fault-similarity clusters formed across all batches (0 for
    /// [`FleetStrategy::PerChip`] runs).
    pub clusters: usize,
    /// Chips that warm-started from a cluster representative.
    pub warm_started: usize,
    /// Epochs the warm-started chips left unspent of their policy budgets
    /// — the eFAT savings metric (Σ budgeted − run over warm chips).
    pub warm_start_epochs_saved: usize,
    /// Per-chip outcomes in scheduler order, present only when
    /// [`FleetEvaluation::collect_outcomes`] was enabled — the one opt-in
    /// path back to O(fleet) memory.
    pub outcomes: Option<Vec<ChipOutcome>>,
}

impl FleetReport {
    /// Fraction of retrained chips meeting the constraint.
    pub fn yield_fraction(&self) -> f32 {
        if self.evaluated == 0 {
            return 0.0;
        }
        self.satisfied as f32 / self.evaluated as f32
    }

    /// Mean epochs per retrained chip.
    pub fn mean_epochs(&self) -> f32 {
        if self.evaluated == 0 {
            return 0.0;
        }
        self.total_epochs as f32 / self.evaluated as f32
    }

    /// Chip counts per containment status — the constant-size summary
    /// that replaced the per-chip status listing.
    pub fn status_counts(&self) -> [(ChipStatus, usize); 2] {
        [
            (ChipStatus::Ok, self.evaluated),
            (ChipStatus::Quarantined, self.quarantined.len()),
        ]
    }

    /// Number of chips quarantined after exhausting the retry budget.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }
}

/// One chip's slot in a scheduled batch.
#[derive(Debug, Clone)]
struct ChipPlan {
    id: usize,
    budget: usize,
    clamped: bool,
}

/// One scheduled batch: same-budget chips of one intake window sharing a
/// pooled workspace. `(window, budget, chunk)` is the batch's stable
/// identity in the journal.
#[derive(Debug, Clone)]
struct BatchPlan {
    window: usize,
    budget: usize,
    chunk: usize,
    members: Vec<ChipPlan>,
}

/// The sealed output of one batch, fresh or replayed.
struct BatchResult {
    clusters: Vec<Cluster>,
    chips: Vec<SealedChip>,
    workspace: WorkspaceStats,
    events: Vec<Event>,
}

/// Streaming accumulator behind [`FleetReport`] — absorbs sealed chips
/// one at a time in scheduler order.
struct ReportAccumulator {
    evaluated: usize,
    quarantined: Vec<QuarantinedChip>,
    total_epochs: usize,
    satisfied: usize,
    accuracy_sum: f64,
    min_accuracy: f32,
    max_accuracy: f32,
    epoch_histogram: BTreeMap<usize, usize>,
    clusters: usize,
    warm_started: usize,
    warm_start_epochs_saved: usize,
    outcomes: Option<Vec<ChipOutcome>>,
}

impl ReportAccumulator {
    fn new(collect_outcomes: bool) -> Self {
        ReportAccumulator {
            evaluated: 0,
            quarantined: Vec::new(),
            total_epochs: 0,
            satisfied: 0,
            accuracy_sum: 0.0,
            min_accuracy: f32::INFINITY,
            max_accuracy: f32::NEG_INFINITY,
            epoch_histogram: BTreeMap::new(),
            clusters: 0,
            warm_started: 0,
            warm_start_epochs_saved: 0,
            outcomes: collect_outcomes.then(Vec::new),
        }
    }

    fn absorb(&mut self, sealed: SealedChip) -> Result<()> {
        match sealed {
            SealedChip::Retrained(c) => {
                // FAT runs guard this at the source; re-check here so a
                // hand-edited journal can't slip a NaN into the
                // aggregates, where it would poison the mean and vanish
                // in `min` comparisons.
                if !c.final_accuracy.is_finite() {
                    return Err(ReduceError::Divergence {
                        what: format!("chip {} final accuracy is {}", c.chip_id, c.final_accuracy),
                    });
                }
                self.evaluated += 1;
                self.total_epochs += c.epochs_run;
                if c.meets_constraint {
                    self.satisfied += 1;
                }
                self.accuracy_sum += f64::from(c.final_accuracy);
                self.min_accuracy = self.min_accuracy.min(c.final_accuracy);
                self.max_accuracy = self.max_accuracy.max(c.final_accuracy);
                *self.epoch_histogram.entry(c.epochs_run).or_insert(0) += 1;
                if c.warm_started {
                    self.warm_started += 1;
                    self.warm_start_epochs_saved += c.epochs_budgeted.saturating_sub(c.epochs_run);
                }
                if let Some(outcomes) = &mut self.outcomes {
                    outcomes.push(c);
                }
            }
            SealedChip::Quarantined(q) => self.quarantined.push(q),
        }
        Ok(())
    }

    fn finish(self, policy: String, constraint: f32, retrain_cycles: Option<u64>) -> FleetReport {
        let mean_accuracy = if self.evaluated == 0 {
            0.0
        } else {
            (self.accuracy_sum / self.evaluated as f64) as f32
        };
        FleetReport {
            policy,
            constraint,
            evaluated: self.evaluated,
            quarantined: self.quarantined,
            total_epochs: self.total_epochs,
            satisfied: self.satisfied,
            mean_accuracy,
            min_accuracy: if self.min_accuracy.is_finite() {
                self.min_accuracy
            } else {
                0.0
            },
            max_accuracy: if self.max_accuracy.is_finite() {
                self.max_accuracy
            } else {
                0.0
            },
            epoch_histogram: self.epoch_histogram,
            retrain_cycles,
            clusters: self.clusters,
            warm_started: self.warm_started,
            warm_start_epochs_saved: self.warm_start_epochs_saved,
            outcomes: self.outcomes,
        }
    }
}

/// Builder for a streaming fleet evaluation — the single entry point that
/// replaced `evaluate_fleet` / `evaluate_fleet_resumable`.
///
/// # Examples
///
/// ```
/// use reduce_core::exec::ExecConfig;
/// use reduce_core::{FatRunner, FleetEvaluation, RetrainPolicy, SeededChips, Workbench};
/// use reduce_systolic::{FaultModel, FleetConfig, RateDistribution};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let workbench = Workbench::toy(1);
/// let pretrained = workbench.pretrain(5)?;
/// let runner = FatRunner::new(workbench)?;
/// let chips = SeededChips::new(FleetConfig {
///     chips: 3,
///     rows: 8,
///     cols: 8,
///     rates: RateDistribution::Fixed(0.1),
///     model: FaultModel::Random,
///     seed: 2,
/// });
/// let exec = ExecConfig::default();
/// let report = FleetEvaluation::new(RetrainPolicy::Fixed(1), 0.8)
///     .source(&chips)
///     .exec(&exec)
///     .run(&runner, &pretrained)?;
/// assert_eq!(report.total_epochs, 3);
/// # Ok(())
/// # }
/// ```
pub struct FleetEvaluation<'a> {
    policy: RetrainPolicy,
    constraint: f32,
    source: Option<&'a dyn ChipSource>,
    table: Option<&'a ResilienceTable>,
    strategy: Mitigation,
    fleet_strategy: FleetStrategy,
    early_stop: bool,
    cost_model: Option<CostModel>,
    seed: u64,
    window: usize,
    batch_cap: usize,
    journal: Option<&'a Checkpoint>,
    exec: Option<&'a ExecConfig>,
    collect_outcomes: bool,
}

impl<'a> FleetEvaluation<'a> {
    /// Default chips per intake window: the upper bound on scheduling
    /// state held at once.
    pub const DEFAULT_WINDOW: usize = 1024;

    /// Default chips per executor batch: bounds both a worker's pooled
    /// workspace lifetime and the size of one journal record.
    pub const DEFAULT_BATCH_CAP: usize = 32;

    /// A plain-FAP evaluation of `policy` against `constraint`; configure
    /// the rest with the builder methods and launch with
    /// [`FleetEvaluation::run`].
    pub fn new(policy: RetrainPolicy, constraint: f32) -> Self {
        FleetEvaluation {
            policy,
            constraint,
            source: None,
            table: None,
            strategy: Mitigation::Fap,
            fleet_strategy: FleetStrategy::PerChip,
            early_stop: false,
            cost_model: None,
            seed: 0xF1EE7,
            window: Self::DEFAULT_WINDOW,
            batch_cap: Self::DEFAULT_BATCH_CAP,
            journal: None,
            exec: None,
            collect_outcomes: false,
        }
    }

    /// The chip intake (required).
    #[must_use]
    pub fn source(mut self, source: &'a dyn ChipSource) -> Self {
        self.source = Some(source);
        self
    }

    /// The characterised resilience table (required by the Reduce
    /// policies, unused by Fixed).
    #[must_use]
    pub fn table(mut self, table: &'a ResilienceTable) -> Self {
        self.table = Some(table);
        self
    }

    /// Mitigation strategy (FAP per the paper; FAM as ablation).
    #[must_use]
    pub fn strategy(mut self, strategy: Mitigation) -> Self {
        self.strategy = strategy;
        self
    }

    /// Retraining-sharing strategy: per-chip FAT (the paper's Step ③,
    /// the default) or eFAT clustered warm-starting
    /// ([`FleetStrategy::Clustered`]). Clustered runs get a distinct
    /// policy label (`"… + eFAT"`), so their journal batches never
    /// collide with a per-chip run of the same policy.
    #[must_use]
    pub fn fleet_strategy(mut self, fleet_strategy: FleetStrategy) -> Self {
        self.fleet_strategy = fleet_strategy;
        self
    }

    /// Stop each chip's FAT as soon as its test accuracy reaches the
    /// constraint instead of spending the whole budget (the early-stop
    /// extension, ablation A5). The paper's Step ③ spends the budget
    /// exactly, so this defaults to `false`.
    #[must_use]
    pub fn early_stop(mut self, early_stop: bool) -> Self {
        self.early_stop = early_stop;
        self
    }

    /// Accelerator cost model for cycle accounting.
    #[must_use]
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = Some(cost_model);
        self
    }

    /// Per-chip run-seed base (decorrelates shuffling across chips).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chips per intake window (defaults to
    /// [`FleetEvaluation::DEFAULT_WINDOW`]); must be non-zero.
    #[must_use]
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Maximum chips per scheduled batch (defaults to
    /// [`FleetEvaluation::DEFAULT_BATCH_CAP`]); must be non-zero.
    #[must_use]
    pub fn batch_cap(mut self, batch_cap: usize) -> Self {
        self.batch_cap = batch_cap;
        self
    }

    /// Checkpoint journal for crash recovery: every sealed batch is
    /// appended, and batches already journaled under this policy are
    /// replayed bit-identically instead of re-run. Per-chip records from
    /// legacy (version 1) journals replay too, when a batch's chips are
    /// all present.
    #[must_use]
    pub fn journal(mut self, journal: &'a Checkpoint) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Executor configuration (threads, observer, retries, chaos);
    /// defaults to the sequential [`ExecConfig::default`].
    #[must_use]
    pub fn exec(mut self, exec: &'a ExecConfig) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Also collect per-chip [`ChipOutcome`]s into
    /// [`FleetReport::outcomes`] — the explicit opt-in to O(fleet) memory
    /// that per-chip tables and CSVs need.
    #[must_use]
    pub fn collect_outcomes(mut self, collect: bool) -> Self {
        self.collect_outcomes = collect;
        self
    }

    fn validated(&self) -> Result<&'a dyn ChipSource> {
        let reject = |what: String| ReduceError::InvalidConfig {
            what: format!("fleet evaluation rejected: {what}"),
        };
        let source = self
            .source
            .ok_or_else(|| reject("no chip source configured (call .source())".to_string()))?;
        if source.is_empty() {
            return Err(reject("empty fleet (zero chips)".to_string()));
        }
        if self.window == 0 {
            return Err(reject("zero intake window".to_string()));
        }
        if self.batch_cap == 0 {
            return Err(reject("zero batch cap".to_string()));
        }
        if !self.constraint.is_finite() || !(0.0..=1.0).contains(&self.constraint) {
            return Err(reject(format!(
                "constraint {} not in [0, 1]",
                self.constraint
            )));
        }
        if let FleetStrategy::Clustered(config) = &self.fleet_strategy {
            config
                .validate()
                .map_err(|e| reject(format!("invalid cluster config: {e}")))?;
        }
        Ok(source)
    }

    /// The evaluation's label: the policy label, suffixed for clustered
    /// runs. This is the key reports and journal batches carry.
    fn label(&self) -> String {
        match self.fleet_strategy {
            FleetStrategy::PerChip => self.policy.label(),
            FleetStrategy::Clustered(_) => format!("{} + eFAT", self.policy.label()),
        }
    }

    /// Retrains the whole fleet under the configured policy and streams
    /// the aggregate statistics of Fig. 3.
    ///
    /// Batches are distributed over `exec.threads` workers on the shared
    /// deterministic executor ([`crate::exec`]); outcomes are stitched
    /// back in scheduler order (window-major, then ascending budget,
    /// chunk and chip id), so the report and the flushed telemetry are
    /// byte-identical at any thread count and across resume splits.
    /// `exec`'s observer receives a `Deploy` stage pair plus per-epoch
    /// ticks and one [`Event::ChipRetrained`] per chip.
    ///
    /// # Errors
    ///
    /// [`ReduceError::InvalidConfig`] for a rejected configuration
    /// (missing source, empty fleet, zero window or batch cap, constraint
    /// outside `[0, 1]`, or a Reduce policy without a table), and
    /// propagates chip-generation and checkpoint-write failures. A chip
    /// whose FAT run fails or panics is retried up to
    /// `exec.retry_budget()` times with a deterministically derived
    /// reseed and then *quarantined* into [`FleetReport::quarantined`] —
    /// never fatal to the rest of the fleet.
    pub fn run(&self, runner: &FatRunner, pretrained: &Pretrained) -> Result<FleetReport> {
        let source = self.validated()?;
        let default_exec;
        let exec = match self.exec {
            Some(exec) => exec,
            None => {
                default_exec = ExecConfig::default();
                &default_exec
            }
        };
        let policy_label = self.label();
        let n = source.len();

        // Index the journal: batch-keyed records from this format, plus
        // chip-keyed records from legacy single-file journals.
        let mut replayed: BTreeMap<(usize, usize, usize), JournalRecord> = BTreeMap::new();
        let mut legacy: BTreeMap<usize, JournalRecord> = BTreeMap::new();
        if let Some(cp) = self.journal {
            for record in cp.records()? {
                if let Some((policy, window, budget, chunk)) = record.batch_key() {
                    if policy == policy_label {
                        replayed.insert((window, budget, chunk), record);
                    }
                } else if let Some((policy, chip_id)) = record.chip_key() {
                    if policy == policy_label {
                        legacy.insert(chip_id, record);
                    }
                }
            }
        }

        let accumulator = telemetry::timed_stage(exec.observer(), Stage::Deploy, || {
            let mut acc = ReportAccumulator::new(self.collect_outcomes);
            let mut stage_ws = WorkspaceStats::default();
            let mut window_index = 0usize;
            let mut start = 0usize;
            while start < n {
                let end = (start + self.window).min(n);
                let plans = self.schedule_window(source, window_index, start..end)?;
                self.run_window(
                    runner,
                    pretrained,
                    source,
                    exec,
                    &policy_label,
                    &plans,
                    &replayed,
                    &legacy,
                    &mut acc,
                    &mut stage_ws,
                )?;
                window_index += 1;
                start = end;
            }
            exec.observer().on_event(&Event::WorkspaceUsed {
                stage: Stage::Deploy,
                hits: stage_ws.hits,
                misses: stage_ws.misses,
                bytes_allocated: stage_ws.bytes_allocated,
            });
            if self.journal.is_some() {
                exec.observer().on_event(&Event::CheckpointWritten {
                    stage: Stage::Deploy,
                    completed: n,
                });
            }
            Ok::<_, ReduceError>(acc)
        })?;

        let retrain_cycles = match &self.cost_model {
            Some(cm) => {
                let wb = runner.workbench();
                let shapes = wb.model.gemm_shapes(wb.train.batch_size)?;
                let samples = runner.train_data().len();
                let per_epoch = cm.epoch_cycles(&shapes, samples, wb.train.batch_size)?;
                Some(per_epoch * accumulator.total_epochs as u64)
            }
            None => None,
        };
        Ok(accumulator.finish(policy_label, self.constraint, retrain_cycles))
    }

    /// The scheduling pass for one window: select a budget for every chip
    /// (from its fault rate alone — no fault maps are generated), group
    /// by budget, and chunk each group at the batch cap. The result is a
    /// pure function of the config, independent of threads and resume
    /// state — the property batch replay keys on.
    fn schedule_window(
        &self,
        source: &dyn ChipSource,
        window: usize,
        ids: std::ops::Range<usize>,
    ) -> Result<Vec<BatchPlan>> {
        let mut groups: BTreeMap<usize, Vec<ChipPlan>> = BTreeMap::new();
        for id in ids {
            let rate = source.fault_rate(id)?;
            let selection = self.policy.epochs_for_chip(self.table, rate)?;
            groups.entry(selection.epochs).or_default().push(ChipPlan {
                id,
                budget: selection.epochs,
                clamped: selection.clamped,
            });
        }
        let mut plans = Vec::new();
        for (budget, members) in groups {
            for (chunk, slice) in members.chunks(self.batch_cap).enumerate() {
                plans.push(BatchPlan {
                    window,
                    budget,
                    chunk,
                    members: slice.to_vec(),
                });
            }
        }
        Ok(plans)
    }

    /// Executes one window's batches (replaying journaled ones) and
    /// stitches their outputs into the accumulator in scheduler order.
    #[allow(clippy::too_many_arguments)] // internal plumbing of one call site
    fn run_window(
        &self,
        runner: &FatRunner,
        pretrained: &Pretrained,
        source: &dyn ChipSource,
        exec: &ExecConfig,
        policy_label: &str,
        plans: &[BatchPlan],
        replayed: &BTreeMap<(usize, usize, usize), JournalRecord>,
        legacy: &BTreeMap<usize, JournalRecord>,
        acc: &mut ReportAccumulator,
        stage_ws: &mut WorkspaceStats,
    ) -> Result<()> {
        // Partition into journal-replayable and fresh batches.
        let fresh: Vec<&BatchPlan> = plans
            .iter()
            .filter(|plan| {
                replayed
                    .get(&(plan.window, plan.budget, plan.chunk))
                    .is_none()
                    && !plan.members.iter().all(|m| legacy.contains_key(&m.id))
            })
            .collect();
        let fresh_results = exec::parallel_map(&fresh, exec.threads, |_, plan| {
            self.run_batch(runner, pretrained, source, exec, policy_label, plan)
        })?;
        let mut fresh_iter = fresh_results.into_iter();
        for plan in plans {
            let result = if let Some(record) = replayed.get(&(plan.window, plan.budget, plan.chunk))
            {
                replay_batch(record)?
            } else if plan.members.iter().all(|m| legacy.contains_key(&m.id)) {
                replay_legacy_batch(plan, legacy)?
            } else {
                fresh_iter.next().ok_or_else(|| ReduceError::Internal {
                    invariant: "every scheduled batch is either replayed or freshly run"
                        .to_string(),
                })?
            };
            for event in &result.events {
                exec.observer().on_event(event);
            }
            stage_ws.merge(&result.workspace);
            acc.clusters += result.clusters.len();
            for sealed in result.chips {
                acc.absorb(sealed)?;
            }
        }
        Ok(())
    }

    /// Runs one batch of same-budget chips through a shared workspace
    /// pool, seals every chip (retrained or quarantined) and journals the
    /// batch. Runs on an executor worker; all telemetry is buffered into
    /// the result for in-order flushing.
    fn run_batch(
        &self,
        runner: &FatRunner,
        pretrained: &Pretrained,
        source: &dyn ChipSource,
        exec: &ExecConfig,
        policy_label: &str,
        plan: &BatchPlan,
    ) -> Result<BatchResult> {
        let pool = RefCell::new(Workspace::new());
        let (clusters, chips, events) = match &self.fleet_strategy {
            FleetStrategy::PerChip => {
                let mut events = Vec::new();
                let mut chips = Vec::with_capacity(plan.members.len());
                for member in &plan.members {
                    let chip = source.chip(member.id)?;
                    let sealed = self.seal_chip(
                        runner,
                        &pretrained.state,
                        exec,
                        member,
                        &chip,
                        None,
                        &pool,
                        &mut events,
                    )?;
                    chips.push(sealed.0);
                }
                (Vec::new(), chips, events)
            }
            FleetStrategy::Clustered(config) => {
                self.run_clustered_batch(runner, pretrained, source, exec, plan, config, &pool)?
            }
        };
        let workspace = pool.borrow().stats();
        if let Some(cp) = self.journal {
            cp.append(JournalRecord::FleetBatch {
                policy: policy_label.to_string(),
                window: plan.window,
                budget: plan.budget,
                chunk: plan.chunk,
                clusters: clusters.clone(),
                chips: chips.clone(),
                workspace,
                events: events.clone(),
            })?;
        }
        Ok(BatchResult {
            clusters,
            chips,
            workspace,
            events,
        })
    }

    /// The eFAT batch path: cluster the batch's chips by fault-map
    /// similarity, run each cluster's representative cold (full FAT from
    /// the pretrained baseline), then warm-start the members from the
    /// representative's converged state.
    ///
    /// Output normalisation keeps the per-chip journal invariant and the
    /// determinism contract: sealed chips and their buffered events come
    /// out in ascending chip-id order (not cluster execution order),
    /// preceded by one [`Event::ClusterFormed`] per cluster in leader
    /// order. A quarantined representative demotes its members to cold
    /// per-chip runs — containment never cascades through a cluster.
    #[allow(clippy::too_many_arguments)] // internal plumbing of one call site
    fn run_clustered_batch(
        &self,
        runner: &FatRunner,
        pretrained: &Pretrained,
        source: &dyn ChipSource,
        exec: &ExecConfig,
        plan: &BatchPlan,
        config: &ClusterConfig,
        pool: &RefCell<Workspace>,
    ) -> Result<(Vec<Cluster>, Vec<SealedChip>, Vec<Event>)> {
        // Batches are bounded by the batch cap, so materialising the
        // batch's chips (fault maps included) is O(batch_cap), not
        // O(fleet).
        let mut batch_chips = Vec::with_capacity(plan.members.len());
        for member in &plan.members {
            batch_chips.push(source.chip(member.id)?);
        }
        let pairs: Vec<(usize, &FaultMap)> = batch_chips
            .iter()
            .map(|chip| (chip.id(), chip.fault_map()))
            .collect();
        let clusters = cluster_fault_maps(&pairs, config)?;
        let plan_of: BTreeMap<usize, &ChipPlan> = plan.members.iter().map(|m| (m.id, m)).collect();
        let chip_of: BTreeMap<usize, &Chip> = batch_chips.iter().map(|c| (c.id(), c)).collect();
        let member_of = |id: usize| -> Result<(&ChipPlan, &Chip)> {
            match (plan_of.get(&id), chip_of.get(&id)) {
                (Some(member), Some(chip)) => Ok((member, chip)),
                _ => Err(ReduceError::Internal {
                    invariant: "clusters partition the batch's members".to_string(),
                }),
            }
        };
        let mut events = Vec::with_capacity(clusters.len());
        let mut sealed_by_id: BTreeMap<usize, SealedChip> = BTreeMap::new();
        let mut events_by_id: BTreeMap<usize, Vec<Event>> = BTreeMap::new();
        for cluster in &clusters {
            events.push(Event::ClusterFormed {
                representative: cluster.representative,
                size: cluster.size(),
            });
            let (rep_member, rep_chip) = member_of(cluster.representative)?;
            let mut rep_events = Vec::new();
            let (rep_sealed, rep_state) = self.seal_chip(
                runner,
                &pretrained.state,
                exec,
                rep_member,
                rep_chip,
                None,
                pool,
                &mut rep_events,
            )?;
            sealed_by_id.insert(cluster.representative, rep_sealed);
            events_by_id.insert(cluster.representative, rep_events);
            for &member_id in &cluster.members {
                let (member, chip) = member_of(member_id)?;
                let mut member_events = Vec::new();
                // A quarantined representative leaves no converged state:
                // its members run cold, exactly as in a per-chip batch.
                let warm = rep_state
                    .as_ref()
                    .map(|state| (state.as_slice(), cluster.representative));
                let (member_sealed, _) = self.seal_chip(
                    runner,
                    warm.map_or(&pretrained.state, |(state, _)| state),
                    exec,
                    member,
                    chip,
                    warm.map(|(_, rep)| rep),
                    pool,
                    &mut member_events,
                )?;
                sealed_by_id.insert(member_id, member_sealed);
                events_by_id.insert(member_id, member_events);
            }
        }
        for (_, chip_events) in events_by_id {
            events.extend(chip_events);
        }
        Ok((clusters, sealed_by_id.into_values().collect(), events))
    }

    /// Runs one chip resiliently (retry/chaos/quarantine) and seals its
    /// fate, returning the converged state of a successful run so cluster
    /// representatives can donate it to their members.
    #[allow(clippy::too_many_arguments)] // internal plumbing of two call sites
    fn seal_chip(
        &self,
        runner: &FatRunner,
        base_state: &[(String, Tensor)],
        exec: &ExecConfig,
        member: &ChipPlan,
        chip: &Chip,
        warm_from: Option<usize>,
        pool: &RefCell<Workspace>,
        events: &mut Vec<Event>,
    ) -> Result<(SealedChip, Option<ModelState>)> {
        // Job ids are the chip ids — stable across batching, clustering
        // and resume subsetting, so retry salts and chaos decisions are
        // per-chip properties, independent of scheduling.
        let report = exec::run_job_resilient(
            member.id as u64,
            chip,
            exec,
            Stage::Deploy,
            &|_, chip: &Chip, salt, job_events: &mut Vec<Event>| {
                self.retrain_chip_pooled(
                    runner, base_state, member, chip, salt, warm_from, pool, job_events,
                )
            },
        )?;
        events.extend(report.events);
        match report.status {
            JobStatus::Ok((outcome, state)) => Ok((SealedChip::Retrained(outcome), Some(state))),
            JobStatus::Quarantined { attempts, error } => Ok((
                SealedChip::Quarantined(QuarantinedChip {
                    chip_id: member.id,
                    fault_rate: chip.fault_rate(),
                    attempts,
                    error,
                }),
                None,
            )),
        }
    }

    /// Steps ②+③ for one chip, training out of the batch's shared
    /// workspace pool. `base_state` is the pretrained baseline for cold
    /// runs or a cluster representative's converged state when
    /// `warm_from` names the donor; warm runs stop at the constraint (the
    /// eFAT savings mechanism) while cold runs follow the early-stop
    /// setting. Returns the outcome together with the converged state.
    #[allow(clippy::too_many_arguments)] // internal plumbing of one call site
    fn retrain_chip_pooled(
        &self,
        runner: &FatRunner,
        base_state: &[(String, Tensor)],
        member: &ChipPlan,
        chip: &Chip,
        salt: u64,
        warm_from: Option<usize>,
        pool: &RefCell<Workspace>,
        events: &mut Vec<Event>,
    ) -> Result<(ChipOutcome, ModelState)> {
        let rate = chip.fault_rate();
        // The clustered pipeline is constraint-aware end to end: eFAT
        // computes the *required* retraining per chip, so representatives
        // and warm-started members alike stop the moment the constraint
        // is met — unlike Reduce's open-loop budget spending, which only
        // stops early when the user opts in.
        let clustered = matches!(self.fleet_strategy, FleetStrategy::Clustered(_));
        let stop = if clustered || warm_from.is_some() || self.early_stop {
            StopRule::AtAccuracy(self.constraint)
        } else {
            StopRule::Exact
        };
        if let Some(representative) = warm_from {
            events.push(Event::WarmStartHit {
                chip_id: chip.id(),
                representative,
            });
        }
        let mut pool = pool.borrow_mut();
        let mut outcome = runner.run_warm_pooled_observed(
            base_state,
            chip.fault_map(),
            member.budget,
            stop,
            self.strategy,
            // `salt` is 0 on the first attempt; retries re-randomise the
            // chip's training shuffle without touching its fault map.
            self.seed.wrapping_add(chip.id() as u64) ^ salt,
            &mut pool,
            &mut |epoch, accuracy| {
                events.push(Event::EpochCompleted {
                    scope: EpochScope::Chip { chip_id: chip.id() },
                    epoch,
                    accuracy,
                });
            },
        )?;
        outcome.ensure_finite()?;
        let final_accuracy = outcome.final_accuracy();
        events.push(Event::ChipRetrained {
            chip_id: chip.id(),
            fault_rate: rate,
            epochs_budgeted: member.budget,
            epochs_run: outcome.epochs_run(),
            final_accuracy,
            satisfied: final_accuracy >= self.constraint,
        });
        let chip_outcome = ChipOutcome {
            chip_id: chip.id(),
            fault_rate: rate,
            epochs_budgeted: member.budget,
            epochs_run: outcome.epochs_run(),
            pre_retrain_accuracy: outcome.pre_retrain_accuracy,
            final_accuracy,
            meets_constraint: final_accuracy >= self.constraint,
            pruned_fraction: outcome.pruned_fraction,
            clamped: member.clamped,
            warm_started: warm_from.is_some(),
        };
        Ok((chip_outcome, std::mem::take(&mut outcome.final_state)))
    }
}

/// Reconstructs a batch's output from its journal record.
fn replay_batch(record: &JournalRecord) -> Result<BatchResult> {
    match record {
        JournalRecord::FleetBatch {
            clusters,
            chips,
            workspace,
            events,
            ..
        } => Ok(BatchResult {
            clusters: clusters.clone(),
            chips: chips.clone(),
            workspace: *workspace,
            events: events.clone(),
        }),
        _ => Err(ReduceError::Internal {
            invariant: "batch-keyed journal records are fleet-batch records".to_string(),
        }),
    }
}

/// Reconstructs a batch's output from legacy per-chip (version 1) journal
/// records; callable only when every member chip is journaled. Workspace
/// counters reflect the original unpooled runs.
fn replay_legacy_batch(
    plan: &BatchPlan,
    legacy: &BTreeMap<usize, JournalRecord>,
) -> Result<BatchResult> {
    let mut chips = Vec::with_capacity(plan.members.len());
    let mut workspace = WorkspaceStats::default();
    let mut events = Vec::new();
    for member in &plan.members {
        match legacy.get(&member.id) {
            Some(JournalRecord::Chip {
                outcome,
                workspace: ws,
                events: chip_events,
                ..
            }) => {
                events.extend(chip_events.iter().cloned());
                workspace.merge(ws);
                chips.push(SealedChip::Retrained(outcome.clone()));
            }
            Some(JournalRecord::ChipFailed {
                chip_id,
                fault_rate,
                attempts,
                error,
                events: chip_events,
                ..
            }) => {
                events.extend(chip_events.iter().cloned());
                chips.push(SealedChip::Quarantined(QuarantinedChip {
                    chip_id: *chip_id,
                    fault_rate: *fault_rate,
                    attempts: *attempts,
                    error: error.clone(),
                }));
            }
            _ => {
                return Err(ReduceError::Internal {
                    invariant: "chip-keyed journal records are chip records".to_string(),
                })
            }
        }
    }
    Ok(BatchResult {
        clusters: Vec::new(),
        chips,
        workspace,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{Statistic, TableEntry};
    use crate::workbench::Workbench;
    use reduce_systolic::{generate_fleet, FaultModel, RateDistribution};

    fn fleet_config() -> FleetConfig {
        FleetConfig {
            chips: 6,
            rows: 8,
            cols: 8,
            rates: RateDistribution::Uniform { lo: 0.0, hi: 0.25 },
            model: FaultModel::Random,
            seed: 5,
        }
    }

    fn setup() -> (FatRunner, Pretrained, Vec<Chip>) {
        let wb = Workbench::toy(21);
        let pre = wb.pretrain(12).expect("valid workbench");
        let runner = FatRunner::new(wb).expect("valid workbench");
        let fleet = generate_fleet(&fleet_config()).expect("valid fleet");
        (runner, pre, fleet)
    }

    fn table() -> ResilienceTable {
        ResilienceTable::from_entries(
            vec![
                TableEntry {
                    rate: 0.0,
                    mean_epochs: 0.0,
                    max_epochs: 0,
                },
                TableEntry {
                    rate: 0.25,
                    mean_epochs: 3.0,
                    max_epochs: 5,
                },
            ],
            8,
        )
        .expect("non-empty")
    }

    #[test]
    fn fixed_policy_charges_every_chip_equally() {
        let (runner, pre, fleet) = setup();
        let report = FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
            .source(&fleet)
            .run(&runner, &pre)
            .expect("valid run");
        assert_eq!(report.evaluated, 6);
        assert_eq!(report.epoch_histogram, BTreeMap::from([(2, 6)]));
        assert_eq!(report.total_epochs, 12);
        assert_eq!(report.policy, "Fixed (2 epochs)");
        assert_eq!(report.outcomes, None, "per-chip memory is opt-in");
    }

    #[test]
    fn reduce_policy_scales_epochs_with_fault_rate() {
        let (runner, pre, fleet) = setup();
        let t = table();
        let report = FleetEvaluation::new(RetrainPolicy::Reduce(Statistic::Max), 0.85)
            .source(&fleet)
            .table(&t)
            .collect_outcomes(true)
            .run(&runner, &pre)
            .expect("valid run");
        // Chips with higher fault rates get more epochs (monotone table).
        let mut sorted = report.outcomes.clone().expect("collected");
        sorted.sort_by(|a, b| a.fault_rate.partial_cmp(&b.fault_rate).expect("finite"));
        for pair in sorted.windows(2) {
            assert!(pair[0].epochs_budgeted <= pair[1].epochs_budgeted);
        }
        // A clean chip costs nothing.
        if let Some(clean) = sorted.iter().find(|c| c.fault_rate == 0.0) {
            assert_eq!(clean.epochs_run, 0);
        }
    }

    #[test]
    fn reduce_spends_less_than_fixed_high_for_same_yield_level() {
        let (runner, pre, fleet) = setup();
        let t = table();
        let constraint = 0.85;
        let reduce = FleetEvaluation::new(RetrainPolicy::Reduce(Statistic::Max), constraint)
            .source(&fleet)
            .table(&t)
            .run(&runner, &pre)
            .expect("valid run");
        let fixed_high = FleetEvaluation::new(RetrainPolicy::Fixed(5), constraint)
            .source(&fleet)
            .run(&runner, &pre)
            .expect("valid run");
        assert!(
            reduce.total_epochs < fixed_high.total_epochs,
            "Reduce ({}) should be cheaper than Fixed-5 ({})",
            reduce.total_epochs,
            fixed_high.total_epochs
        );
    }

    #[test]
    fn report_aggregates() {
        let (runner, pre, fleet) = setup();
        let report = FleetEvaluation::new(RetrainPolicy::Fixed(1), 0.5)
            .source(&fleet)
            .collect_outcomes(true)
            .run(&runner, &pre)
            .expect("valid run");
        assert!(report.yield_fraction() > 0.0);
        assert!((report.mean_epochs() - 1.0).abs() < 1e-6);
        assert!(report.min_accuracy <= report.mean_accuracy);
        assert!(report.mean_accuracy <= report.max_accuracy);
        let outcomes = report.outcomes.as_ref().expect("collected");
        assert_eq!(
            report.satisfied,
            outcomes.iter().filter(|c| c.meets_constraint).count()
        );
        assert_eq!(
            report.status_counts(),
            [(ChipStatus::Ok, 6), (ChipStatus::Quarantined, 0)]
        );
        assert_eq!(
            report.epoch_histogram.values().sum::<usize>(),
            report.evaluated
        );
    }

    #[test]
    fn cycle_accounting_present_with_cost_model() {
        let (runner, pre, fleet) = setup();
        let report = FleetEvaluation::new(RetrainPolicy::Fixed(1), 0.5)
            .source(&fleet)
            .cost_model(CostModel::small(8, 8))
            .run(&runner, &pre)
            .expect("valid run");
        let cycles = report.retrain_cycles.expect("cost model supplied");
        assert!(cycles > 0);
        // Double the epochs, double the cycles.
        let report2 = FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.5)
            .source(&fleet)
            .cost_model(CostModel::small(8, 8))
            .run(&runner, &pre)
            .expect("valid run");
        assert_eq!(
            report2.retrain_cycles.expect("cost model supplied"),
            2 * cycles
        );
    }

    #[test]
    fn early_stop_fleet_never_spends_more() {
        let (runner, pre, fleet) = setup();
        let exact = FleetEvaluation::new(RetrainPolicy::Fixed(4), 0.85)
            .source(&fleet)
            .run(&runner, &pre)
            .expect("valid run");
        let stopped = FleetEvaluation::new(RetrainPolicy::Fixed(4), 0.85)
            .source(&fleet)
            .early_stop(true)
            .collect_outcomes(true)
            .run(&runner, &pre)
            .expect("valid run");
        assert!(stopped.total_epochs <= exact.total_epochs);
        // Early stop only stops *after* the constraint is met, so yield
        // cannot be worse.
        assert!(stopped.satisfied >= exact.satisfied.saturating_sub(1));
        for c in stopped.outcomes.as_ref().expect("collected") {
            assert!(c.epochs_run <= c.epochs_budgeted);
        }
    }

    #[test]
    fn parallel_fleet_matches_sequential() {
        let (runner, pre, fleet) = setup();
        let seq = FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
            .source(&fleet)
            .collect_outcomes(true)
            .run(&runner, &pre)
            .expect("valid run");
        // 0 auto-sizes from the hardware; the report must still match.
        for threads in [0usize, 1, 2, 4] {
            let exec = ExecConfig::new(threads);
            let par = FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
                .source(&fleet)
                .collect_outcomes(true)
                .exec(&exec)
                .run(&runner, &pre)
                .expect("valid run");
            assert_eq!(par, seq, "{threads}-thread report differs from sequential");
        }
    }

    #[test]
    fn window_and_batch_partitioning_do_not_change_the_report() {
        let (runner, pre, fleet) = setup();
        let baseline = FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
            .source(&fleet)
            .collect_outcomes(true)
            .run(&runner, &pre)
            .expect("valid run");
        for (window, batch_cap) in [(1usize, 1usize), (2, 1), (4, 2), (100, 3)] {
            let report = FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
                .source(&fleet)
                .window(window)
                .batch_cap(batch_cap)
                .collect_outcomes(true)
                .run(&runner, &pre)
                .expect("valid run");
            assert_eq!(
                report, baseline,
                "window {window} / batch {batch_cap} changed the report"
            );
        }
    }

    #[test]
    fn streaming_source_matches_materialised_fleet() {
        let (runner, pre, fleet) = setup();
        let materialised = FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
            .source(&fleet)
            .collect_outcomes(true)
            .run(&runner, &pre)
            .expect("valid run");
        let seeded = SeededChips::new(fleet_config());
        let streamed = FleetEvaluation::new(RetrainPolicy::Fixed(2), 0.85)
            .source(&seeded)
            .collect_outcomes(true)
            .run(&runner, &pre)
            .expect("valid run");
        assert_eq!(streamed, materialised);
    }

    #[test]
    fn unprotected_execution_is_catastrophic() {
        let (runner, pre, _) = setup();
        // A mere 5% of stuck-at-saturated PEs without FAP...
        let map =
            reduce_systolic::FaultMap::generate(8, 8, 0.05, reduce_systolic::FaultModel::Random, 3)
                .expect("valid rate");
        let unprotected = runner
            .unprotected_accuracy(&pre, &map, 8.0)
            .expect("valid run");
        // ...versus the same chip under FAP bypass.
        let fap = runner
            .run(
                &pre,
                &map,
                0,
                crate::fat::StopRule::Exact,
                Mitigation::Fap,
                0,
            )
            .expect("valid run")
            .pre_retrain_accuracy;
        assert!(
            unprotected < fap - 0.1,
            "stuck-at faults should be much worse than bypass: {unprotected} vs {fap}"
        );
    }

    #[test]
    fn reduce_without_table_fails() {
        let (runner, pre, fleet) = setup();
        assert!(
            FleetEvaluation::new(RetrainPolicy::Reduce(Statistic::Max), 0.85)
                .source(&fleet)
                .run(&runner, &pre)
                .is_err()
        );
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (runner, pre, fleet) = setup();
        let rejected = |eval: FleetEvaluation| {
            let err = eval.run(&runner, &pre).expect_err("must reject");
            assert!(
                err.to_string().contains("fleet evaluation rejected"),
                "unexpected error: {err}"
            );
        };
        rejected(FleetEvaluation::new(RetrainPolicy::Fixed(1), 0.5));
        let empty: Vec<Chip> = Vec::new();
        rejected(FleetEvaluation::new(RetrainPolicy::Fixed(1), 0.5).source(&empty));
        rejected(
            FleetEvaluation::new(RetrainPolicy::Fixed(1), 0.5)
                .source(&fleet)
                .window(0),
        );
        rejected(
            FleetEvaluation::new(RetrainPolicy::Fixed(1), 0.5)
                .source(&fleet)
                .batch_cap(0),
        );
        rejected(FleetEvaluation::new(RetrainPolicy::Fixed(1), 1.5).source(&fleet));
        rejected(FleetEvaluation::new(RetrainPolicy::Fixed(1), f32::NAN).source(&fleet));
        rejected(
            FleetEvaluation::new(RetrainPolicy::Fixed(1), 0.5)
                .source(&fleet)
                .fleet_strategy(FleetStrategy::Clustered(ClusterConfig {
                    threshold: 2.0,
                    ..ClusterConfig::default()
                })),
        );
    }

    #[test]
    fn clustered_strategy_saves_epochs_at_equal_or_better_yield() {
        let (runner, pre, fleet) = setup();
        let constraint = 0.5;
        let per_chip = FleetEvaluation::new(RetrainPolicy::Fixed(3), constraint)
            .source(&fleet)
            .collect_outcomes(true)
            .run(&runner, &pre)
            .expect("valid run");
        let clustered = FleetEvaluation::new(RetrainPolicy::Fixed(3), constraint)
            .source(&fleet)
            .fleet_strategy(FleetStrategy::Clustered(ClusterConfig::default()))
            .collect_outcomes(true)
            .run(&runner, &pre)
            .expect("valid run");
        assert_eq!(clustered.policy, "Fixed (3 epochs) + eFAT");
        assert!(clustered.clusters > 0, "batch formed no clusters");
        assert!(
            clustered.warm_started > 0,
            "default config should merge same-band 8x8 maps into shared clusters"
        );
        // The eFAT claim: warm-started members stop at the constraint, so
        // the fleet spends strictly fewer epochs without losing yield.
        assert!(
            clustered.total_epochs < per_chip.total_epochs,
            "clustered ({}) should undercut per-chip ({})",
            clustered.total_epochs,
            per_chip.total_epochs
        );
        assert!(clustered.satisfied >= per_chip.satisfied);
        let outcomes = clustered.outcomes.as_ref().expect("collected");
        let saved: usize = outcomes
            .iter()
            .filter(|c| c.warm_started)
            .map(|c| c.epochs_budgeted - c.epochs_run)
            .sum();
        assert_eq!(clustered.warm_start_epochs_saved, saved);
        assert_eq!(
            clustered.warm_started,
            outcomes.iter().filter(|c| c.warm_started).count()
        );
        assert_eq!(per_chip.clusters, 0);
        assert_eq!(per_chip.warm_started, 0);
    }

    #[test]
    fn cluster_assignment_is_invariant_across_thread_counts() {
        let (runner, pre, fleet) = setup();
        let baseline = FleetEvaluation::new(RetrainPolicy::Fixed(3), 0.5)
            .source(&fleet)
            .fleet_strategy(FleetStrategy::Clustered(ClusterConfig::default()))
            .collect_outcomes(true)
            .run(&runner, &pre)
            .expect("valid run");
        for threads in [1usize, 2, 8] {
            let exec = ExecConfig::new(threads);
            let report = FleetEvaluation::new(RetrainPolicy::Fixed(3), 0.5)
                .source(&fleet)
                .fleet_strategy(FleetStrategy::Clustered(ClusterConfig::default()))
                .collect_outcomes(true)
                .exec(&exec)
                .run(&runner, &pre)
                .expect("valid run");
            assert_eq!(
                report, baseline,
                "{threads}-thread clustered report differs from sequential"
            );
        }
    }

    #[test]
    fn clustered_batches_replay_from_the_journal() {
        let (runner, pre, fleet) = setup();
        let path = std::env::temp_dir()
            .join(format!("reduce_fleet_cluster_{}", std::process::id()))
            .join("journal.jsonl");
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
        let eval = |journal: &Checkpoint| {
            FleetEvaluation::new(RetrainPolicy::Fixed(3), 0.5)
                .source(&fleet)
                .fleet_strategy(FleetStrategy::Clustered(ClusterConfig::default()))
                .collect_outcomes(true)
                .journal(journal)
                .run(&runner, &pre)
                .expect("valid run")
        };
        let journal = Checkpoint::create(&path);
        let fresh = eval(&journal);
        // A resumed run finds every batch journaled and replays it; the
        // report — cluster and warm-start accounting included — must be
        // indistinguishable from the fresh run.
        let resumed = Checkpoint::create(&path);
        let replayed = eval(&resumed);
        assert_eq!(replayed, fresh);
        assert!(replayed.clusters > 0, "replay dropped cluster accounting");
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}
