//! Fault-aware training (FAT) — Step ③ of the Reduce pipeline, and the
//! engine behind the Step ① resilience characterisation.
//!
//! Given a pre-trained DNN and a chip's fault map, the runner derives the
//! FAP pruning masks the chip's bypassed PEs induce on every GEMM weight
//! matrix, installs them, and retrains the masked network so the surviving
//! weights compensate — evaluating test accuracy after every epoch so
//! callers can reason about *epochs-to-accuracy*.

use crate::error::{ReduceError, Result};
use crate::workbench::{Pretrained, Workbench};
use reduce_data::Dataset;
use reduce_nn::{Sequential, Workspace, WorkspaceStats};
use reduce_systolic::{fam_mapping, fap_mask, FaultMap};
use reduce_tensor::Tensor;

/// Which fault-mitigation mapping derives the masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mitigation {
    /// Fault-aware pruning: the identity mapping of Zhang et al. — weights
    /// land where they land, faulty PEs zero them. (The paper's setting.)
    #[default]
    Fap,
    /// Fault-aware mapping (SalvageDNN): permute output channels so the
    /// least-salient weights land on faulty columns before pruning.
    Fam,
}

/// The result of fault-aware-retraining one chip.
#[derive(Debug, Clone)]
pub struct FatOutcome {
    /// Test accuracy after masking but before any retraining (i.e. plain
    /// FAP, or FAM for the [`Mitigation::Fam`] strategy).
    pub pre_retrain_accuracy: f32,
    /// Test accuracy after each completed FAT epoch.
    pub accuracy_after_epoch: Vec<f32>,
    /// Fraction of all GEMM weights pruned by the chip's fault map.
    pub pruned_fraction: f32,
    /// Final masked weights (deployable to the chip).
    pub final_state: Vec<(String, Tensor)>,
    /// Allocation counters of the run's model workspace: after the warm-up
    /// iteration every additional epoch is served entirely from pooled
    /// buffers, so `misses`/`bytes_allocated` are independent of the epoch
    /// budget.
    pub workspace: WorkspaceStats,
}

impl FatOutcome {
    /// Test accuracy after all executed epochs (the deployed accuracy).
    ///
    /// Outcomes produced by [`FatRunner::run`] are guaranteed finite (the
    /// runner fails with [`ReduceError::Divergence`] otherwise); callers
    /// constructing outcomes by hand should run [`FatOutcome::ensure_finite`]
    /// before aggregating.
    pub fn final_accuracy(&self) -> f32 {
        self.accuracy_after_epoch
            .last()
            .copied()
            .unwrap_or(self.pre_retrain_accuracy)
    }

    /// Errors if any recorded accuracy is non-finite.
    ///
    /// NaN compares false against every constraint, so a diverged run would
    /// otherwise read as "constraint never reached" in
    /// [`FatOutcome::epochs_to_reach`] and poison fleet aggregates silently.
    /// This surfaces it as a typed [`ReduceError::Divergence`] instead.
    ///
    /// # Errors
    ///
    /// [`ReduceError::Divergence`] naming the first non-finite quantity.
    pub fn ensure_finite(&self) -> Result<()> {
        if !self.pre_retrain_accuracy.is_finite() {
            return Err(ReduceError::Divergence {
                what: format!("pre-retrain accuracy is {}", self.pre_retrain_accuracy),
            });
        }
        for (i, &a) in self.accuracy_after_epoch.iter().enumerate() {
            if !a.is_finite() {
                return Err(ReduceError::Divergence {
                    what: format!("accuracy after epoch {} is {a}", i + 1),
                });
            }
        }
        Ok(())
    }

    /// The smallest number of epochs after which accuracy reached
    /// `constraint` (0 = met before retraining), or `None` if it never did
    /// within the executed epochs.
    ///
    /// Assumes finite accuracies (see [`FatOutcome::ensure_finite`]): a NaN
    /// would compare false here and masquerade as an unmet constraint.
    pub fn epochs_to_reach(&self, constraint: f32) -> Option<usize> {
        if self.pre_retrain_accuracy >= constraint {
            return Some(0);
        }
        self.accuracy_after_epoch
            .iter()
            .position(|&a| a >= constraint)
            .map(|i| i + 1)
    }

    /// Number of FAT epochs actually executed.
    pub fn epochs_run(&self) -> usize {
        self.accuracy_after_epoch.len()
    }
}

/// Early-stop behaviour of a FAT run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Run exactly the budgeted number of epochs (deployment mode — the
    /// selected retraining amount is spent as planned).
    Exact,
    /// Stop as soon as test accuracy reaches the constraint
    /// (characterisation mode measures the full curve instead; this rule
    /// exists for the early-stop ablation).
    AtAccuracy(f32),
}

/// Drives fault-aware retraining for one workbench.
///
/// Construction materialises the datasets once; every [`FatRunner::run`]
/// then builds a fresh model, loads the pre-trained weights, installs the
/// chip's masks and retrains.
///
/// # Examples
///
/// ```
/// use reduce_core::{FatRunner, Mitigation, StopRule, Workbench};
/// use reduce_systolic::{FaultMap, FaultModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let workbench = Workbench::toy(1);
/// let pretrained = workbench.pretrain(5)?;
/// let runner = FatRunner::new(workbench)?;
/// let chip = FaultMap::generate(8, 8, 0.15, FaultModel::Random, 2)?;
/// let outcome = runner.run(&pretrained, &chip, 2, StopRule::Exact, Mitigation::Fap, 0)?;
/// assert_eq!(outcome.epochs_run(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FatRunner {
    workbench: Workbench,
    train: Dataset,
    test: Dataset,
    weight_dims: Vec<(usize, usize)>,
}

impl FatRunner {
    /// Creates a runner, materialising the workbench datasets.
    ///
    /// # Errors
    ///
    /// Propagates dataset/model construction errors.
    pub fn new(workbench: Workbench) -> Result<Self> {
        let (train, test) = workbench.datasets()?;
        let weight_dims = workbench.model.weight_dims(workbench.seed)?;
        Ok(FatRunner {
            workbench,
            train,
            test,
            weight_dims,
        })
    }

    /// The workbench this runner executes.
    pub fn workbench(&self) -> &Workbench {
        &self.workbench
    }

    /// The training split.
    pub fn train_data(&self) -> &Dataset {
        &self.train
    }

    /// The held-out test split.
    pub fn test_data(&self) -> &Dataset {
        &self.test
    }

    /// `(out, in)` dims of the model's maskable GEMM weights.
    pub fn weight_dims(&self) -> &[(usize, usize)] {
        &self.weight_dims
    }

    /// Derives per-weight masks for `fault_map` under `strategy`.
    ///
    /// For [`Mitigation::Fam`] the saliency permutation is computed from
    /// the *pre-trained* weights in `model`.
    ///
    /// # Errors
    ///
    /// Rejects a fault map whose geometry does not match the workbench's
    /// systolic array (a wrong-sized map would otherwise mask the wrong
    /// weight tiles, or panic on an out-of-range index deep inside the
    /// mapping); propagates mapping errors.
    pub fn derive_masks(
        &self,
        model: &Sequential,
        fault_map: &FaultMap,
        strategy: Mitigation,
    ) -> Result<Vec<Option<Tensor>>> {
        let (rows, cols) = self.workbench.array_dims();
        if (fault_map.rows(), fault_map.cols()) != (rows, cols) {
            return Err(reduce_systolic::SystolicError::BadGeometry {
                reason: format!(
                    "fault map is {}x{} but the workbench targets a {rows}x{cols} array",
                    fault_map.rows(),
                    fault_map.cols()
                ),
            }
            .into());
        }
        let mut masks = Vec::with_capacity(self.weight_dims.len());
        match strategy {
            Mitigation::Fap => {
                for &(out, inp) in &self.weight_dims {
                    masks.push(Some(fap_mask(out, inp, fault_map)?));
                }
            }
            Mitigation::Fam => {
                for p in model.weight_params() {
                    masks.push(Some(fam_mapping(p.value(), fault_map)?.mask));
                }
            }
        }
        Ok(masks)
    }

    /// Restores the pre-trained model and installs the chip's masks,
    /// returning the masked model and its pruned weight fraction.
    ///
    /// Loading the state dict is O(1) per parameter: the returned model's
    /// tensors *share* the pretrained snapshot's copy-on-write storage, so
    /// every concurrent FAT run (executor threads fan chips/grid cells out
    /// over this method) reads the same immutable pretrained buffers.
    /// Applying the masks is the first write and therefore the CoW trigger
    /// — masked weights un-share privately while untouched parameters
    /// (biases, norm scales) keep aliasing the snapshot for the run's
    /// lifetime.
    ///
    /// # Errors
    ///
    /// Propagates build/load/mask errors.
    pub fn masked_model(
        &self,
        pretrained: &Pretrained,
        fault_map: &FaultMap,
        strategy: Mitigation,
    ) -> Result<(Sequential, f32)> {
        self.masked_model_from_state(&pretrained.state, fault_map, strategy)
    }

    /// [`FatRunner::masked_model`] starting from an arbitrary state dict —
    /// the warm-start entry point. The eFAT scheduler passes a cluster
    /// representative's converged [`FatOutcome::final_state`] here, which is
    /// keyed exactly like [`Pretrained::state`] (`"{layer}.{param}"`), so
    /// members begin retraining from the representative's weights instead
    /// of the pretrained baseline. The same CoW sharing applies: the state
    /// dict's storage is aliased until the member's masks un-share the
    /// weights.
    ///
    /// # Errors
    ///
    /// Propagates build/load/mask errors.
    pub fn masked_model_from_state(
        &self,
        base_state: &[(String, Tensor)],
        fault_map: &FaultMap,
        strategy: Mitigation,
    ) -> Result<(Sequential, f32)> {
        let mut model = self.workbench.model.build(self.workbench.seed)?;
        model.load_state_dict(base_state)?;
        let masks = self.derive_masks(&model, fault_map, strategy)?;
        model.set_weight_masks(&masks)?;
        let (mut pruned, mut total) = (0usize, 0usize);
        for p in model.weight_params() {
            if let Some(m) = p.mask() {
                pruned += m.data().iter().filter(|&&v| v == 0.0).count();
                total += m.len();
            }
        }
        let fraction = if total == 0 {
            0.0
        } else {
            pruned as f32 / total as f32
        };
        Ok((model, fraction))
    }

    /// Evaluates the pre-trained model under **unprotected** execution:
    /// every weight on a faulty PE reads as `stuck_value` (no FAP bypass,
    /// no retraining).
    ///
    /// This reproduces the motivation for the whole mitigation stack:
    /// without FAP even a small fault fraction is catastrophic, because a
    /// stuck register contributes an arbitrary saturated value instead of
    /// zero.
    ///
    /// # Errors
    ///
    /// Propagates build/evaluation errors.
    pub fn unprotected_accuracy(
        &self,
        pretrained: &Pretrained,
        fault_map: &FaultMap,
        stuck_value: f32,
    ) -> Result<f32> {
        let mut model = self.workbench.model.build(self.workbench.seed)?;
        model.load_state_dict(&pretrained.state)?;
        for p in model.weight_params_mut() {
            let corrupted = reduce_systolic::stuck_at_weights(p.value(), fault_map, stuck_value)?;
            p.load_value(corrupted)?;
        }
        let mut model = model;
        Ok(self.workbench.evaluate(&mut model, &self.test)?.accuracy)
    }

    /// Refreshes batch-norm running statistics of a (typically just-masked)
    /// model by streaming the training set through it in train mode,
    /// `passes` times, without any weight updates.
    ///
    /// Masking shifts every layer's activation statistics; a
    /// batch-normalised network evaluated against its *pre-mask* running
    /// statistics collapses far below its true post-pruning accuracy. One
    /// or two recalibration passes repair this at the cost of `passes`
    /// forward epochs.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn recalibrate_statistics(&self, model: &mut Sequential, passes: usize) -> Result<()> {
        use reduce_nn::layers::Mode;
        let features = self.train.features();
        let dims = features.dims();
        let n = dims.first().copied().unwrap_or(0);
        let stride: usize = dims.iter().skip(1).product();
        let batch = self.workbench.train.batch_size.max(1);
        for _ in 0..passes {
            let mut start = 0usize;
            while start < n {
                let end = (start + batch).min(n);
                let mut batch_dims = dims.to_vec();
                if let Some(lead) = batch_dims.first_mut() {
                    *lead = end - start;
                }
                // Borrow the batch buffer from the model's workspace instead
                // of allocating a fresh Vec per batch; take() hands back a
                // uniquely-owned tensor, so data_mut() cannot deep-copy.
                let mut bx = model.workspace_mut().take(batch_dims);
                let slice = features
                    .data()
                    .get(start * stride..end * stride)
                    .ok_or_else(|| ReduceError::Internal {
                        invariant: "batch range lies within the feature buffer".to_string(),
                    })?;
                bx.data_mut().copy_from_slice(slice);
                let y = model.forward(&bx, Mode::Train)?;
                model.workspace_mut().give(bx);
                model.workspace_mut().give(y);
                start = end;
            }
        }
        Ok(())
    }

    /// Runs fault-aware retraining for one chip.
    ///
    /// `max_epochs` bounds the retraining budget; with
    /// [`StopRule::AtAccuracy`] the run ends as soon as the constraint is
    /// met. `run_seed` decouples this run's shuffling from other chips'.
    /// If the workbench configures BN recalibration, it happens between
    /// masking and the first evaluation.
    ///
    /// # Errors
    ///
    /// Propagates training/evaluation errors.
    pub fn run(
        &self,
        pretrained: &Pretrained,
        fault_map: &FaultMap,
        max_epochs: usize,
        stop: StopRule,
        strategy: Mitigation,
        run_seed: u64,
    ) -> Result<FatOutcome> {
        self.run_observed(
            pretrained,
            fault_map,
            max_epochs,
            stop,
            strategy,
            run_seed,
            &mut |_, _| {},
        )
    }

    /// [`FatRunner::run`] with an epoch tick: `on_epoch(epoch, accuracy)`
    /// is called after each completed retraining epoch (1-based), which is
    /// how the telemetry layer's `EpochCompleted` events originate. The
    /// callback cannot influence the run — results are identical to
    /// [`FatRunner::run`].
    ///
    /// # Errors
    ///
    /// Propagates training/evaluation errors.
    #[allow(clippy::too_many_arguments)] // mirrors `run` plus the tick
    pub fn run_observed(
        &self,
        pretrained: &Pretrained,
        fault_map: &FaultMap,
        max_epochs: usize,
        stop: StopRule,
        strategy: Mitigation,
        run_seed: u64,
        on_epoch: &mut dyn FnMut(usize, f32),
    ) -> Result<FatOutcome> {
        self.run_inner(
            &pretrained.state,
            fault_map,
            max_epochs,
            stop,
            strategy,
            run_seed,
            None,
            on_epoch,
        )
    }

    /// Runs fault-aware retraining *warm-started* from an arbitrary state
    /// dict (eFAT: a cluster representative's converged
    /// [`FatOutcome::final_state`]) instead of the pretrained baseline.
    ///
    /// Semantics otherwise match [`FatRunner::run`]; with
    /// [`StopRule::AtAccuracy`] a member whose warm-started accuracy
    /// already meets the constraint spends zero retraining epochs — the
    /// source of eFAT's aggregate savings.
    ///
    /// # Errors
    ///
    /// Propagates training/evaluation errors.
    pub fn run_warm(
        &self,
        base_state: &[(String, Tensor)],
        fault_map: &FaultMap,
        max_epochs: usize,
        stop: StopRule,
        strategy: Mitigation,
        run_seed: u64,
    ) -> Result<FatOutcome> {
        self.run_inner(
            base_state,
            fault_map,
            max_epochs,
            stop,
            strategy,
            run_seed,
            None,
            &mut |_, _| {},
        )
    }

    /// [`FatRunner::run_warm`] with a shared workspace pool and an epoch
    /// tick — the warm-start analogue of
    /// [`FatRunner::run_pooled_observed`], used by the clustered fleet
    /// scheduler for member chips.
    ///
    /// # Errors
    ///
    /// Propagates training/evaluation errors.
    #[allow(clippy::too_many_arguments)] // mirrors `run_pooled_observed`
    pub fn run_warm_pooled_observed(
        &self,
        base_state: &[(String, Tensor)],
        fault_map: &FaultMap,
        max_epochs: usize,
        stop: StopRule,
        strategy: Mitigation,
        run_seed: u64,
        pool: &mut Workspace,
        on_epoch: &mut dyn FnMut(usize, f32),
    ) -> Result<FatOutcome> {
        self.run_inner(
            base_state,
            fault_map,
            max_epochs,
            stop,
            strategy,
            run_seed,
            Some(pool),
            on_epoch,
        )
    }

    /// [`FatRunner::run_observed`] sharing a caller-owned workspace arena:
    /// the epoch-budget scheduler runs a whole batch of same-budget chips
    /// through one pool, so only the first chip of a batch pays the
    /// warm-up allocations and every later chip trains entirely from
    /// recycled buffers.
    ///
    /// The pool is swapped into the model for the duration of the run and
    /// swapped back out before returning, with all the chip's allocation
    /// traffic accumulated into the pool's counters — so
    /// [`FatOutcome::workspace`] is left at zero and the caller reads the
    /// batch total from [`reduce_nn::Workspace::stats`] once per batch.
    /// Accuracy results are bit-identical to the unpooled runner:
    /// recycled buffers are zeroed on `take`, so numerics never observe
    /// the pool.
    ///
    /// If the run fails (divergence, injected chaos) the model — holding
    /// the swapped-in arena — is dropped with it, and the pool is left
    /// holding an empty arena; the next chip in the batch simply warms it
    /// up again. The loss is deterministic because failures are.
    ///
    /// # Errors
    ///
    /// Propagates training/evaluation errors.
    #[allow(clippy::too_many_arguments)] // mirrors `run_observed` plus the pool
    pub fn run_pooled_observed(
        &self,
        pretrained: &Pretrained,
        fault_map: &FaultMap,
        max_epochs: usize,
        stop: StopRule,
        strategy: Mitigation,
        run_seed: u64,
        pool: &mut Workspace,
        on_epoch: &mut dyn FnMut(usize, f32),
    ) -> Result<FatOutcome> {
        self.run_inner(
            &pretrained.state,
            fault_map,
            max_epochs,
            stop,
            strategy,
            run_seed,
            Some(pool),
            on_epoch,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &self,
        base_state: &[(String, Tensor)],
        fault_map: &FaultMap,
        max_epochs: usize,
        stop: StopRule,
        strategy: Mitigation,
        run_seed: u64,
        mut pool: Option<&mut Workspace>,
        on_epoch: &mut dyn FnMut(usize, f32),
    ) -> Result<FatOutcome> {
        let (mut model, pruned_fraction) =
            self.masked_model_from_state(base_state, fault_map, strategy)?;
        if let Some(pool) = pool.as_deref_mut() {
            std::mem::swap(model.workspace_mut(), pool);
        }
        if self.workbench.bn_recalibration_passes > 0 {
            self.recalibrate_statistics(&mut model, self.workbench.bn_recalibration_passes)?;
        }
        let pre = self.workbench.evaluate(&mut model, &self.test)?.accuracy;
        if !pre.is_finite() {
            return Err(ReduceError::Divergence {
                what: format!("pre-retrain accuracy is {pre}"),
            });
        }
        let mut outcome = FatOutcome {
            pre_retrain_accuracy: pre,
            accuracy_after_epoch: Vec::with_capacity(max_epochs),
            pruned_fraction,
            final_state: Vec::new(),
            workspace: WorkspaceStats::default(),
        };
        let met_before_retraining = matches!(stop, StopRule::AtAccuracy(c) if pre >= c);
        if !met_before_retraining {
            let mut trainer = self.workbench.fat_trainer(run_seed);
            for epoch in 1..=max_epochs {
                trainer.train_epoch(&mut model, self.train.features(), self.train.labels())?;
                let acc = self.workbench.evaluate(&mut model, &self.test)?.accuracy;
                if !acc.is_finite() {
                    return Err(ReduceError::Divergence {
                        what: format!("accuracy after epoch {epoch} is {acc}"),
                    });
                }
                outcome.accuracy_after_epoch.push(acc);
                on_epoch(epoch, acc);
                if let StopRule::AtAccuracy(c) = stop {
                    if acc >= c {
                        break;
                    }
                }
            }
            debug_assert!(model.mask_invariants_hold(), "FAT broke the mask invariant");
            if !model.mask_invariants_hold() {
                return Err(ReduceError::InvalidConfig {
                    what: "mask invariant violated after FAT".to_string(),
                });
            }
        }
        outcome.final_state = model.state_dict();
        match pool {
            // Pooled runs hand their allocation traffic back to the shared
            // arena; the batch accounts it once via `Workspace::stats`.
            Some(pool) => std::mem::swap(model.workspace_mut(), pool),
            None => outcome.workspace = model.workspace_stats(),
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reduce_systolic::FaultModel;

    fn runner() -> (FatRunner, Pretrained) {
        let wb = Workbench::toy(11);
        let pre = wb.pretrain(12).expect("valid workbench");
        (FatRunner::new(wb).expect("valid workbench"), pre)
    }

    fn map(rate: f64, seed: u64) -> FaultMap {
        FaultMap::generate(8, 8, rate, FaultModel::Random, seed).expect("valid rate")
    }

    #[test]
    fn faults_hurt_and_retraining_recovers() {
        let (runner, pre) = runner();
        let heavy = map(0.25, 1);
        let out = runner
            .run(&pre, &heavy, 10, StopRule::Exact, Mitigation::Fap, 0)
            .expect("valid run");
        assert!(
            out.pre_retrain_accuracy < pre.baseline_accuracy - 0.03,
            "25% faults should hurt: {} vs baseline {}",
            out.pre_retrain_accuracy,
            pre.baseline_accuracy
        );
        assert!(
            out.final_accuracy() > out.pre_retrain_accuracy + 0.02,
            "retraining should recover: {} -> {}",
            out.pre_retrain_accuracy,
            out.final_accuracy()
        );
        assert!(out.pruned_fraction > 0.15);
        assert_eq!(out.epochs_run(), 10);
    }

    #[test]
    fn fault_free_chip_needs_no_retraining() {
        let (runner, pre) = runner();
        let clean = map(0.0, 2);
        let out = runner
            .run(&pre, &clean, 3, StopRule::Exact, Mitigation::Fap, 0)
            .expect("valid run");
        assert!((out.pre_retrain_accuracy - pre.baseline_accuracy).abs() < 1e-6);
        assert_eq!(out.pruned_fraction, 0.0);
        assert_eq!(out.epochs_to_reach(pre.baseline_accuracy), Some(0));
    }

    #[test]
    fn early_stop_saves_epochs() {
        let (runner, pre) = runner();
        let light = map(0.05, 3);
        let constraint = pre.baseline_accuracy - 0.05;
        let exact = runner
            .run(&pre, &light, 8, StopRule::Exact, Mitigation::Fap, 0)
            .expect("valid run");
        let stopped = runner
            .run(
                &pre,
                &light,
                8,
                StopRule::AtAccuracy(constraint),
                Mitigation::Fap,
                0,
            )
            .expect("valid run");
        assert!(stopped.epochs_run() <= exact.epochs_run());
        if let Some(k) = stopped.epochs_to_reach(constraint) {
            assert_eq!(stopped.epochs_run(), k);
        }
    }

    #[test]
    fn epochs_to_reach_semantics() {
        let out = FatOutcome {
            pre_retrain_accuracy: 0.5,
            accuracy_after_epoch: vec![0.6, 0.8, 0.9],
            pruned_fraction: 0.1,
            final_state: Vec::new(),
            workspace: WorkspaceStats::default(),
        };
        assert_eq!(out.epochs_to_reach(0.4), Some(0));
        assert_eq!(out.epochs_to_reach(0.75), Some(2));
        assert_eq!(out.epochs_to_reach(0.95), None);
        assert_eq!(out.final_accuracy(), 0.9);
    }

    #[test]
    fn mismatched_fault_map_geometry_is_a_typed_error() {
        let (runner, pre) = runner();
        // The toy workbench targets an 8x8 array; hand it a 4x4 map.
        let wrong = FaultMap::generate(4, 4, 0.1, FaultModel::Random, 1).expect("valid rate");
        let err = runner
            .run(&pre, &wrong, 1, StopRule::Exact, Mitigation::Fap, 0)
            .expect_err("geometry mismatch must be rejected");
        match err {
            ReduceError::Systolic(reduce_systolic::SystolicError::BadGeometry { reason }) => {
                assert!(reason.contains("4x4"), "reason names the map: {reason}");
                assert!(reason.contains("8x8"), "reason names the array: {reason}");
            }
            other => panic!("expected BadGeometry, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_accuracies_are_typed_divergence_errors() {
        let nan_pre = FatOutcome {
            pre_retrain_accuracy: f32::NAN,
            accuracy_after_epoch: vec![0.5],
            pruned_fraction: 0.1,
            final_state: Vec::new(),
            workspace: WorkspaceStats::default(),
        };
        match nan_pre.ensure_finite() {
            Err(ReduceError::Divergence { what }) => {
                assert!(what.contains("pre-retrain"), "what: {what}");
            }
            other => panic!("expected Divergence, got {other:?}"),
        }
        let nan_epoch = FatOutcome {
            pre_retrain_accuracy: 0.5,
            accuracy_after_epoch: vec![0.6, f32::INFINITY],
            pruned_fraction: 0.1,
            final_state: Vec::new(),
            workspace: WorkspaceStats::default(),
        };
        match nan_epoch.ensure_finite() {
            Err(ReduceError::Divergence { what }) => {
                assert!(what.contains("epoch 2"), "what: {what}");
            }
            other => panic!("expected Divergence, got {other:?}"),
        }
        // NaN would otherwise masquerade as "constraint never reached":
        assert_eq!(nan_epoch.epochs_to_reach(0.55), Some(1));
        let healthy = FatOutcome {
            pre_retrain_accuracy: 0.5,
            accuracy_after_epoch: vec![0.6],
            pruned_fraction: 0.1,
            final_state: Vec::new(),
            workspace: WorkspaceStats::default(),
        };
        healthy.ensure_finite().expect("finite outcome passes");
    }

    #[test]
    fn runs_are_deterministic() {
        let (runner, pre) = runner();
        let m = map(0.1, 4);
        let a = runner
            .run(&pre, &m, 3, StopRule::Exact, Mitigation::Fap, 9)
            .expect("valid run");
        let b = runner
            .run(&pre, &m, 3, StopRule::Exact, Mitigation::Fap, 9)
            .expect("valid run");
        assert_eq!(a.accuracy_after_epoch, b.accuracy_after_epoch);
    }

    #[test]
    fn fam_pre_retrain_is_no_worse_on_average() {
        let (runner, pre) = runner();
        let mut fap_total = 0.0f32;
        let mut fam_total = 0.0f32;
        for seed in 0..5 {
            let m = map(0.2, 100 + seed);
            let fap = runner
                .run(&pre, &m, 0, StopRule::Exact, Mitigation::Fap, 0)
                .expect("valid run");
            let fam = runner
                .run(&pre, &m, 0, StopRule::Exact, Mitigation::Fam, 0)
                .expect("valid run");
            fap_total += fap.pre_retrain_accuracy;
            fam_total += fam.pre_retrain_accuracy;
        }
        assert!(
            fam_total >= fap_total - 0.05,
            "FAM ({fam_total}) much worse than FAP ({fap_total}) across seeds"
        );
    }

    #[test]
    fn masked_models_share_pretrained_storage_until_masked() {
        let (runner, pre) = runner();
        let m = map(0.2, 8);
        let (model, _) = runner
            .masked_model(&pre, &m, Mitigation::Fap)
            .expect("valid");
        let state = model.state_dict();
        assert_eq!(state.len(), pre.state.len());
        let (mut shared, mut unshared) = (0usize, 0usize);
        for ((name, t), (pre_name, pre_t)) in state.iter().zip(pre.state.iter()) {
            assert_eq!(name, pre_name);
            if t.shares_storage(pre_t) {
                shared += 1;
            } else {
                unshared += 1;
            }
        }
        // Installing the masks writes every GEMM weight (the CoW trigger),
        // un-sharing exactly those tensors; every other parameter still
        // aliases the single immutable pretrained snapshot.
        assert_eq!(unshared, runner.weight_dims().len());
        assert!(
            shared > 0,
            "non-weight parameters keep sharing the snapshot"
        );
    }

    #[test]
    fn two_masked_models_do_not_alias_each_other() {
        let (runner, pre) = runner();
        let (a, _) = runner
            .masked_model(&pre, &map(0.2, 8), Mitigation::Fap)
            .expect("valid");
        let (b, _) = runner
            .masked_model(&pre, &map(0.2, 9), Mitigation::Fap)
            .expect("valid");
        for ((_, ta), (_, tb)) in a.state_dict().iter().zip(b.state_dict().iter()) {
            if !ta.shares_storage(tb) {
                // Weights un-shared independently per chip: mutating one
                // model must never leak into the other.
                assert_ne!(
                    ta.data().as_ptr(),
                    tb.data().as_ptr(),
                    "un-shared weights must live in distinct buffers"
                );
            }
        }
    }

    #[test]
    fn steady_state_fat_epochs_are_allocation_free() {
        let (runner, pre) = runner();
        let m = map(0.1, 9);
        let short = runner
            .run(&pre, &m, 1, StopRule::Exact, Mitigation::Fap, 3)
            .expect("valid run");
        let long = runner
            .run(&pre, &m, 4, StopRule::Exact, Mitigation::Fap, 3)
            .expect("valid run");
        assert!(long.workspace.requests() > short.workspace.requests());
        assert_eq!(
            long.workspace.misses, short.workspace.misses,
            "epochs beyond warm-up must be served from the workspace pool"
        );
        assert_eq!(
            long.workspace.bytes_allocated, short.workspace.bytes_allocated,
            "epochs beyond warm-up must not allocate"
        );
    }

    #[test]
    fn masked_model_reports_pruned_fraction() {
        let (runner, pre) = runner();
        let m = map(0.25, 5);
        let (_, frac) = runner
            .masked_model(&pre, &m, Mitigation::Fap)
            .expect("valid");
        // Weight dims are multiples related to the 8x8 array; fraction
        // should be near the fault rate.
        assert!((frac - 0.25).abs() < 0.1, "fraction {frac}");
    }

    #[test]
    fn bn_recalibration_repairs_masked_statistics() {
        use crate::workbench::{ModelSpec, TaskSpec};
        use reduce_data::SynthImageConfig;
        use reduce_nn::models::VggConfig;
        // A tiny batch-normalised CNN on a small image task.
        let mut vgg = VggConfig::nano(4);
        vgg.input_hw = 8;
        vgg.width = 2;
        let mut images = SynthImageConfig::cifar_like(120, 0);
        images.classes = 4;
        images.hw = 8;
        let mut wb = Workbench::toy(301);
        wb.model = ModelSpec::Vgg(vgg);
        wb.task = TaskSpec::SynthImages {
            config: images,
            train_samples: 120,
            test_samples: 80,
        };
        let pre = wb.pretrain(6).expect("valid workbench");

        let stale_runner = FatRunner::new(wb.clone()).expect("valid workbench");
        let m = FaultMap::generate(8, 8, 0.15, FaultModel::Random, 3).expect("valid rate");
        let stale = stale_runner
            .run(&pre, &m, 0, StopRule::Exact, Mitigation::Fap, 0)
            .expect("valid run");

        wb.bn_recalibration_passes = 2;
        let recal_runner = FatRunner::new(wb).expect("valid workbench");
        let recal = recal_runner
            .run(&pre, &m, 0, StopRule::Exact, Mitigation::Fap, 0)
            .expect("valid run");
        assert!(
            recal.pre_retrain_accuracy >= stale.pre_retrain_accuracy - 0.02,
            "recalibration made things worse: {} vs stale {}",
            recal.pre_retrain_accuracy,
            stale.pre_retrain_accuracy
        );
    }

    #[test]
    fn recalibration_is_noop_for_bn_free_models() {
        let (runner, pre) = runner();
        let m = map(0.1, 7);
        let (mut model, _) = runner
            .masked_model(&pre, &m, Mitigation::Fap)
            .expect("valid");
        let before = runner
            .workbench()
            .evaluate(&mut model, runner.test_data())
            .expect("valid")
            .accuracy;
        runner
            .recalibrate_statistics(&mut model, 3)
            .expect("forward passes run");
        let after = runner
            .workbench()
            .evaluate(&mut model, runner.test_data())
            .expect("valid")
            .accuracy;
        assert_eq!(before, after, "BN-free model must be unaffected");
    }

    #[test]
    fn warm_start_resumes_from_the_donor_state() {
        let (runner, pre) = runner();
        let m = map(0.2, 12);
        // Representative: full FAT from the pretrained baseline.
        let rep = runner
            .run(&pre, &m, 6, StopRule::Exact, Mitigation::Fap, 0)
            .expect("valid run");
        // A zero-epoch warm run on the same fault map re-evaluates the
        // representative's converged state exactly.
        let warm = runner
            .run_warm(&rep.final_state, &m, 0, StopRule::Exact, Mitigation::Fap, 1)
            .expect("valid run");
        assert_eq!(
            warm.pre_retrain_accuracy,
            rep.final_accuracy(),
            "warm start must pick up where the donor finished"
        );
        // Warm-starting from the donor begins at or near its converged
        // accuracy; cold-starting the same chip begins at the masked
        // pretrained accuracy, which retraining had to climb from.
        let cold = runner
            .run(&pre, &m, 0, StopRule::Exact, Mitigation::Fap, 1)
            .expect("valid run");
        assert!(
            warm.pre_retrain_accuracy >= cold.pre_retrain_accuracy,
            "warm {} must not start below cold {}",
            warm.pre_retrain_accuracy,
            cold.pre_retrain_accuracy
        );
    }

    #[test]
    fn warm_start_meets_constraint_without_spending_epochs() {
        let (runner, pre) = runner();
        let m = map(0.15, 13);
        let rep = runner
            .run(&pre, &m, 6, StopRule::Exact, Mitigation::Fap, 0)
            .expect("valid run");
        let constraint = rep.final_accuracy() - 0.01;
        let member = runner
            .run_warm(
                &rep.final_state,
                &m,
                6,
                StopRule::AtAccuracy(constraint),
                Mitigation::Fap,
                2,
            )
            .expect("valid run");
        assert_eq!(
            member.epochs_run(),
            0,
            "a member whose warm accuracy meets the constraint spends nothing"
        );
        assert_eq!(member.epochs_to_reach(constraint), Some(0));
    }

    #[test]
    fn zero_epoch_run_returns_pre_accuracy_only() {
        let (runner, pre) = runner();
        let m = map(0.1, 6);
        let out = runner
            .run(&pre, &m, 0, StopRule::Exact, Mitigation::Fap, 0)
            .expect("valid run");
        assert!(out.accuracy_after_epoch.is_empty());
        assert_eq!(out.final_accuracy(), out.pre_retrain_accuracy);
        assert!(!out.final_state.is_empty());
    }
}
