//! Checkpoint journal — the pipeline's crash-recovery log.
//!
//! A [`Checkpoint`] records every *sealed* job outcome (a finished grid
//! cell, retrained chip, or fleet batch, successful or quarantined) as one
//! framed JSON line. The current (version 3) format splits the journal
//! into fixed-size *shard* segments: `journal.jsonl` holds only a one-line
//! manifest naming the shard size and each sealed shard's whole-file
//! digest, and records live in `journal-00000.jsonl`,
//! `journal-00001.jsonl`, … files beside it. Each append atomically
//! rewrites only the active shard (through
//! [`crate::artifact::write_atomic`]), so the I/O cost of sealing a job is
//! bounded by the shard size — not by the total number of records — while
//! a killed process still always leaves a complete, parseable journal: the
//! worst case loses the in-flight jobs, never corrupts the finished ones.
//!
//! # Version-3 integrity framing
//!
//! Every v3 line is framed as `CCCCCCCC LEN JSON\n`: eight lowercase hex
//! digits of the payload's CRC-32 (IEEE), the payload's byte length in
//! decimal, one space, and the JSON payload. A sealed shard ends with a
//! framed footer `{"footer":"reduce-shard","records":N}` asserting its
//! record count, and the (itself framed) manifest records each sealed
//! shard's whole-file CRC-32 digest. The shard is sealed on disk *before*
//! the manifest names it, so a crash between the two leaves a footered
//! shard the manifest lags behind — resume detects and heals that without
//! data loss. A single flipped or lost byte anywhere in a v3 journal is
//! therefore *detected* (frame length, frame CRC, footer count, or
//! manifest digest), never silently replayed.
//!
//! # Self-healing resume
//!
//! [`Checkpoint::resume`] (and [`Checkpoint::resume_observed`], which
//! reports healing through a [`crate::telemetry::Observer`]) verifies the
//! journal on open. Damage confined to the journal's *tail* — a torn
//! final shard write, trailing garbage, a detected bitflip with no valid
//! record after it — is healed by truncating back to the last valid
//! record, emitting [`Event::ShardTruncated`] / [`Event::RecordDropped`]
//! (one per discarded record slot, not per damaged line), and the dropped
//! jobs are simply recomputed. Damage in the *middle* — where truncation
//! would silently discard valid completed work after the damage — is a
//! typed [`ReduceError::JournalCorrupt`] naming the shard, record, and
//! [`crate::error::CorruptKind`]; `journal-tool repair`
//! ([`repair_journal`]) performs the explicit truncation. Two whole-file
//! checks are treated the same way: a sealed shard whose content digest
//! disagrees with the manifest (every record may verify individually, but
//! the content is not what the manifest committed to — repair adopts it
//! and recomputes the digest), and an unreadable manifest whose shard
//! files contain no v3-framed line at all (a corrupted v1/v2 journal, or
//! not a journal — never adopted and truncated as an empty v3 one).
//! Resume never panics on journal bytes and never replays a record that
//! fails verification.
//!
//! Version-1 journals (a single header-prefixed file rewritten whole on
//! every append) and version-2 journals (unframed shards) are still read,
//! healed, and extended transparently in their own layouts: resume
//! detects the header and keeps the journal in the format it was created
//! with. For v1/v2, record validity means "parses as a journal record" —
//! a bitflip that keeps the JSON valid is undetectable there, which is
//! precisely why v3 adds the CRC framing.
//!
//! On `--resume`, [`Checkpoint::resume`] reloads the journal and the
//! resumable entry points ([`crate::ResilienceAnalysis::run_resumable`],
//! [`crate::FleetEvaluation::run`]) replay the recorded outcomes —
//! including their buffered telemetry events, re-emitted bit-identically —
//! and compute only the missing jobs. Records carry the stable job id the
//! retry/chaos layer keys on, so a resumed run salts and injects exactly
//! like an uninterrupted one.
//!
//! Journal lines are written in *completion* order, which depends on
//! thread scheduling; determinism lives in the replayed artifacts (run
//! log, manifest, CSVs), not in the journal files themselves.

use crate::artifact::write_atomic;
use crate::error::{CorruptKind, ReduceError, Result};
use crate::fleet::{ChipOutcome, QuarantinedChip, SealedChip};
use crate::resilience::ResiliencePoint;
use crate::telemetry::json::{parse, push_json_f32, push_json_f64, push_json_string, JsonValue};
use crate::telemetry::{parse_event, render_event, Event, NullObserver, Observer};
use reduce_nn::WorkspaceStats;
use reduce_systolic::Cluster;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const V1_HEADER: &str = "{\"journal\":\"reduce-journal\",\"version\":1}\n";

/// Default records per shard segment: large enough that a shard rewrite
/// stays one buffered write, small enough that per-append I/O is trivially
/// bounded even for million-chip journals.
pub const DEFAULT_SHARD_RECORDS: usize = 256;

fn render_manifest(shard_records: usize) -> String {
    format!("{{\"journal\":\"reduce-journal\",\"version\":2,\"shard_records\":{shard_records}}}\n")
}

/// CRC-32 (IEEE 802.3, the `cksum`/zlib polynomial), bit-reflected. A
/// hand-rolled bitwise implementation: journal lines are short and shard
/// digests are computed once per seal, so a lookup table isn't worth the
/// footprint.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames a JSON payload as one v3 journal line:
/// `CCCCCCCC LEN JSON\n`.
fn frame_line(json: &str) -> String {
    format!("{:08x} {} {json}\n", crc32(json.as_bytes()), json.len())
}

/// Unframes one v3 line (without trailing newline), verifying the CRC and
/// length. Returns the JSON payload.
fn parse_frame(line: &str) -> std::result::Result<&str, CorruptKind> {
    let (crc_hex, rest) = line.split_once(' ').ok_or(CorruptKind::BadFrame)?;
    if crc_hex.len() != 8
        || crc_hex
            .bytes()
            .any(|b| !b.is_ascii_hexdigit() || b.is_ascii_uppercase())
    {
        return Err(CorruptKind::BadFrame);
    }
    let crc = u32::from_str_radix(crc_hex, 16).map_err(|_| CorruptKind::BadFrame)?;
    let (len_str, payload) = rest.split_once(' ').ok_or(CorruptKind::BadFrame)?;
    if len_str.is_empty() || len_str.bytes().any(|b| !b.is_ascii_digit()) {
        return Err(CorruptKind::BadFrame);
    }
    let len: usize = len_str.parse().map_err(|_| CorruptKind::BadFrame)?;
    if payload.len() != len {
        return Err(CorruptKind::BadFrame);
    }
    if crc32(payload.as_bytes()) != crc {
        return Err(CorruptKind::BadCrc);
    }
    Ok(payload)
}

fn render_footer(records: usize) -> String {
    frame_line(&format!(
        "{{\"footer\":\"reduce-shard\",\"records\":{records}}}"
    ))
}

/// `Some(record count)` if the (already unframed) payload is a shard
/// footer.
fn parse_footer(payload: &str) -> Option<usize> {
    let value = parse(payload).ok()?;
    if value.field("footer").and_then(JsonValue::as_str) != Some("reduce-shard") {
        return None;
    }
    value.field("records").and_then(JsonValue::as_usize)
}

fn render_manifest_v3(shard_records: usize, sealed: &[String]) -> String {
    let mut json = format!(
        "{{\"journal\":\"reduce-journal\",\"version\":3,\"shard_records\":{shard_records},\"sealed\":["
    );
    for (i, digest) in sealed.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push('"');
        json.push_str(digest);
        json.push('"');
    }
    json.push_str("]}");
    frame_line(&json)
}

/// `Some((shard_records, sealed digests))` if the (already unframed)
/// payload is a v3 manifest.
fn parse_manifest_v3(payload: &str) -> Option<(usize, Vec<String>)> {
    let value = parse(payload).ok()?;
    if value.field("journal").and_then(JsonValue::as_str) != Some("reduce-journal") {
        return None;
    }
    if value.field("version").and_then(JsonValue::as_u64) != Some(3) {
        return None;
    }
    let shard_records = value
        .field("shard_records")
        .and_then(JsonValue::as_usize)
        .filter(|&n| n > 0)?;
    let sealed = match value.field("sealed") {
        Some(JsonValue::Arr(items)) => items
            .iter()
            .map(|d| d.as_str().map(str::to_string))
            .collect::<Option<Vec<String>>>()?,
        _ => return None,
    };
    Some((shard_records, sealed))
}

fn shard_digest(contents: &str) -> String {
    format!("{:08x}", crc32(contents.as_bytes()))
}

fn shard_path(manifest: &Path, index: usize) -> PathBuf {
    let stem = manifest.file_stem().map_or_else(
        || "journal".to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    manifest.with_file_name(format!("{stem}-{index:05}.jsonl"))
}

/// One sealed job outcome in the journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A completed resilience-grid cell.
    Point {
        /// Stable job id (full-grid linear index) the cell was salted with.
        job: u64,
        /// The measured point.
        point: ResiliencePoint,
        /// The cell's model-workspace counters (for the stage aggregate).
        workspace: WorkspaceStats,
        /// The cell's buffered telemetry events, in emission order.
        events: Vec<Event>,
    },
    /// A grid cell that exhausted its retry budget.
    PointFailed {
        /// Stable job id (full-grid linear index).
        job: u64,
        /// Rate index of the failed cell.
        rate_index: usize,
        /// Fault rate of the failed cell.
        rate: f64,
        /// Repeat index of the failed cell.
        repeat: usize,
        /// Attempts consumed (budget + 1).
        attempts: u32,
        /// The final attempt's error.
        error: String,
        /// The cell's failure telemetry, in emission order.
        events: Vec<Event>,
    },
    /// A successfully retrained chip.
    Chip {
        /// Stable job id (the chip id).
        job: u64,
        /// Label of the policy the chip was retrained under (one journal
        /// can hold several policies' outcomes, as `fig3` sweeps them).
        policy: String,
        /// The chip's outcome.
        outcome: ChipOutcome,
        /// The chip's model-workspace counters.
        workspace: WorkspaceStats,
        /// The chip's buffered telemetry events, in emission order.
        events: Vec<Event>,
    },
    /// A chip that exhausted its retry budget.
    ChipFailed {
        /// Stable job id (the chip id).
        job: u64,
        /// Label of the policy the chip was retrained under.
        policy: String,
        /// The quarantined chip's id.
        chip_id: usize,
        /// The quarantined chip's fault rate.
        fault_rate: f64,
        /// Attempts consumed (budget + 1).
        attempts: u32,
        /// The final attempt's error.
        error: String,
        /// The chip's failure telemetry, in emission order.
        events: Vec<Event>,
    },
    /// One sealed batch of the streaming fleet evaluator: every chip the
    /// epoch-budget scheduler ran through one shared workspace, with the
    /// batch's pooled workspace counters and buffered telemetry. The
    /// `(policy, window, budget, chunk)` key is a pure function of the
    /// evaluation config, so a resumed run recomputes the same batches and
    /// replays the sealed ones.
    FleetBatch {
        /// Label of the policy the batch was retrained under.
        policy: String,
        /// Intake-window index the batch belongs to.
        window: usize,
        /// The epoch budget shared by every chip in the batch.
        budget: usize,
        /// Chunk index within the window's budget group.
        chunk: usize,
        /// Fault-similarity clusters the batch formed (empty for per-chip
        /// runs and for records written before the eFAT extension — the
        /// parser defaults the field, so v2 journals stay readable).
        clusters: Vec<Cluster>,
        /// Sealed per-chip fates, in ascending chip-id order.
        chips: Vec<SealedChip>,
        /// The batch's pooled-workspace counters.
        workspace: WorkspaceStats,
        /// The batch's buffered telemetry events, in emission order.
        events: Vec<Event>,
    },
}

impl JournalRecord {
    /// `(rate_index, repeat)` for grid-cell records.
    pub fn grid_key(&self) -> Option<(usize, usize)> {
        match self {
            JournalRecord::Point { point, .. } => Some((point.rate_index, point.repeat)),
            JournalRecord::PointFailed {
                rate_index, repeat, ..
            } => Some((*rate_index, *repeat)),
            _ => None,
        }
    }

    /// `(policy label, chip id)` for per-chip records (the version-1
    /// fleet journal granularity).
    pub fn chip_key(&self) -> Option<(&str, usize)> {
        match self {
            JournalRecord::Chip {
                policy, outcome, ..
            } => Some((policy.as_str(), outcome.chip_id)),
            JournalRecord::ChipFailed {
                policy, chip_id, ..
            } => Some((policy.as_str(), *chip_id)),
            _ => None,
        }
    }

    /// `(policy label, window, budget, chunk)` for fleet-batch records.
    pub fn batch_key(&self) -> Option<(&str, usize, usize, usize)> {
        match self {
            JournalRecord::FleetBatch {
                policy,
                window,
                budget,
                chunk,
                ..
            } => Some((policy.as_str(), *window, *budget, *chunk)),
            _ => None,
        }
    }
}

/// Cumulative journal-write accounting for this process: the evidence that
/// per-append I/O is bounded by the shard size, not the journal length.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Appends performed (replayed records don't count).
    pub appends: u64,
    /// Total bytes handed to the atomic writer across all appends.
    pub bytes_written: u64,
    /// Largest single append's bytes — bounded by one shard's rendered
    /// size in the sharded layout.
    pub max_append_bytes: u64,
}

/// On-disk layout of a journal.
enum Store {
    /// Legacy version 1: header plus every record in one atomically
    /// rewritten file.
    Single {
        /// Rendered record lines, each newline-terminated.
        lines: Vec<String>,
    },
    /// Legacy version 2: a one-line manifest at the journal path, unframed
    /// records in fixed-size shard segments beside it.
    Sharded {
        /// Records per shard segment.
        shard_records: usize,
        /// Whether the manifest file exists on disk yet (it is written
        /// lazily with the first append).
        manifest_written: bool,
        /// Fully sealed shard files on disk; the active shard has this
        /// index.
        sealed_shards: usize,
        /// Rendered lines of the active (partial) shard.
        active: Vec<String>,
    },
    /// Version 3: CRC-framed lines, footered shards, digest-bearing
    /// manifest.
    Sharded3 {
        /// Records per shard segment.
        shard_records: usize,
        /// Whether the manifest file exists on disk yet (it is written
        /// lazily with the first append).
        manifest_written: bool,
        /// Whole-file digest of each sealed shard, in shard order; the
        /// active shard's index is `sealed.len()`.
        sealed: Vec<String>,
        /// Framed lines of the active (partial) shard, exactly as on
        /// disk.
        active: Vec<String>,
    },
}

struct CheckpointState {
    records: Vec<JournalRecord>,
    store: Store,
    appended: usize,
    halt_after: Option<usize>,
    io: IoStats,
}

/// An append-only journal of sealed job outcomes backed by an atomically
/// maintained manifest-plus-shards layout (or, for resumed version-1
/// journals, one whole-file-rewritten `journal.jsonl`).
///
/// Appends are serialised through an internal mutex, so a `Checkpoint` can
/// be shared by the executor's worker threads (the `on_sealed` hook of
/// [`crate::exec::parallel_map_resilient`], or the fleet evaluator's batch
/// jobs).
pub struct Checkpoint {
    path: PathBuf,
    state: Mutex<CheckpointState>,
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl Checkpoint {
    /// A fresh sharded (version 3) journal whose manifest lives at `path`.
    /// Nothing is written until the first [`Checkpoint::append`].
    pub fn create(path: &Path) -> Self {
        Checkpoint {
            path: path.to_path_buf(),
            state: Mutex::new(CheckpointState {
                records: Vec::new(),
                store: Store::Sharded3 {
                    shard_records: DEFAULT_SHARD_RECORDS,
                    manifest_written: false,
                    sealed: Vec::new(),
                    active: Vec::new(),
                },
                appended: 0,
                halt_after: None,
                io: IoStats::default(),
            }),
        }
    }

    /// Overrides the records-per-shard size of a fresh journal. Must be
    /// called before the first append; ignored once the manifest is on
    /// disk (resumed journals keep the shard size they were created with)
    /// and for legacy single-file journals. Zero is ignored.
    #[must_use]
    pub fn with_shard_records(self, n: usize) -> Self {
        if n > 0 {
            if let Ok(mut state) = self.state.lock() {
                match &mut state.store {
                    Store::Sharded {
                        shard_records,
                        manifest_written: false,
                        active,
                        ..
                    }
                    | Store::Sharded3 {
                        shard_records,
                        manifest_written: false,
                        active,
                        ..
                    } if active.is_empty() => {
                        *shard_records = n;
                    }
                    _ => {}
                }
            }
        }
        self
    }

    /// Reloads the journal at `path`; a missing file is an empty journal
    /// (resuming a run that was killed before its first checkpoint). A
    /// version-1 header keeps the journal in the legacy single-file
    /// layout; a version-2 manifest loads every unframed shard segment; a
    /// version-3 manifest verifies frames, footers, and digests.
    ///
    /// Healable tail damage is truncated away silently — use
    /// [`Checkpoint::resume_observed`] to watch it happen.
    ///
    /// # Errors
    ///
    /// [`ReduceError::JournalCorrupt`] when damage sits in the *middle*
    /// of the journal (valid records exist after it, so truncation would
    /// silently discard completed work — [`repair_journal`] performs it
    /// explicitly), when a sealed shard's content digest disagrees with
    /// the manifest, or when nothing in the directory is recognisably a
    /// v3 journal; [`ReduceError::InvalidConfig`] for an unreadable file
    /// or an unrecognised v1/v2 header.
    pub fn resume(path: &Path) -> Result<Self> {
        Self::resume_observed(path, &NullObserver)
    }

    /// [`Checkpoint::resume`], reporting any self-healing through
    /// `observer`: one [`Event::ShardTruncated`] per truncated shard and
    /// one [`Event::RecordDropped`] per discarded record slot.
    ///
    /// # Errors
    ///
    /// As [`Checkpoint::resume`].
    pub fn resume_observed(path: &Path, observer: &dyn Observer) -> Result<Self> {
        let Some(scan) = scan_journal(path)? else {
            return Ok(Self::create(path));
        };
        scan.corrupt_error()?;
        let healed = heal_journal(path, scan, observer)?;
        Ok(Checkpoint {
            path: path.to_path_buf(),
            state: Mutex::new(CheckpointState {
                records: healed.records,
                store: healed.store,
                appended: 0,
                halt_after: None,
                io: IoStats::default(),
            }),
        })
    }

    /// The journal manifest path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn lock(&self) -> Result<std::sync::MutexGuard<'_, CheckpointState>> {
        self.state.lock().map_err(|_| ReduceError::Internal {
            invariant: "journal appends must not panic while holding the lock".to_string(),
        })
    }

    /// All records currently in the journal (replayed + appended).
    ///
    /// # Errors
    ///
    /// [`ReduceError::Internal`] if the journal lock was poisoned.
    pub fn records(&self) -> Result<Vec<JournalRecord>> {
        Ok(self.lock()?.records.clone())
    }

    /// This process's cumulative append-I/O accounting.
    ///
    /// # Errors
    ///
    /// [`ReduceError::Internal`] if the journal lock was poisoned.
    pub fn io_stats(&self) -> Result<IoStats> {
        Ok(self.lock()?.io)
    }

    /// Arms the CI kill switch: the process exits (code 3) immediately
    /// after the `n`-th successful [`Checkpoint::append`] of this run,
    /// simulating a hard mid-fan-out kill with a complete journal prefix
    /// on disk. Counts appends only — replayed records don't trigger it.
    pub fn set_halt_after(&self, n: usize) {
        if let Ok(mut state) = self.state.lock() {
            state.halt_after = Some(n);
        }
    }

    /// Appends one sealed outcome, atomically rewriting only the active
    /// shard (or, for legacy journals, the whole file) so the on-disk
    /// journal is complete after every append.
    ///
    /// # Errors
    ///
    /// Propagates the atomic write's error; callers treat a failed
    /// checkpoint as fatal (the resume contract would otherwise be
    /// silently broken).
    pub fn append(&self, record: JournalRecord) -> Result<()> {
        let mut state = self.lock()?;
        let line = render_record(&record);
        state.records.push(record);
        let mut bytes: u64 = 0;
        match &mut state.store {
            Store::Single { lines } => {
                lines.push(line);
                let mut contents = String::with_capacity(
                    V1_HEADER.len() + lines.iter().map(String::len).sum::<usize>(),
                );
                contents.push_str(V1_HEADER);
                for l in lines.iter() {
                    contents.push_str(l);
                }
                bytes += contents.len() as u64;
                write_atomic(&self.path, &contents)?;
            }
            Store::Sharded {
                shard_records,
                manifest_written,
                sealed_shards,
                active,
            } => {
                if !*manifest_written {
                    let manifest = render_manifest(*shard_records);
                    bytes += manifest.len() as u64;
                    write_atomic(&self.path, &manifest)?;
                    *manifest_written = true;
                }
                active.push(line);
                let contents = active.concat();
                bytes += contents.len() as u64;
                write_atomic(&shard_path(&self.path, *sealed_shards), &contents)?;
                if active.len() >= *shard_records {
                    *sealed_shards += 1;
                    active.clear();
                }
            }
            Store::Sharded3 {
                shard_records,
                manifest_written,
                sealed,
                active,
            } => {
                if !*manifest_written {
                    let manifest = render_manifest_v3(*shard_records, sealed);
                    bytes += manifest.len() as u64;
                    write_atomic(&self.path, &manifest)?;
                    *manifest_written = true;
                }
                active.push(frame_line(line.trim_end()));
                if active.len() >= *shard_records {
                    // Seal: the footered shard goes to disk *before* the
                    // manifest that names its digest — a crash between
                    // the two leaves a footered shard resume detects and
                    // adopts without data loss.
                    let mut contents = active.concat();
                    contents.push_str(&render_footer(active.len()));
                    bytes += contents.len() as u64;
                    write_atomic(&shard_path(&self.path, sealed.len()), &contents)?;
                    sealed.push(shard_digest(&contents));
                    active.clear();
                    let manifest = render_manifest_v3(*shard_records, sealed);
                    bytes += manifest.len() as u64;
                    write_atomic(&self.path, &manifest)?;
                } else {
                    let contents = active.concat();
                    bytes += contents.len() as u64;
                    write_atomic(&shard_path(&self.path, sealed.len()), &contents)?;
                }
            }
        }
        state.appended += 1;
        state.io.appends += 1;
        state.io.bytes_written += bytes;
        state.io.max_append_bytes = state.io.max_append_bytes.max(bytes);
        if let Some(n) = state.halt_after {
            if state.appended >= n {
                // The CI kill switch: die *hard*, mid-fan-out, without
                // unwinding — exactly what the resume path must survive.
                eprintln!(
                    "journal: halting after {} checkpoint append(s) as requested",
                    state.appended
                );
                std::process::exit(3);
            }
        }
        Ok(())
    }
}

fn parse_manifest(header: &str) -> Option<usize> {
    let value = parse(header).ok()?;
    if value.field("journal").and_then(JsonValue::as_str) != Some("reduce-journal") {
        return None;
    }
    if value.field("version").and_then(JsonValue::as_u64) != Some(2) {
        return None;
    }
    value
        .field("shard_records")
        .and_then(JsonValue::as_usize)
        .filter(|&n| n > 0)
}

/// Read-only verification scan of one shard file (or, for v1, the whole
/// record section of the single journal file).
struct ShardScan {
    /// Whether the file exists (`false` only for manifest-named shards
    /// whose file is gone).
    exists: bool,
    /// File length in bytes.
    bytes: usize,
    /// The valid record prefix: `(on-disk line incl. newline, record)`.
    valid: Vec<(String, JournalRecord)>,
    /// v3: footer record-count, when a well-formed footer follows the
    /// valid prefix.
    footer: Option<usize>,
    /// First damage: `(record index, kind)`. Record index equals the
    /// valid-prefix length at the point of damage.
    damage: Option<(usize, CorruptKind)>,
    /// Fully valid record lines found *after* the damage — if nonzero,
    /// truncation would discard completed work (corrupt middle).
    valid_after: usize,
    /// Cleanly sealed (v3: footer verifies; v2: holds a full shard).
    sealed: bool,
    /// v3: footered but absent from the manifest (crash between the
    /// shard seal and the manifest update) — healed by adding its digest.
    needs_manifest_entry: bool,
    /// v3: the manifest's digest disagrees with an otherwise-valid sealed
    /// shard. The append path's ordered seal protocol never leaves this
    /// behind (the footered shard reaches disk *before* the manifest
    /// names it), so the content is not what the manifest committed to —
    /// a wholesale-replaced shard, a restored backup, or a crash in the
    /// middle of an earlier repair. Resume refuses with
    /// [`CorruptKind::DigestMismatch`]; [`repair_journal`] adopts the
    /// shard and recomputes the digest (per-record CRCs are
    /// authoritative).
    digest_mismatch: bool,
    /// v3: lines whose `CRC LEN payload` frame structure parsed (CRC
    /// match or not). Zero across a contentful directory means the files
    /// are not recognisably v3 at all — e.g. a v1/v2 journal whose
    /// manifest first byte was corrupted — and must not be adopted (and
    /// truncated) as a v3 journal.
    framed_lines: usize,
    /// v3: whole-file CRC-32 digest, as eight hex digits.
    digest: String,
}

impl ShardScan {
    fn empty(exists: bool, bytes: usize) -> Self {
        ShardScan {
            exists,
            bytes,
            valid: Vec::new(),
            footer: None,
            damage: None,
            valid_after: 0,
            sealed: false,
            needs_manifest_entry: false,
            digest_mismatch: false,
            framed_lines: 0,
            digest: String::new(),
        }
    }

    fn missing() -> Self {
        let mut scan = Self::empty(false, 0);
        scan.damage = Some((0, CorruptKind::MissingShard));
        scan
    }

    fn has_content(&self) -> bool {
        !self.valid.is_empty() || self.valid_after > 0
    }

    /// Dropped lines that held (or were torn from) records: the fully
    /// valid records stranded after the damage point, plus the
    /// damage-point line itself when it failed *record* verification (a
    /// torn or corrupted record slot). Garbage and footer lines beyond
    /// those are dropped bytes, not dropped records —
    /// [`Event::RecordDropped`] is emitted once per slot counted here.
    fn dropped_record_slots(&self) -> usize {
        let torn = matches!(
            self.damage,
            Some((
                _,
                CorruptKind::BadFrame | CorruptKind::BadCrc | CorruptKind::BadRecord
            ))
        );
        self.valid_after + usize::from(torn)
    }
}

/// Splits a file into lines, dropping only the trailing empty segment
/// after a final newline (empty lines elsewhere are real content).
fn split_file_lines(bytes: &[u8]) -> Vec<&[u8]> {
    let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
    if lines.last().is_some_and(|l| l.is_empty()) {
        lines.pop();
    }
    lines
}

/// Scans one v3 shard: framed lines, optionally terminated by a footer.
fn scan_v3_shard(bytes: &[u8]) -> ShardScan {
    enum Line<'a> {
        Footer(usize),
        Rec(&'a str, JournalRecord),
        Bad(CorruptKind),
    }
    let mut scan = ShardScan::empty(true, bytes.len());
    scan.digest = format!("{:08x}", crc32(bytes));
    for raw in split_file_lines(bytes) {
        let line = match std::str::from_utf8(raw) {
            Ok(line) => match parse_frame(line) {
                Ok(payload) => {
                    scan.framed_lines += 1;
                    match parse_footer(payload) {
                        Some(n) => Line::Footer(n),
                        None => match parse_record(payload) {
                            Ok(r) => Line::Rec(line, r),
                            Err(_) => Line::Bad(CorruptKind::BadRecord),
                        },
                    }
                }
                Err(kind) => {
                    // A CRC mismatch still means the frame *structure*
                    // parsed — only a framed v3 line fails that way.
                    if kind == CorruptKind::BadCrc {
                        scan.framed_lines += 1;
                    }
                    Line::Bad(kind)
                }
            },
            Err(_) => Line::Bad(CorruptKind::BadFrame),
        };
        if scan.damage.is_none() {
            match line {
                Line::Footer(n) if scan.footer.is_none() => scan.footer = Some(n),
                Line::Footer(_) => {
                    scan.damage = Some((scan.valid.len(), CorruptKind::BadFooter));
                }
                Line::Rec(line, r) if scan.footer.is_none() => {
                    scan.valid.push((format!("{line}\n"), r));
                }
                Line::Rec(..) => {
                    // A record after the footer: trailing garbage at best,
                    // a misplaced seal at worst.
                    scan.damage = Some((scan.valid.len(), CorruptKind::BadFooter));
                    scan.valid_after += 1;
                }
                Line::Bad(kind) => {
                    scan.damage = Some((scan.valid.len(), kind));
                }
            }
        } else if matches!(line, Line::Rec(..)) {
            scan.valid_after += 1;
        }
    }
    scan
}

/// Scans one v2 shard (or the v1 record section): unframed JSON record
/// lines, blank lines skipped (v1/v2 never wrote them, but always
/// tolerated them).
fn scan_v2_shard(bytes: &[u8]) -> ShardScan {
    let mut scan = ShardScan::empty(true, bytes.len());
    for raw in split_file_lines(bytes) {
        let parsed = match std::str::from_utf8(raw) {
            Ok(line) if line.trim().is_empty() => continue,
            Ok(line) => parse_record(line).ok().map(|r| (line, r)),
            Err(_) => None,
        };
        match (&scan.damage, parsed) {
            (None, Some((line, r))) => scan.valid.push((format!("{line}\n"), r)),
            (None, None) => {
                scan.damage = Some((scan.valid.len(), CorruptKind::BadRecord));
            }
            (Some(_), parsed) => {
                if parsed.is_some() {
                    scan.valid_after += 1;
                }
            }
        }
    }
    scan
}

/// The full verification scan [`Checkpoint::resume_observed`],
/// [`inspect_journal`], and [`repair_journal`] share.
struct JournalScan {
    version: u8,
    /// Records per shard (0 for v1).
    shard_records: usize,
    /// Number of sealed digests the v3 manifest names.
    manifest_sealed: usize,
    /// `Some` when the v3 manifest itself is unreadable (rebuilt from the
    /// shard files when any exist).
    manifest_damage: Option<CorruptKind>,
    manifest_bytes: usize,
    shards: Vec<ShardScan>,
}

impl JournalScan {
    fn first_damage(&self) -> Option<(usize, usize, CorruptKind)> {
        self.shards
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.damage.map(|(r, k)| (i, r, k)))
    }

    /// Errors out for damage self-healing must not touch: a missing
    /// sealed shard, valid records after the damage point, a sealed
    /// shard whose content digest disagrees with the manifest, or a
    /// manifest that is unreadable with no v3-framed shard content to
    /// rebuild it from — a corrupted v1/v2 journal (or a non-journal)
    /// must never be adopted, and truncated, as an empty v3 one.
    fn corrupt_error(&self) -> Result<()> {
        if self.manifest_damage.is_some() && self.shards.iter().all(|s| s.framed_lines == 0) {
            return Err(ReduceError::JournalCorrupt {
                shard: 0,
                record: 0,
                kind: CorruptKind::Manifest,
            });
        }
        if let Some(shard) = self.shards.iter().position(|s| s.digest_mismatch) {
            return Err(ReduceError::JournalCorrupt {
                shard,
                record: 0,
                kind: CorruptKind::DigestMismatch,
            });
        }
        if let Some((shard, record, kind)) = self.first_damage() {
            let valid_after = self.shards.get(shard).is_some_and(|s| s.valid_after > 0)
                || self
                    .shards
                    .iter()
                    .skip(shard + 1)
                    .any(ShardScan::has_content);
            if valid_after || kind == CorruptKind::MissingShard {
                return Err(ReduceError::JournalCorrupt {
                    shard,
                    record,
                    kind,
                });
            }
        }
        Ok(())
    }

    fn needs_heal(&self) -> bool {
        self.first_damage().is_some()
            || self.manifest_damage.is_some()
            || self
                .shards
                .iter()
                .any(|s| s.needs_manifest_entry || s.digest_mismatch)
    }
}

/// Largest index for which a shard file of `manifest` exists, found by
/// listing the journal's directory — shard numbering can be left gapped
/// by tampering or a restored backup, and a purely sequential probe
/// would stop at the first hole. `None` when no shard file exists (or
/// the directory cannot be read; scanning then covers only the
/// manifest-named range).
fn last_shard_on_disk(manifest: &Path) -> Option<usize> {
    let dir = match manifest.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let stem = manifest.file_stem().map_or_else(
        || "journal".to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    let prefix = format!("{stem}-");
    let mut last = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(digits) = name
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(".jsonl"))
        else {
            continue;
        };
        if digits.len() < 5 || digits.bytes().any(|b| !b.is_ascii_digit()) {
            continue;
        }
        if let Ok(index) = digits.parse::<usize>() {
            last = Some(last.map_or(index, |l: usize| l.max(index)));
        }
    }
    last
}

/// Reads and scans every shard file of the journal at `path`: the
/// manifest-named range plus anything numbered beyond it on disk, with
/// [`ShardScan::missing`] placeholders for holes — so contentful files
/// past a numbering gap surface as orphans (refused by resume, removed
/// by explicit repair) instead of being silently ignored and eventually
/// overwritten by the writer. Trailing placeholders and empty files
/// beyond the named range are harmless and dropped from the scan.
fn scan_shard_files(path: &Path, named: usize, v3: bool) -> Result<Vec<ShardScan>> {
    let last_on_disk = last_shard_on_disk(path);
    let mut shards = Vec::new();
    let mut index = 0;
    while index < named || last_on_disk.is_some_and(|last| index <= last) {
        let shard = shard_path(path, index);
        match std::fs::read(&shard) {
            Ok(bytes) => shards.push(if v3 {
                scan_v3_shard(&bytes)
            } else {
                scan_v2_shard(&bytes)
            }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                shards.push(ShardScan::missing());
            }
            Err(e) => {
                return Err(ReduceError::InvalidConfig {
                    what: format!("cannot read journal shard {}: {e}", shard.display()),
                })
            }
        }
        index += 1;
    }
    while shards.len() > named && shards.last().is_some_and(|s| !s.exists || s.bytes == 0) {
        shards.pop();
    }
    Ok(shards)
}

/// After per-shard classification: anything following the first unsealed
/// shard is orphaned — it must not be adopted as sealed, and content
/// there makes the unsealed shard a corrupt middle.
fn mark_orphans(shards: &mut [ShardScan]) {
    let Some(t) = shards.iter().position(|s| !s.sealed) else {
        return;
    };
    // `t` comes from `position`, so the split never panics.
    let Some((trunc, rest)) = shards.split_at_mut(t).1.split_first_mut() else {
        return;
    };
    if rest.iter().any(ShardScan::has_content) && trunc.damage.is_none() {
        trunc.damage = Some((trunc.valid.len(), CorruptKind::MissingShard));
    }
    for s in rest {
        s.sealed = false;
        s.needs_manifest_entry = false;
    }
}

/// Scans the journal at `path`. `Ok(None)` means the journal file does
/// not exist (an empty journal).
///
/// # Errors
///
/// [`ReduceError::InvalidConfig`] for filesystem read failures and for
/// unrecognised v1/v2-style (`{`-headed) files.
fn scan_journal(path: &Path) -> Result<Option<JournalScan>> {
    let manifest_bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(ReduceError::InvalidConfig {
                what: format!("cannot read journal {}: {e}", path.display()),
            })
        }
    };
    if manifest_bytes.first() == Some(&b'{') {
        // v1 or v2: both start with a bare JSON header line. Lossy UTF-8
        // only alters damaged bytes — valid lines pass through untouched.
        let text = String::from_utf8_lossy(&manifest_bytes);
        let (header, rest) = match text.split_once('\n') {
            Some((header, rest)) => (header, rest),
            None => (text.as_ref(), ""),
        };
        if format!("{header}\n") == V1_HEADER {
            let mut shard = scan_v2_shard(rest.as_bytes());
            shard.bytes = manifest_bytes.len();
            return Ok(Some(JournalScan {
                version: 1,
                shard_records: 0,
                manifest_sealed: 0,
                manifest_damage: None,
                manifest_bytes: 0,
                shards: vec![shard],
            }));
        }
        let shard_records = parse_manifest(header).ok_or_else(|| ReduceError::InvalidConfig {
            what: format!(
                "unrecognised journal header {header:?} in {}",
                path.display()
            ),
        })?;
        let mut shards = scan_shard_files(path, 0, false)?;
        for shard in &mut shards {
            if shard.exists && shard.damage.is_none() && shard.valid.len() >= shard_records {
                shard.sealed = true;
            }
        }
        mark_orphans(&mut shards);
        return Ok(Some(JournalScan {
            version: 2,
            shard_records,
            manifest_sealed: 0,
            manifest_damage: None,
            manifest_bytes: manifest_bytes.len(),
            shards,
        }));
    }
    // v3: a framed manifest line.
    let manifest = std::str::from_utf8(&manifest_bytes).ok().and_then(|text| {
        let (first, rest) = text.split_once('\n').unwrap_or((text, ""));
        if !rest.trim().is_empty() {
            return None; // a manifest is exactly one line
        }
        parse_frame(first).ok().and_then(parse_manifest_v3)
    });
    let (mut shard_records, digests, manifest_damage) = match manifest {
        Some((shard_records, digests)) => (shard_records, digests, None),
        None => (0, Vec::new(), Some(CorruptKind::Manifest)),
    };
    let mut shards = scan_shard_files(path, digests.len(), true)?;
    for (i, shard) in shards.iter_mut().enumerate() {
        if !shard.exists || shard.damage.is_some() {
            continue;
        }
        match shard.footer {
            Some(n) if n == shard.valid.len() => {
                shard.sealed = true;
                match digests.get(i) {
                    Some(named) if *named == shard.digest => {}
                    Some(_) => shard.digest_mismatch = true,
                    None => shard.needs_manifest_entry = true,
                }
            }
            Some(_) => shard.damage = Some((shard.valid.len(), CorruptKind::BadFooter)),
            None if i < digests.len() => {
                shard.damage = Some((shard.valid.len(), CorruptKind::BadFooter));
            }
            None => {} // the active shard
        }
    }
    mark_orphans(&mut shards);
    if shard_records == 0 {
        // Manifest being rebuilt: recover the shard size from a footer.
        shard_records = shards
            .iter()
            .find_map(|s| s.footer.filter(|&n| n > 0))
            .unwrap_or(DEFAULT_SHARD_RECORDS);
    }
    Ok(Some(JournalScan {
        version: 3,
        shard_records,
        manifest_sealed: digests.len(),
        manifest_damage,
        manifest_bytes: manifest_bytes.len(),
        shards,
    }))
}

/// The healed in-memory layout [`heal_journal`] hands back to resume.
struct HealedLayout {
    records: Vec<JournalRecord>,
    store: Store,
    kept: usize,
    dropped_records: usize,
    dropped_bytes: usize,
}

/// Truncates the journal at the first damage point (rewriting files as
/// needed), brings the manifest back in sync, and reports what happened
/// through `observer`. Callers enforcing the tail-only rule run
/// [`JournalScan::corrupt_error`] first; [`repair_journal`] calls this
/// unconditionally.
fn heal_journal(path: &Path, scan: JournalScan, observer: &dyn Observer) -> Result<HealedLayout> {
    let JournalScan {
        version,
        shard_records,
        manifest_sealed,
        manifest_damage,
        shards,
        ..
    } = scan;
    let shard_count = shards.len();
    let damage_shard = shards.iter().position(|s| s.damage.is_some());
    let mut records = Vec::new();
    let mut dropped_records = 0usize;
    let mut dropped_bytes = 0usize;

    if version == 1 {
        let Some(shard) = shards.into_iter().next() else {
            return Err(ReduceError::Internal {
                invariant: "a v1 scan always carries one pseudo-shard".to_string(),
            });
        };
        let dropped_slots = shard.dropped_record_slots();
        let mut lines = Vec::with_capacity(shard.valid.len());
        for (line, record) in shard.valid {
            lines.push(line);
            records.push(record);
        }
        if shard.damage.is_some() {
            let mut contents = String::from(V1_HEADER);
            for line in &lines {
                contents.push_str(line);
            }
            write_atomic(path, &contents)?;
            let dropped = shard.bytes.saturating_sub(contents.len());
            observer.on_event(&Event::ShardTruncated {
                shard: 0,
                kept: lines.len(),
                dropped_bytes: dropped,
            });
            for record in lines.len()..lines.len() + dropped_slots {
                observer.on_event(&Event::RecordDropped { shard: 0, record });
            }
            dropped_records += shard.valid_after;
            dropped_bytes += dropped;
        }
        let kept = records.len();
        return Ok(HealedLayout {
            records,
            store: Store::Single { lines },
            kept,
            dropped_records,
            dropped_bytes,
        });
    }

    let v3 = version == 3;
    let mut sealed_digests: Vec<String> = Vec::new();
    let mut sealed_shards = 0usize;
    let mut active: Vec<String> = Vec::new();
    let mut manifest_dirty = manifest_damage.is_some();
    for (i, shard) in shards.into_iter().enumerate() {
        if damage_shard == Some(i) {
            // Truncate this shard back to its valid record prefix.
            let dropped_slots = shard.dropped_record_slots();
            let mut lines = Vec::with_capacity(shard.valid.len());
            for (line, record) in shard.valid {
                lines.push(line);
                records.push(record);
            }
            let kept_here = lines.len();
            let resealable = shard_records > 0 && kept_here == shard_records;
            let mut contents = lines.concat();
            if resealable && v3 {
                contents.push_str(&render_footer(kept_here));
            }
            write_atomic(&shard_path(path, i), &contents)?;
            if resealable {
                if v3 {
                    sealed_digests.push(shard_digest(&contents));
                }
                sealed_shards += 1;
            } else {
                active = lines;
            }
            manifest_dirty = true;
            let dropped = shard.bytes.saturating_sub(contents.len());
            observer.on_event(&Event::ShardTruncated {
                shard: i,
                kept: kept_here,
                dropped_bytes: dropped,
            });
            for record in kept_here..kept_here + dropped_slots {
                observer.on_event(&Event::RecordDropped { shard: i, record });
            }
            dropped_records += shard.valid_after;
            dropped_bytes += dropped;
        } else if damage_shard.is_some_and(|d| i > d) {
            // Everything after the truncation point is discarded. (Valid
            // content here only survives to this point under
            // [`repair_journal`] — resume's corrupt check refuses it.)
            dropped_records += shard.valid.len() + shard.valid_after;
            dropped_bytes += shard.bytes;
            manifest_dirty = true;
            if shard.exists {
                observer.on_event(&Event::ShardTruncated {
                    shard: i,
                    kept: 0,
                    dropped_bytes: shard.bytes,
                });
                for record in 0..shard.valid.len() + shard.dropped_record_slots() {
                    observer.on_event(&Event::RecordDropped { shard: i, record });
                }
                let _ = std::fs::remove_file(shard_path(path, i));
            }
        } else if shard.sealed {
            if v3 {
                sealed_digests.push(shard.digest.clone());
            }
            sealed_shards += 1;
            if shard.needs_manifest_entry || shard.digest_mismatch {
                manifest_dirty = true;
            }
            for (_, record) in shard.valid {
                records.push(record);
            }
        } else {
            // The clean active (partial) shard.
            for (line, record) in shard.valid {
                active.push(line);
                records.push(record);
            }
        }
    }
    // Leftovers beyond the scanned range: the scan covered every
    // contentful shard on disk (contentful strays either entered the
    // shard list or refused resume upstream), so anything left here is
    // an empty file the trailing trim dropped — safe to clear.
    let mut stray = shard_count;
    while shard_path(path, stray).exists() {
        let _ = std::fs::remove_file(shard_path(path, stray));
        stray += 1;
    }
    if v3 && (manifest_dirty || sealed_digests.len() != manifest_sealed) {
        write_atomic(path, &render_manifest_v3(shard_records, &sealed_digests))?;
    }
    let kept = records.len();
    let store = if v3 {
        Store::Sharded3 {
            shard_records,
            manifest_written: true,
            sealed: sealed_digests,
            active,
        }
    } else {
        Store::Sharded {
            shard_records,
            manifest_written: true,
            sealed_shards,
            active,
        }
    };
    Ok(HealedLayout {
        records,
        store,
        kept,
        dropped_records,
        dropped_bytes,
    })
}

fn record_kind_name(record: &JournalRecord) -> &'static str {
    match record {
        JournalRecord::Point { .. } => "point",
        JournalRecord::PointFailed { .. } => "point_failed",
        JournalRecord::Chip { .. } => "chip",
        JournalRecord::ChipFailed { .. } => "chip_failed",
        JournalRecord::FleetBatch { .. } => "fleet_batch",
    }
}

/// Verdict of [`inspect_journal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalStatus {
    /// Every frame, footer, and digest verifies; resume replays every
    /// record.
    Clean,
    /// Damage is confined to the journal's tail (or the manifest lags a
    /// sealed shard); resume heals it automatically, recomputing at most
    /// the dropped tail records.
    Healable,
    /// Damage sits in the middle: resume refuses with
    /// [`ReduceError::JournalCorrupt`]; [`repair_journal`] (or
    /// `journal-tool repair`) truncates explicitly.
    Corrupt,
}

impl JournalStatus {
    /// Stable lowercase name (the `journal-tool verify` output).
    pub fn name(self) -> &'static str {
        match self {
            JournalStatus::Clean => "clean",
            JournalStatus::Healable => "healable",
            JournalStatus::Corrupt => "corrupt",
        }
    }
}

/// Read-only integrity summary of a journal, produced by
/// [`inspect_journal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHealth {
    /// Journal format version (1, 2, or 3).
    pub version: u8,
    /// Records per shard segment (0 for single-file v1 journals).
    pub shard_records: usize,
    /// Cleanly sealed shard files.
    pub sealed_shards: usize,
    /// Records in the replayable valid prefix.
    pub records: usize,
    /// Valid-prefix record counts per kind, in first-seen order.
    pub kinds: Vec<(&'static str, usize)>,
    /// Total bytes across the manifest and every shard file.
    pub total_bytes: usize,
    /// Overall verdict.
    pub status: JournalStatus,
    /// Human-readable findings (empty when clean).
    pub notes: Vec<String>,
}

/// Verifies the journal at `path` without modifying anything — the
/// engine behind `journal-tool verify` and `stat`. A missing journal
/// file reports as an empty, clean journal.
///
/// # Errors
///
/// [`ReduceError::InvalidConfig`] for filesystem read failures or an
/// unrecognised v1/v2 header; corruption is reported in the returned
/// [`JournalHealth`], not as an error.
pub fn inspect_journal(path: &Path) -> Result<JournalHealth> {
    let Some(scan) = scan_journal(path)? else {
        return Ok(JournalHealth {
            version: 3,
            shard_records: DEFAULT_SHARD_RECORDS,
            sealed_shards: 0,
            records: 0,
            kinds: Vec::new(),
            total_bytes: 0,
            status: JournalStatus::Clean,
            notes: vec!["journal file does not exist (empty journal)".to_string()],
        });
    };
    let mut notes = Vec::new();
    if scan.manifest_damage.is_some() {
        if scan.shards.iter().any(|s| s.framed_lines > 0) {
            notes.push("manifest unreadable (rebuilt from shard files on heal)".to_string());
        } else {
            notes.push(
                "manifest unreadable and no shard content is v3-framed — not adoptable as a \
                 v3 journal; repair resets it"
                    .to_string(),
            );
        }
    }
    let damage_shard = scan.first_damage().map(|(i, _, _)| i);
    let mut records = 0usize;
    let mut kinds: Vec<(&'static str, usize)> = Vec::new();
    for (i, shard) in scan.shards.iter().enumerate() {
        if damage_shard.is_some_and(|d| i > d) {
            continue; // beyond the truncation point — not replayable
        }
        for (_, record) in &shard.valid {
            records += 1;
            let name = record_kind_name(record);
            match kinds.iter_mut().find(|(k, _)| *k == name) {
                Some((_, n)) => *n += 1,
                None => kinds.push((name, 1)),
            }
        }
        if let Some((record, kind)) = shard.damage {
            notes.push(format!("shard {i} record {record}: {kind}"));
        }
        if shard.needs_manifest_entry {
            notes.push(format!(
                "shard {i} sealed but not yet named in the manifest"
            ));
        }
        if shard.digest_mismatch {
            notes.push(format!(
                "shard {i}: content digest disagrees with the manifest"
            ));
        }
    }
    let status = if scan.corrupt_error().is_err() {
        JournalStatus::Corrupt
    } else if scan.needs_heal() {
        JournalStatus::Healable
    } else {
        JournalStatus::Clean
    };
    Ok(JournalHealth {
        version: scan.version,
        shard_records: scan.shard_records,
        sealed_shards: scan.shards.iter().filter(|s| s.sealed).count(),
        records,
        kinds,
        total_bytes: scan.manifest_bytes + scan.shards.iter().map(|s| s.bytes).sum::<usize>(),
        status,
        notes,
    })
}

/// Outcome of [`repair_journal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairSummary {
    /// Records the repaired journal replays (the kept valid prefix).
    pub kept: usize,
    /// Fully valid records discarded because they sat after the damage
    /// point — the work an operator explicitly agreed to redo.
    pub dropped_records: usize,
    /// Bytes of damaged or discarded journal content removed.
    pub dropped_bytes: usize,
    /// Whether the journal was already clean (repair changed nothing).
    pub was_clean: bool,
}

/// Explicitly truncates the journal at `path` back to its last valid
/// record before the first damage point, discarding everything after —
/// including valid records a corrupt middle strands (which is exactly why
/// resume refuses to do this on its own). Healing is reported through
/// `observer`; a clean journal is left untouched. A corrupt manifest with
/// no shard content resets to an empty journal.
///
/// # Errors
///
/// [`ReduceError::InvalidConfig`] for filesystem failures or an
/// unrecognised v1/v2 header.
pub fn repair_journal(path: &Path, observer: &dyn Observer) -> Result<RepairSummary> {
    let Some(scan) = scan_journal(path)? else {
        return Ok(RepairSummary {
            kept: 0,
            dropped_records: 0,
            dropped_bytes: 0,
            was_clean: true,
        });
    };
    if scan.manifest_damage.is_some() && !scan.shards.iter().any(|s| s.exists) {
        let dropped = scan.manifest_bytes;
        write_atomic(path, &render_manifest_v3(scan.shard_records, &[]))?;
        observer.on_event(&Event::ShardTruncated {
            shard: 0,
            kept: 0,
            dropped_bytes: dropped,
        });
        return Ok(RepairSummary {
            kept: 0,
            dropped_records: 0,
            dropped_bytes: dropped,
            was_clean: false,
        });
    }
    let was_clean = !scan.needs_heal();
    let healed = heal_journal(path, scan, observer)?;
    Ok(RepairSummary {
        kept: healed.kept,
        dropped_records: healed.dropped_records,
        dropped_bytes: healed.dropped_bytes,
        was_clean,
    })
}

fn push_workspace(out: &mut String, ws: &WorkspaceStats) {
    out.push_str(&format!(
        "{{\"hits\":{},\"misses\":{},\"bytes_allocated\":{}}}",
        ws.hits, ws.misses, ws.bytes_allocated
    ));
}

fn push_events(out: &mut String, events: &[Event]) {
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let line = render_event(e, false);
        out.push_str(line.trim_end());
    }
    out.push(']');
}

fn push_point(out: &mut String, p: &ResiliencePoint) {
    out.push_str(&format!("{{\"rate_index\":{},\"rate\":", p.rate_index));
    push_json_f64(out, p.rate);
    out.push_str(&format!(
        ",\"repeat\":{},\"pre_retrain_accuracy\":",
        p.repeat
    ));
    push_json_f32(out, p.pre_retrain_accuracy);
    out.push_str(",\"accuracy_after_epoch\":[");
    for (i, &a) in p.accuracy_after_epoch.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_f32(out, a);
    }
    out.push_str("],\"epochs_to_constraint\":");
    match p.epochs_to_constraint {
        Some(e) => out.push_str(&format!("{e}")),
        None => out.push_str("null"),
    }
    out.push('}');
}

fn push_chip_outcome(out: &mut String, c: &ChipOutcome) {
    out.push_str(&format!("{{\"chip_id\":{},\"fault_rate\":", c.chip_id));
    push_json_f64(out, c.fault_rate);
    out.push_str(&format!(
        ",\"epochs_budgeted\":{},\"epochs_run\":{},\"pre_retrain_accuracy\":",
        c.epochs_budgeted, c.epochs_run
    ));
    push_json_f32(out, c.pre_retrain_accuracy);
    out.push_str(",\"final_accuracy\":");
    push_json_f32(out, c.final_accuracy);
    out.push_str(&format!(
        ",\"meets_constraint\":{},\"pruned_fraction\":",
        c.meets_constraint
    ));
    push_json_f32(out, c.pruned_fraction);
    out.push_str(&format!(
        ",\"clamped\":{},\"warm_started\":{}}}",
        c.clamped, c.warm_started
    ));
}

fn push_sealed_chip(out: &mut String, sealed: &SealedChip) {
    match sealed {
        SealedChip::Retrained(outcome) => {
            out.push_str("{\"status\":\"ok\",\"outcome\":");
            push_chip_outcome(out, outcome);
            out.push('}');
        }
        SealedChip::Quarantined(q) => {
            out.push_str(&format!(
                "{{\"status\":\"quarantined\",\"chip_id\":{},\"fault_rate\":",
                q.chip_id
            ));
            push_json_f64(out, q.fault_rate);
            out.push_str(&format!(",\"attempts\":{},\"error\":", q.attempts));
            push_json_string(out, &q.error);
            out.push('}');
        }
    }
}

fn render_record(record: &JournalRecord) -> String {
    let mut s = String::with_capacity(256);
    match record {
        JournalRecord::Point {
            job,
            point,
            workspace,
            events,
        } => {
            s.push_str(&format!("{{\"kind\":\"point\",\"job\":{job},\"point\":"));
            push_point(&mut s, point);
            s.push_str(",\"workspace\":");
            push_workspace(&mut s, workspace);
            s.push_str(",\"events\":");
            push_events(&mut s, events);
            s.push('}');
        }
        JournalRecord::PointFailed {
            job,
            rate_index,
            rate,
            repeat,
            attempts,
            error,
            events,
        } => {
            s.push_str(&format!(
                "{{\"kind\":\"point_failed\",\"job\":{job},\"rate_index\":{rate_index},\"rate\":"
            ));
            push_json_f64(&mut s, *rate);
            s.push_str(&format!(
                ",\"repeat\":{repeat},\"attempts\":{attempts},\"error\":"
            ));
            push_json_string(&mut s, error);
            s.push_str(",\"events\":");
            push_events(&mut s, events);
            s.push('}');
        }
        JournalRecord::Chip {
            job,
            policy,
            outcome,
            workspace,
            events,
        } => {
            s.push_str(&format!("{{\"kind\":\"chip\",\"job\":{job},\"policy\":"));
            push_json_string(&mut s, policy);
            s.push_str(",\"outcome\":");
            push_chip_outcome(&mut s, outcome);
            s.push_str(",\"workspace\":");
            push_workspace(&mut s, workspace);
            s.push_str(",\"events\":");
            push_events(&mut s, events);
            s.push('}');
        }
        JournalRecord::ChipFailed {
            job,
            policy,
            chip_id,
            fault_rate,
            attempts,
            error,
            events,
        } => {
            s.push_str(&format!(
                "{{\"kind\":\"chip_failed\",\"job\":{job},\"policy\":"
            ));
            push_json_string(&mut s, policy);
            s.push_str(&format!(",\"chip_id\":{chip_id},\"fault_rate\":"));
            push_json_f64(&mut s, *fault_rate);
            s.push_str(&format!(",\"attempts\":{attempts},\"error\":"));
            push_json_string(&mut s, error);
            s.push_str(",\"events\":");
            push_events(&mut s, events);
            s.push('}');
        }
        JournalRecord::FleetBatch {
            policy,
            window,
            budget,
            chunk,
            clusters,
            chips,
            workspace,
            events,
        } => {
            s.push_str("{\"kind\":\"fleet_batch\",\"policy\":");
            push_json_string(&mut s, policy);
            s.push_str(&format!(
                ",\"window\":{window},\"budget\":{budget},\"chunk\":{chunk},\"clusters\":["
            ));
            for (i, cluster) in clusters.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"representative\":{},\"members\":[",
                    cluster.representative
                ));
                for (j, member) in cluster.members.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("{member}"));
                }
                s.push_str("]}");
            }
            s.push_str("],\"chips\":[");
            for (i, sealed) in chips.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_sealed_chip(&mut s, sealed);
            }
            s.push_str("],\"workspace\":");
            push_workspace(&mut s, workspace);
            s.push_str(",\"events\":");
            push_events(&mut s, events);
            s.push('}');
        }
    }
    s.push('\n');
    s
}

fn parse_record(line: &str) -> Result<JournalRecord> {
    let value = parse(line)?;
    let bad = |what: &str| ReduceError::InvalidConfig {
        what: format!("malformed journal record: {what}"),
    };
    let u64_of = |v: &JsonValue, name: &'static str| -> Result<u64> {
        v.field(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad(name))
    };
    let usize_of = |v: &JsonValue, name: &'static str| -> Result<usize> {
        v.field(name)
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| bad(name))
    };
    let f64_of = |v: &JsonValue, name: &'static str| -> Result<f64> {
        v.field(name)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| bad(name))
    };
    let f32_of = |v: &JsonValue, name: &'static str| -> Result<f32> {
        v.field(name)
            .and_then(JsonValue::as_f32)
            .ok_or_else(|| bad(name))
    };
    let str_of = |v: &JsonValue, name: &'static str| -> Result<String> {
        v.field(name)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad(name))
    };
    let bool_of = |v: &JsonValue, name: &'static str| -> Result<bool> {
        v.field(name)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| bad(name))
    };
    let attempts_of = |v: &JsonValue| -> Result<u32> {
        u64_of(v, "attempts")
            .and_then(|n| u32::try_from(n).map_err(|_| bad("attempts exceeds u32")))
    };
    let events_of = |v: &JsonValue| -> Result<Vec<Event>> {
        match v.field("events") {
            Some(JsonValue::Arr(items)) => items.iter().map(parse_event).collect(),
            _ => Err(bad("events")),
        }
    };
    let workspace_of = |v: &JsonValue| -> Result<WorkspaceStats> {
        let ws = v.field("workspace").ok_or_else(|| bad("workspace"))?;
        Ok(WorkspaceStats {
            hits: u64_of(ws, "hits")?,
            misses: u64_of(ws, "misses")?,
            bytes_allocated: u64_of(ws, "bytes_allocated")?,
        })
    };
    let outcome_of = |c: &JsonValue| -> Result<ChipOutcome> {
        Ok(ChipOutcome {
            chip_id: usize_of(c, "chip_id")?,
            fault_rate: f64_of(c, "fault_rate")?,
            epochs_budgeted: usize_of(c, "epochs_budgeted")?,
            epochs_run: usize_of(c, "epochs_run")?,
            pre_retrain_accuracy: f32_of(c, "pre_retrain_accuracy")?,
            final_accuracy: f32_of(c, "final_accuracy")?,
            meets_constraint: bool_of(c, "meets_constraint")?,
            pruned_fraction: f32_of(c, "pruned_fraction")?,
            clamped: bool_of(c, "clamped")?,
            // Absent in records written before the eFAT extension.
            warm_started: c
                .field("warm_started")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
        })
    };
    match value.field("kind").and_then(JsonValue::as_str) {
        Some("point") => {
            let p = value.field("point").ok_or_else(|| bad("point"))?;
            let accuracy_after_epoch = match p.field("accuracy_after_epoch") {
                Some(JsonValue::Arr(items)) => items
                    .iter()
                    .map(|a| a.as_f32().ok_or_else(|| bad("accuracy_after_epoch")))
                    .collect::<Result<Vec<f32>>>()?,
                _ => return Err(bad("accuracy_after_epoch")),
            };
            let epochs_to_constraint = match p.field("epochs_to_constraint") {
                Some(v) if v.is_null() => None,
                Some(v) => Some(v.as_usize().ok_or_else(|| bad("epochs_to_constraint"))?),
                None => return Err(bad("epochs_to_constraint")),
            };
            Ok(JournalRecord::Point {
                job: u64_of(&value, "job")?,
                point: ResiliencePoint {
                    rate_index: usize_of(p, "rate_index")?,
                    rate: f64_of(p, "rate")?,
                    repeat: usize_of(p, "repeat")?,
                    pre_retrain_accuracy: f32_of(p, "pre_retrain_accuracy")?,
                    accuracy_after_epoch,
                    epochs_to_constraint,
                },
                workspace: workspace_of(&value)?,
                events: events_of(&value)?,
            })
        }
        Some("point_failed") => Ok(JournalRecord::PointFailed {
            job: u64_of(&value, "job")?,
            rate_index: usize_of(&value, "rate_index")?,
            rate: f64_of(&value, "rate")?,
            repeat: usize_of(&value, "repeat")?,
            attempts: attempts_of(&value)?,
            error: str_of(&value, "error")?,
            events: events_of(&value)?,
        }),
        Some("chip") => {
            let c = value.field("outcome").ok_or_else(|| bad("outcome"))?;
            Ok(JournalRecord::Chip {
                job: u64_of(&value, "job")?,
                policy: str_of(&value, "policy")?,
                outcome: outcome_of(c)?,
                workspace: workspace_of(&value)?,
                events: events_of(&value)?,
            })
        }
        Some("chip_failed") => Ok(JournalRecord::ChipFailed {
            job: u64_of(&value, "job")?,
            policy: str_of(&value, "policy")?,
            chip_id: usize_of(&value, "chip_id")?,
            fault_rate: f64_of(&value, "fault_rate")?,
            attempts: attempts_of(&value)?,
            error: str_of(&value, "error")?,
            events: events_of(&value)?,
        }),
        Some("fleet_batch") => {
            let chips = match value.field("chips") {
                Some(JsonValue::Arr(items)) => items
                    .iter()
                    .map(
                        |entry| match entry.field("status").and_then(JsonValue::as_str) {
                            Some("ok") => {
                                let c = entry.field("outcome").ok_or_else(|| bad("outcome"))?;
                                Ok(SealedChip::Retrained(outcome_of(c)?))
                            }
                            Some("quarantined") => Ok(SealedChip::Quarantined(QuarantinedChip {
                                chip_id: usize_of(entry, "chip_id")?,
                                fault_rate: f64_of(entry, "fault_rate")?,
                                attempts: attempts_of(entry)?,
                                error: str_of(entry, "error")?,
                            })),
                            _ => Err(bad("chip status")),
                        },
                    )
                    .collect::<Result<Vec<SealedChip>>>()?,
                _ => return Err(bad("chips")),
            };
            // Absent in records written before the eFAT extension.
            let clusters = match value.field("clusters") {
                Some(JsonValue::Arr(items)) => items
                    .iter()
                    .map(|entry| {
                        let members = match entry.field("members") {
                            Some(JsonValue::Arr(ids)) => ids
                                .iter()
                                .map(|id| id.as_usize().ok_or_else(|| bad("cluster member")))
                                .collect::<Result<Vec<usize>>>()?,
                            _ => return Err(bad("cluster members")),
                        };
                        Ok(Cluster {
                            representative: usize_of(entry, "representative")?,
                            members,
                        })
                    })
                    .collect::<Result<Vec<Cluster>>>()?,
                Some(_) => return Err(bad("clusters")),
                None => Vec::new(),
            };
            Ok(JournalRecord::FleetBatch {
                policy: str_of(&value, "policy")?,
                window: usize_of(&value, "window")?,
                budget: usize_of(&value, "budget")?,
                chunk: usize_of(&value, "chunk")?,
                clusters,
                chips,
                workspace: workspace_of(&value)?,
                events: events_of(&value)?,
            })
        }
        Some(other) => Err(bad(&format!("unknown kind {other:?}"))),
        None => Err(bad("kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{EpochScope, Stage};

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir()
            .join(format!("reduce_journal_{name}_{}", std::process::id()))
            .join("journal.jsonl")
    }

    fn point_record() -> JournalRecord {
        JournalRecord::Point {
            job: 3,
            point: ResiliencePoint {
                rate_index: 1,
                rate: 0.15,
                repeat: 0,
                pre_retrain_accuracy: 0.625,
                accuracy_after_epoch: vec![0.75, 0.875],
                epochs_to_constraint: Some(2),
            },
            workspace: WorkspaceStats {
                hits: 10,
                misses: 2,
                bytes_allocated: 4096,
            },
            events: vec![
                Event::EpochCompleted {
                    scope: EpochScope::Point {
                        rate_index: 1,
                        repeat: 0,
                    },
                    epoch: 1,
                    accuracy: 0.75,
                },
                Event::PointFinished {
                    rate_index: 1,
                    rate: 0.15,
                    repeat: 0,
                    epochs_to_constraint: Some(2),
                    pre_retrain_accuracy: 0.625,
                    final_accuracy: 0.875,
                },
            ],
        }
    }

    fn sample_outcome(chip_id: usize) -> ChipOutcome {
        ChipOutcome {
            chip_id,
            fault_rate: 0.1,
            epochs_budgeted: 2,
            epochs_run: 2,
            pre_retrain_accuracy: 0.5,
            final_accuracy: 0.9,
            meets_constraint: true,
            pruned_fraction: 0.25,
            clamped: false,
            warm_started: false,
        }
    }

    fn chip_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Chip {
                job: 0,
                policy: "Fixed (2 epochs)".to_string(),
                outcome: sample_outcome(0),
                workspace: WorkspaceStats::default(),
                events: vec![Event::ChipRetrained {
                    chip_id: 0,
                    fault_rate: 0.1,
                    epochs_budgeted: 2,
                    epochs_run: 2,
                    final_accuracy: 0.9,
                    satisfied: true,
                }],
            },
            JournalRecord::ChipFailed {
                job: 1,
                policy: "Fixed (2 epochs)".to_string(),
                chip_id: 1,
                fault_rate: 0.2,
                attempts: 3,
                error: "chaos injection: forced failure (job 1, attempt 2)".to_string(),
                events: vec![Event::JobFailed {
                    stage: Stage::Deploy,
                    job: 1,
                    attempt: 0,
                    error: "quoted \"cause\"\nwith newline".to_string(),
                }],
            },
        ]
    }

    fn batch_record() -> JournalRecord {
        JournalRecord::FleetBatch {
            policy: "Reduce (max)".to_string(),
            window: 1,
            budget: 3,
            chunk: 0,
            clusters: vec![Cluster {
                representative: 7,
                members: vec![8],
            }],
            chips: vec![
                SealedChip::Retrained(sample_outcome(7)),
                SealedChip::Quarantined(QuarantinedChip {
                    chip_id: 8,
                    fault_rate: 0.15,
                    attempts: 2,
                    error: "training diverged: accuracy after epoch 1 is NaN".to_string(),
                }),
            ],
            workspace: WorkspaceStats {
                hits: 7,
                misses: 1,
                bytes_allocated: 1024,
            },
            events: vec![
                Event::ClusterFormed {
                    representative: 7,
                    size: 2,
                },
                Event::WarmStartHit {
                    chip_id: 8,
                    representative: 7,
                },
                Event::ChipRetrained {
                    chip_id: 7,
                    fault_rate: 0.1,
                    epochs_budgeted: 3,
                    epochs_run: 3,
                    final_accuracy: 0.9,
                    satisfied: true,
                },
            ],
        }
    }

    #[test]
    fn pre_cluster_records_parse_with_defaults() {
        // A fleet_batch line written before the eFAT extension: no
        // "clusters" on the batch, no "warm_started" on the outcome.
        let legacy = concat!(
            "{\"kind\":\"fleet_batch\",\"policy\":\"Reduce (max)\",\"window\":1,",
            "\"budget\":3,\"chunk\":0,\"chips\":[{\"status\":\"ok\",\"outcome\":",
            "{\"chip_id\":7,\"fault_rate\":0.1,\"epochs_budgeted\":3,\"epochs_run\":2,",
            "\"pre_retrain_accuracy\":0.5,\"final_accuracy\":0.9,\"meets_constraint\":true,",
            "\"pruned_fraction\":0.25,\"clamped\":false}}],",
            "\"workspace\":{\"hits\":7,\"misses\":1,\"bytes_allocated\":1024},\"events\":[]}"
        );
        match parse_record(legacy).expect("legacy line parses") {
            JournalRecord::FleetBatch {
                clusters, chips, ..
            } => {
                assert!(clusters.is_empty(), "missing clusters default to none");
                match &chips[0] {
                    SealedChip::Retrained(outcome) => assert!(!outcome.warm_started),
                    other => panic!("expected retrained chip, got {other:?}"),
                }
            }
            other => panic!("expected fleet batch, got {other:?}"),
        }
    }

    #[test]
    fn append_resume_round_trips_every_record_kind() {
        let path = scratch("round_trip");
        let journal = Checkpoint::create(&path);
        journal.append(point_record()).expect("append");
        journal
            .append(JournalRecord::PointFailed {
                job: 5,
                rate_index: 2,
                rate: 0.3,
                repeat: 1,
                attempts: 2,
                error: "training diverged: accuracy after epoch 1 is NaN".to_string(),
                events: vec![Event::RetryScheduled {
                    stage: Stage::Characterize,
                    job: 5,
                    attempt: 1,
                    seed: 0x9E37_79B9_7F4A_7C15,
                }],
            })
            .expect("append");
        for r in chip_records() {
            journal.append(r).expect("append");
        }
        journal.append(batch_record()).expect("append");
        let original = journal.records().expect("records");
        let resumed = Checkpoint::resume(&path).expect("parseable journal");
        assert_eq!(resumed.records().expect("records"), original);
        // Appends after resume extend the same shard layout.
        resumed
            .append(JournalRecord::PointFailed {
                job: 9,
                rate_index: 0,
                rate: 0.0,
                repeat: 4,
                attempts: 1,
                error: "x".to_string(),
                events: vec![],
            })
            .expect("append after resume");
        let again = Checkpoint::resume(&path).expect("parseable journal");
        assert_eq!(again.records().expect("records").len(), original.len() + 1);
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn resume_of_a_missing_journal_is_empty() {
        let path = scratch("missing");
        let journal = Checkpoint::resume(&path).expect("missing file is fine");
        assert!(journal.records().expect("records").is_empty());
        assert_eq!(journal.path(), path.as_path());
    }

    #[test]
    fn malformed_journals_are_typed_errors() {
        let path = scratch("malformed");
        let dir = path.parent().expect("has parent");
        std::fs::create_dir_all(dir).expect("temp dir");
        // A file that is neither a JSON header nor a framed manifest.
        std::fs::write(&path, "not a journal\n").expect("temp write");
        match Checkpoint::resume(&path) {
            Err(ReduceError::JournalCorrupt { kind, .. }) => {
                assert_eq!(kind, CorruptKind::Manifest);
            }
            other => panic!("bad header must be JournalCorrupt, got {other:?}"),
        }
        // An unknown record kind in the MIDDLE (a valid record follows it)
        // cannot be healed by tail truncation: typed corruption error.
        let valid = render_record(&chip_records()[0]);
        std::fs::write(
            &path,
            format!("{V1_HEADER}{{\"kind\":\"mystery\",\"job\":0}}\n{valid}"),
        )
        .expect("temp write");
        match Checkpoint::resume(&path) {
            Err(ReduceError::JournalCorrupt {
                shard,
                record,
                kind,
            }) => {
                assert_eq!((shard, record, kind), (0, 0, CorruptKind::BadRecord));
            }
            other => panic!("corrupt middle must be JournalCorrupt, got {other:?}"),
        }
        // The same damage at the TAIL self-heals: resume keeps the valid
        // prefix and truncates the garbage away.
        std::fs::write(
            &path,
            format!("{V1_HEADER}{valid}{{\"kind\":\"mystery\",\"job\":0}}\n"),
        )
        .expect("temp write");
        let journal = Checkpoint::resume(&path).expect("tail damage heals");
        assert_eq!(journal.records().expect("records").len(), 1);
        let text = std::fs::read_to_string(&path).expect("journal exists");
        assert!(!text.contains("mystery"), "damaged tail was truncated away");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn journal_keys_identify_records() {
        let r = point_record();
        assert_eq!(r.grid_key(), Some((1, 0)));
        assert_eq!(r.chip_key(), None);
        assert_eq!(r.batch_key(), None);
        let chips = chip_records();
        assert_eq!(chips[0].chip_key(), Some(("Fixed (2 epochs)", 0)));
        assert_eq!(chips[1].chip_key(), Some(("Fixed (2 epochs)", 1)));
        assert_eq!(chips[0].grid_key(), None);
        let batch = batch_record();
        assert_eq!(batch.batch_key(), Some(("Reduce (max)", 1, 3, 0)));
        assert_eq!(batch.chip_key(), None);
        assert_eq!(batch.grid_key(), None);
    }

    #[test]
    fn shards_bound_bytes_per_append() {
        let path = scratch("shard_bound");
        let journal = Checkpoint::create(&path).with_shard_records(4);
        let mut max_line = 0u64;
        for i in 0..64 {
            let record = JournalRecord::PointFailed {
                job: i,
                rate_index: 0,
                rate: 0.1,
                repeat: i as usize,
                attempts: 1,
                error: "synthetic failure for shard accounting".to_string(),
                events: vec![],
            };
            max_line = max_line.max(frame_line(render_record(&record).trim_end()).len() as u64);
            journal.append(record).expect("append");
        }
        let io = journal.io_stats().expect("stats");
        assert_eq!(io.appends, 64);
        // The largest single rewrite covers at most one full shard (with
        // its seal footer) plus the manifest, never the whole 64-record
        // journal. The on-disk manifest names all 16 digests — the largest
        // it ever gets.
        let manifest_bytes = std::fs::metadata(&path).expect("manifest exists").len();
        let footer_bytes = render_footer(4).len() as u64;
        let bound = 4 * max_line + footer_bytes + manifest_bytes;
        assert!(
            io.max_append_bytes <= bound,
            "append rewrote more than a shard: {} > {bound}",
            io.max_append_bytes,
        );
        // 64 records over 4-record shards => 16 sealed segments on disk,
        // each holding its records plus the seal footer.
        for shard in 0..16 {
            let text = std::fs::read_to_string(shard_path(&path, shard)).expect("shard exists");
            assert_eq!(text.lines().count(), 5, "shard {shard}: 4 records + footer");
        }
        assert!(!shard_path(&path, 16).exists(), "no stray 17th shard");
        // Resume stitches every shard back together.
        let resumed = Checkpoint::resume(&path).expect("parseable journal");
        assert_eq!(resumed.records().expect("records").len(), 64);
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn legacy_v1_journals_still_resume_and_extend() {
        let path = scratch("legacy_v1");
        let dir = path.parent().expect("has parent");
        std::fs::create_dir_all(dir).expect("temp dir");
        let mut contents = String::from(V1_HEADER);
        for r in chip_records() {
            contents.push_str(&render_record(&r));
        }
        std::fs::write(&path, &contents).expect("temp write");
        let journal = Checkpoint::resume(&path).expect("v1 journal parses");
        assert_eq!(journal.records().expect("records"), chip_records());
        // Appends keep the legacy whole-file layout: no shards appear and
        // the file stays a valid v1 journal.
        journal.append(point_record()).expect("append");
        assert!(!shard_path(&path, 0).exists(), "v1 journals stay unsharded");
        let text = std::fs::read_to_string(&path).expect("journal exists");
        assert!(text.starts_with(V1_HEADER));
        assert_eq!(text.lines().count(), 4, "header + three records");
        let resumed = Checkpoint::resume(&path).expect("still parseable");
        assert_eq!(resumed.records().expect("records").len(), 3);
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    /// A collecting observer for asserting on heal telemetry.
    #[derive(Default)]
    struct EventLog(Mutex<Vec<Event>>);

    impl Observer for EventLog {
        fn on_event(&self, event: &Event) {
            self.0.lock().unwrap().push(event.clone());
        }
    }

    fn small_record(i: u64) -> JournalRecord {
        JournalRecord::PointFailed {
            job: i,
            rate_index: 0,
            rate: 0.1,
            repeat: i as usize,
            attempts: 1,
            error: format!("synthetic failure {i}"),
            events: vec![],
        }
    }

    fn cleanup(path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn any_single_byte_flip_in_a_frame_is_detected() {
        let line = frame_line("{\"kind\":\"x\"}");
        let trimmed = line.trim_end();
        assert!(parse_frame(trimmed).is_ok());
        let bytes = trimmed.as_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut flipped = bytes.to_vec();
                flipped[pos] ^= 1 << bit;
                let damaged = String::from_utf8_lossy(&flipped).into_owned();
                assert!(
                    parse_frame(&damaged).is_err(),
                    "flip at byte {pos} bit {bit} went undetected: {damaged:?}"
                );
            }
        }
    }

    #[test]
    fn legacy_v2_journals_still_resume_and_extend() {
        let path = scratch("legacy_v2");
        let dir = path.parent().expect("has parent");
        std::fs::create_dir_all(dir).expect("temp dir");
        // Hand-write the frozen v2 layout: a bare JSON manifest line and
        // unframed shard files.
        std::fs::write(&path, render_manifest(2)).expect("temp write");
        let sealed: String = (0..2).map(|i| render_record(&small_record(i))).collect();
        std::fs::write(shard_path(&path, 0), &sealed).expect("temp write");
        std::fs::write(shard_path(&path, 1), render_record(&small_record(2))).expect("temp write");
        let journal = Checkpoint::resume(&path).expect("v2 journal parses");
        let records = journal.records().expect("records");
        assert_eq!(records, (0..3).map(small_record).collect::<Vec<_>>());
        // Appends keep the v2 layout: the new seal of shard 1 stays
        // unframed and the manifest line stays bare JSON.
        journal.append(small_record(3)).expect("append");
        let manifest = std::fs::read_to_string(&path).expect("manifest");
        assert!(manifest.starts_with('{'), "v2 manifest stays bare JSON");
        let shard1 = std::fs::read_to_string(shard_path(&path, 1)).expect("shard 1");
        assert_eq!(shard1.lines().count(), 2);
        assert!(shard1.starts_with('{'), "v2 shards stay unframed");
        let resumed = Checkpoint::resume(&path).expect("still parseable");
        assert_eq!(resumed.records().expect("records").len(), 4);
        cleanup(&path);
    }

    #[test]
    fn empty_active_shard_resumes_cleanly() {
        let path = scratch("empty_active");
        let journal = Checkpoint::create(&path).with_shard_records(2);
        for i in 0..2 {
            journal.append(small_record(i)).expect("append");
        }
        // A crash immediately after sealing shard 0 can leave a created
        // but empty next shard file.
        std::fs::write(shard_path(&path, 1), "").expect("temp write");
        let health = inspect_journal(&path).expect("inspect");
        assert_eq!(health.status, JournalStatus::Clean);
        let resumed = Checkpoint::resume(&path).expect("resume");
        assert_eq!(resumed.records().expect("records").len(), 2);
        resumed
            .append(small_record(2))
            .expect("append after resume");
        assert_eq!(
            Checkpoint::resume(&path)
                .expect("resume")
                .records()
                .expect("records")
                .len(),
            3
        );
        cleanup(&path);
    }

    #[test]
    fn trailing_garbage_after_footer_heals() {
        let path = scratch("post_footer_garbage");
        let journal = Checkpoint::create(&path).with_shard_records(2);
        for i in 0..2 {
            journal.append(small_record(i)).expect("append");
        }
        let shard = shard_path(&path, 0);
        let mut contents = std::fs::read_to_string(&shard).expect("sealed shard");
        contents.push_str("garbage tail\n");
        std::fs::write(&shard, &contents).expect("temp write");
        assert_eq!(
            inspect_journal(&path).expect("inspect").status,
            JournalStatus::Healable
        );
        let log = EventLog::default();
        let resumed = Checkpoint::resume_observed(&path, &log).expect("heals");
        assert_eq!(resumed.records().expect("records").len(), 2);
        let events = log.0.lock().unwrap();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::ShardTruncated {
                shard: 0,
                kept: 2,
                ..
            }
        )));
        // The reseal restored a byte-valid sealed shard.
        assert_eq!(
            inspect_journal(&path).expect("inspect").status,
            JournalStatus::Clean
        );
        cleanup(&path);
    }

    #[test]
    fn manifest_naming_missing_shard_is_corrupt_and_repairable() {
        let path = scratch("missing_shard");
        let journal = Checkpoint::create(&path).with_shard_records(2);
        for i in 0..2 {
            journal.append(small_record(i)).expect("append");
        }
        std::fs::remove_file(shard_path(&path, 0)).expect("remove sealed shard");
        match Checkpoint::resume(&path) {
            Err(ReduceError::JournalCorrupt { shard, kind, .. }) => {
                assert_eq!((shard, kind), (0, CorruptKind::MissingShard));
            }
            other => panic!("missing sealed shard must be corrupt, got {other:?}"),
        }
        assert_eq!(
            inspect_journal(&path).expect("inspect").status,
            JournalStatus::Corrupt
        );
        let summary = repair_journal(&path, &NullObserver).expect("repair");
        assert!(!summary.was_clean);
        assert_eq!(summary.kept, 0);
        let resumed = Checkpoint::resume(&path).expect("repaired journal resumes");
        assert!(resumed.records().expect("records").is_empty());
        cleanup(&path);
    }

    #[test]
    fn zero_record_journal_round_trips() {
        let path = scratch("zero_records");
        let dir = path.parent().expect("has parent");
        std::fs::create_dir_all(dir).expect("temp dir");
        // A manifest naming no shards (what repair of a wrecked manifest
        // leaves behind).
        std::fs::write(&path, render_manifest_v3(8, &[])).expect("temp write");
        let health = inspect_journal(&path).expect("inspect");
        assert_eq!(health.status, JournalStatus::Clean);
        assert_eq!(health.records, 0);
        assert_eq!(health.version, 3);
        let journal = Checkpoint::resume(&path).expect("resume");
        assert!(journal.records().expect("records").is_empty());
        journal.append(small_record(0)).expect("append");
        assert_eq!(
            Checkpoint::resume(&path)
                .expect("resume")
                .records()
                .expect("records")
                .len(),
            1
        );
        cleanup(&path);
    }

    #[test]
    fn torn_active_shard_heals_to_valid_prefix() {
        let path = scratch("torn_active");
        let journal = Checkpoint::create(&path).with_shard_records(8);
        for i in 0..3 {
            journal.append(small_record(i)).expect("append");
        }
        // Tear the last line of the active shard mid-write.
        let shard = shard_path(&path, 0);
        let contents = std::fs::read(&shard).expect("active shard");
        std::fs::write(&shard, &contents[..contents.len() - 7]).expect("temp write");
        let log = EventLog::default();
        let resumed = Checkpoint::resume_observed(&path, &log).expect("tail tear heals");
        assert_eq!(
            resumed.records().expect("records"),
            (0..2).map(small_record).collect::<Vec<_>>()
        );
        let events = log.0.lock().unwrap();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::ShardTruncated {
                shard: 0,
                kept: 2,
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::RecordDropped {
                shard: 0,
                record: 2
            }
        )));
        drop(events);
        // The healed journal extends normally.
        resumed.append(small_record(2)).expect("append");
        assert_eq!(
            Checkpoint::resume(&path)
                .expect("resume")
                .records()
                .expect("records")
                .len(),
            3
        );
        cleanup(&path);
    }

    #[test]
    fn manifest_lag_behind_sealed_shard_heals() {
        let path = scratch("manifest_lag");
        let journal = Checkpoint::create(&path).with_shard_records(2);
        for i in 0..2 {
            journal.append(small_record(i)).expect("append");
        }
        // Rewind the manifest to before the seal: the sealed shard exists
        // on disk but the manifest does not name it yet — exactly the
        // window a crash between the two writes leaves behind.
        std::fs::write(&path, render_manifest_v3(2, &[])).expect("temp write");
        assert_eq!(
            inspect_journal(&path).expect("inspect").status,
            JournalStatus::Healable
        );
        let resumed = Checkpoint::resume(&path).expect("manifest lag heals");
        assert_eq!(resumed.records().expect("records").len(), 2);
        assert_eq!(
            inspect_journal(&path).expect("inspect").status,
            JournalStatus::Clean,
            "heal rewrote the manifest"
        );
        cleanup(&path);
    }

    #[test]
    fn any_single_byte_flip_in_a_v3_journal_is_never_clean() {
        let path = scratch("bitflip_sweep");
        let journal = Checkpoint::create(&path).with_shard_records(2);
        for i in 0..3 {
            journal.append(small_record(i)).expect("append");
        }
        for target in [path.clone(), shard_path(&path, 0), shard_path(&path, 1)] {
            let pristine = std::fs::read(&target).expect("file exists");
            for pos in 0..pristine.len() {
                let mut flipped = pristine.clone();
                flipped[pos] ^= 0x04; // keeps ASCII printable bytes printable
                std::fs::write(&target, &flipped).expect("temp write");
                let health = inspect_journal(&path).expect("inspect never errors");
                assert_ne!(
                    health.status,
                    JournalStatus::Clean,
                    "flip at {} byte {pos} went undetected",
                    target.display()
                );
            }
            std::fs::write(&target, &pristine).expect("restore");
        }
        cleanup(&path);
    }

    #[test]
    fn v2_journal_with_corrupt_manifest_byte_refuses_resume() {
        let path = scratch("v2_manifest_flip");
        let dir = path.parent().expect("has parent");
        std::fs::create_dir_all(dir).expect("temp dir");
        std::fs::write(&path, render_manifest(2)).expect("temp write");
        let sealed: String = (0..2).map(|i| render_record(&small_record(i))).collect();
        std::fs::write(shard_path(&path, 0), &sealed).expect("temp write");
        std::fs::write(shard_path(&path, 1), render_record(&small_record(2))).expect("temp write");
        // Flip the manifest's first byte: the file no longer starts with
        // `{`, so it is not recognisably v1/v2 — and its unframed shard
        // lines are not recognisably v3 either. Resume must refuse with a
        // typed error rather than adopt the directory as an (empty) v3
        // journal and truncate the shards away.
        let mut manifest = std::fs::read(&path).expect("manifest");
        manifest[0] ^= 0x04;
        std::fs::write(&path, &manifest).expect("temp write");
        match Checkpoint::resume(&path) {
            Err(ReduceError::JournalCorrupt { kind, .. }) => {
                assert_eq!(kind, CorruptKind::Manifest);
            }
            other => panic!("flipped v2 manifest must refuse resume, got {other:?}"),
        }
        assert_eq!(
            std::fs::read_to_string(shard_path(&path, 0)).expect("shard 0 intact"),
            sealed,
            "refused resume must not touch shard data"
        );
        assert!(
            shard_path(&path, 1).exists(),
            "shard 1 survives the refusal"
        );
        assert_eq!(
            inspect_journal(&path).expect("inspect").status,
            JournalStatus::Corrupt
        );
        cleanup(&path);
    }

    #[test]
    fn replaced_sealed_shard_is_a_digest_mismatch_not_a_heal() {
        let path = scratch("digest_mismatch");
        let journal = Checkpoint::create(&path).with_shard_records(2);
        for i in 0..2 {
            journal.append(small_record(i)).expect("append");
        }
        // Wholesale-replace the sealed shard with different, individually
        // valid framed records and a correct footer — a shard from another
        // run, or a restored backup. Every per-record CRC verifies; only
        // the manifest digest can tell the content is not what this
        // journal committed to, so resume must refuse instead of silently
        // adopting it.
        let mut replaced = String::new();
        for i in [7u64, 8] {
            replaced.push_str(&frame_line(render_record(&small_record(i)).trim_end()));
        }
        replaced.push_str(&render_footer(2));
        std::fs::write(shard_path(&path, 0), &replaced).expect("temp write");
        match Checkpoint::resume(&path) {
            Err(ReduceError::JournalCorrupt { shard, kind, .. }) => {
                assert_eq!((shard, kind), (0, CorruptKind::DigestMismatch));
            }
            other => panic!("digest mismatch must refuse resume, got {other:?}"),
        }
        assert_eq!(
            inspect_journal(&path).expect("inspect").status,
            JournalStatus::Corrupt
        );
        // Explicit repair adopts the shard content (per-record CRCs are
        // authoritative) and recomputes the manifest digest.
        repair_journal(&path, &NullObserver).expect("repair");
        assert_eq!(
            Checkpoint::resume(&path)
                .expect("repaired journal resumes")
                .records()
                .expect("records"),
            vec![small_record(7), small_record(8)]
        );
        assert_eq!(
            inspect_journal(&path).expect("inspect").status,
            JournalStatus::Clean
        );
        cleanup(&path);
    }

    #[test]
    fn contentful_shard_after_a_numbering_gap_refuses_resume() {
        let path = scratch("post_gap_stray");
        let journal = Checkpoint::create(&path).with_shard_records(2);
        for i in 0..4 {
            journal.append(small_record(i)).expect("append");
        }
        // Two sealed shards (0, 1), no active file yet. Plant a contentful
        // shard file past a numbering gap: it must neither be silently
        // ignored (the writer would eventually overwrite it) nor deleted
        // by resume — only explicit repair may discard it.
        let stray = shard_path(&path, 5);
        std::fs::copy(shard_path(&path, 0), &stray).expect("plant stray");
        match Checkpoint::resume(&path) {
            Err(ReduceError::JournalCorrupt { shard, kind, .. }) => {
                assert_eq!((shard, kind), (2, CorruptKind::MissingShard));
            }
            other => panic!("post-gap stray must refuse resume, got {other:?}"),
        }
        assert!(stray.exists(), "refused resume must not delete the stray");
        repair_journal(&path, &NullObserver).expect("repair");
        assert!(!stray.exists(), "repair removes the stray");
        let resumed = Checkpoint::resume(&path).expect("resume after repair");
        assert_eq!(resumed.records().expect("records").len(), 4);
        // An *empty* post-gap file is harmless: resume stays clean.
        std::fs::write(&stray, "").expect("empty stray");
        let resumed = Checkpoint::resume(&path).expect("empty stray is harmless");
        assert_eq!(resumed.records().expect("records").len(), 4);
        cleanup(&path);
    }

    #[test]
    fn heal_reports_one_drop_per_record_slot_not_per_garbage_line() {
        let path = scratch("drop_accounting");
        let journal = Checkpoint::create(&path).with_shard_records(8);
        for i in 0..2 {
            journal.append(small_record(i)).expect("append");
        }
        // Three garbage lines after the valid prefix: one torn record
        // slot's worth of loss, not three dropped records.
        let shard = shard_path(&path, 0);
        let mut contents = std::fs::read_to_string(&shard).expect("active shard");
        contents.push_str("torn half-written li\nnoise\nmore noise\n");
        std::fs::write(&shard, &contents).expect("temp write");
        let log = EventLog::default();
        let resumed = Checkpoint::resume_observed(&path, &log).expect("tail garbage heals");
        assert_eq!(resumed.records().expect("records").len(), 2);
        let events = log.0.lock().unwrap();
        let dropped: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::RecordDropped { .. }))
            .collect();
        assert_eq!(
            dropped.len(),
            1,
            "garbage lines are dropped bytes, not dropped records: {dropped:?}"
        );
        assert!(matches!(
            dropped[0],
            Event::RecordDropped {
                shard: 0,
                record: 2
            }
        ));
        cleanup(&path);
    }

    #[test]
    fn fault_sweep_every_io_op_resumes_or_reports_typed_corruption() {
        use crate::artifact::{install_io_policy, FaultKind, FaultyIo, IoPolicy};
        use std::sync::Arc;

        let records: Vec<JournalRecord> = (0..8).map(small_record).collect();
        // Pass 1: count the IO operations a clean run performs.
        let path = scratch("sweep_count");
        std::fs::create_dir_all(path.parent().unwrap()).expect("temp dir");
        let scope = path.parent().unwrap().to_path_buf();
        let counter = Arc::new(FaultyIo::counting(&scope));
        {
            let _guard = install_io_policy(IoPolicy::Faulty(counter.clone()));
            let journal = Checkpoint::create(&path).with_shard_records(3);
            for r in &records {
                journal.append(r.clone()).expect("clean run");
            }
        }
        let total_ops = counter.ops_seen();
        assert!(
            total_ops > 20,
            "expected a rich op sequence, got {total_ops}"
        );
        cleanup(&path);

        // Pass 2: re-run the same append sequence, killing the backend at
        // every operation index with every fault kind. Every crash point
        // must either resume to a strict prefix or report typed corruption
        // that `repair_journal` fixes — and re-appending the remainder must
        // always reconstruct the full record sequence.
        for index in 0..total_ops {
            for kind in FaultKind::ALL {
                let path = scratch(&format!("sweep_{index}_{}", kind.name()));
                std::fs::create_dir_all(path.parent().unwrap()).expect("temp dir");
                let scope = path.parent().unwrap().to_path_buf();
                let injected = Arc::new(FaultyIo::armed(&scope, 0xC0FFEE, index, kind));
                {
                    let _guard = install_io_policy(IoPolicy::Faulty(injected.clone()));
                    let journal = Checkpoint::create(&path).with_shard_records(3);
                    for r in &records {
                        if journal.append(r.clone()).is_err() {
                            break; // the crash point
                        }
                    }
                }
                assert!(injected.fired(), "op {index} never executed");
                // Recovery runs with real IO (the process restarted).
                let resumed = match Checkpoint::resume(&path) {
                    Ok(journal) => journal,
                    Err(ReduceError::JournalCorrupt { .. }) => {
                        repair_journal(&path, &NullObserver).expect("repair succeeds");
                        Checkpoint::resume(&path).expect("repaired journal resumes")
                    }
                    Err(other) => {
                        panic!("op {index} kind {} gave untyped {other}", kind.name())
                    }
                };
                let kept = resumed.records().expect("records");
                assert!(
                    kept.len() <= records.len(),
                    "op {index} kind {} resurrected records",
                    kind.name()
                );
                assert_eq!(
                    kept[..],
                    records[..kept.len()],
                    "op {index} kind {} broke the prefix property",
                    kind.name()
                );
                for r in &records[kept.len()..] {
                    resumed.append(r.clone()).expect("re-append");
                }
                let full = Checkpoint::resume(&path).expect("final resume");
                assert_eq!(
                    full.records().expect("records"),
                    records,
                    "op {index} kind {} lost records",
                    kind.name()
                );
                cleanup(&path);
            }
        }
    }
}
