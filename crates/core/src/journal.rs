//! Checkpoint journal — the pipeline's crash-recovery log.
//!
//! A [`Checkpoint`] records every *sealed* job outcome (a finished grid
//! cell, retrained chip, or fleet batch, successful or quarantined) as one
//! JSON line. The current (version 2) format splits the journal into
//! fixed-size *shard* segments: `journal.jsonl` holds only a one-line
//! manifest naming the shard size, and records live in headerless
//! `journal-00000.jsonl`, `journal-00001.jsonl`, … files beside it. Each
//! append atomically rewrites only the active shard (through
//! [`crate::artifact::write_atomic`]), so the I/O cost of sealing a job is
//! bounded by the shard size — not by the total number of records — while
//! a killed process still always leaves a complete, parseable journal: the
//! worst case loses the in-flight jobs, never corrupts the finished ones.
//!
//! Version-1 journals (a single header-prefixed file rewritten whole on
//! every append) are still read and extended transparently:
//! [`Checkpoint::resume`] detects the header and keeps such journals in
//! the legacy single-file layout.
//!
//! On `--resume`, [`Checkpoint::resume`] reloads the journal and the
//! resumable entry points ([`crate::ResilienceAnalysis::run_resumable`],
//! [`crate::FleetEvaluation::run`]) replay the recorded outcomes —
//! including their buffered telemetry events, re-emitted bit-identically —
//! and compute only the missing jobs. Records carry the stable job id the
//! retry/chaos layer keys on, so a resumed run salts and injects exactly
//! like an uninterrupted one.
//!
//! Journal lines are written in *completion* order, which depends on
//! thread scheduling; determinism lives in the replayed artifacts (run
//! log, manifest, CSVs), not in the journal files themselves.

use crate::artifact::write_atomic;
use crate::error::{ReduceError, Result};
use crate::fleet::{ChipOutcome, QuarantinedChip, SealedChip};
use crate::resilience::ResiliencePoint;
use crate::telemetry::json::{parse, push_json_f32, push_json_f64, push_json_string, JsonValue};
use crate::telemetry::{parse_event, render_event, Event};
use reduce_nn::WorkspaceStats;
use reduce_systolic::Cluster;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const V1_HEADER: &str = "{\"journal\":\"reduce-journal\",\"version\":1}\n";

/// Default records per shard segment: large enough that a shard rewrite
/// stays one buffered write, small enough that per-append I/O is trivially
/// bounded even for million-chip journals.
pub const DEFAULT_SHARD_RECORDS: usize = 256;

fn render_manifest(shard_records: usize) -> String {
    format!("{{\"journal\":\"reduce-journal\",\"version\":2,\"shard_records\":{shard_records}}}\n")
}

fn shard_path(manifest: &Path, index: usize) -> PathBuf {
    let stem = manifest.file_stem().map_or_else(
        || "journal".to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    manifest.with_file_name(format!("{stem}-{index:05}.jsonl"))
}

/// One sealed job outcome in the journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A completed resilience-grid cell.
    Point {
        /// Stable job id (full-grid linear index) the cell was salted with.
        job: u64,
        /// The measured point.
        point: ResiliencePoint,
        /// The cell's model-workspace counters (for the stage aggregate).
        workspace: WorkspaceStats,
        /// The cell's buffered telemetry events, in emission order.
        events: Vec<Event>,
    },
    /// A grid cell that exhausted its retry budget.
    PointFailed {
        /// Stable job id (full-grid linear index).
        job: u64,
        /// Rate index of the failed cell.
        rate_index: usize,
        /// Fault rate of the failed cell.
        rate: f64,
        /// Repeat index of the failed cell.
        repeat: usize,
        /// Attempts consumed (budget + 1).
        attempts: u32,
        /// The final attempt's error.
        error: String,
        /// The cell's failure telemetry, in emission order.
        events: Vec<Event>,
    },
    /// A successfully retrained chip.
    Chip {
        /// Stable job id (the chip id).
        job: u64,
        /// Label of the policy the chip was retrained under (one journal
        /// can hold several policies' outcomes, as `fig3` sweeps them).
        policy: String,
        /// The chip's outcome.
        outcome: ChipOutcome,
        /// The chip's model-workspace counters.
        workspace: WorkspaceStats,
        /// The chip's buffered telemetry events, in emission order.
        events: Vec<Event>,
    },
    /// A chip that exhausted its retry budget.
    ChipFailed {
        /// Stable job id (the chip id).
        job: u64,
        /// Label of the policy the chip was retrained under.
        policy: String,
        /// The quarantined chip's id.
        chip_id: usize,
        /// The quarantined chip's fault rate.
        fault_rate: f64,
        /// Attempts consumed (budget + 1).
        attempts: u32,
        /// The final attempt's error.
        error: String,
        /// The chip's failure telemetry, in emission order.
        events: Vec<Event>,
    },
    /// One sealed batch of the streaming fleet evaluator: every chip the
    /// epoch-budget scheduler ran through one shared workspace, with the
    /// batch's pooled workspace counters and buffered telemetry. The
    /// `(policy, window, budget, chunk)` key is a pure function of the
    /// evaluation config, so a resumed run recomputes the same batches and
    /// replays the sealed ones.
    FleetBatch {
        /// Label of the policy the batch was retrained under.
        policy: String,
        /// Intake-window index the batch belongs to.
        window: usize,
        /// The epoch budget shared by every chip in the batch.
        budget: usize,
        /// Chunk index within the window's budget group.
        chunk: usize,
        /// Fault-similarity clusters the batch formed (empty for per-chip
        /// runs and for records written before the eFAT extension — the
        /// parser defaults the field, so v2 journals stay readable).
        clusters: Vec<Cluster>,
        /// Sealed per-chip fates, in ascending chip-id order.
        chips: Vec<SealedChip>,
        /// The batch's pooled-workspace counters.
        workspace: WorkspaceStats,
        /// The batch's buffered telemetry events, in emission order.
        events: Vec<Event>,
    },
}

impl JournalRecord {
    /// `(rate_index, repeat)` for grid-cell records.
    pub fn grid_key(&self) -> Option<(usize, usize)> {
        match self {
            JournalRecord::Point { point, .. } => Some((point.rate_index, point.repeat)),
            JournalRecord::PointFailed {
                rate_index, repeat, ..
            } => Some((*rate_index, *repeat)),
            _ => None,
        }
    }

    /// `(policy label, chip id)` for per-chip records (the version-1
    /// fleet journal granularity).
    pub fn chip_key(&self) -> Option<(&str, usize)> {
        match self {
            JournalRecord::Chip {
                policy, outcome, ..
            } => Some((policy.as_str(), outcome.chip_id)),
            JournalRecord::ChipFailed {
                policy, chip_id, ..
            } => Some((policy.as_str(), *chip_id)),
            _ => None,
        }
    }

    /// `(policy label, window, budget, chunk)` for fleet-batch records.
    pub fn batch_key(&self) -> Option<(&str, usize, usize, usize)> {
        match self {
            JournalRecord::FleetBatch {
                policy,
                window,
                budget,
                chunk,
                ..
            } => Some((policy.as_str(), *window, *budget, *chunk)),
            _ => None,
        }
    }
}

/// Cumulative journal-write accounting for this process: the evidence that
/// per-append I/O is bounded by the shard size, not the journal length.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Appends performed (replayed records don't count).
    pub appends: u64,
    /// Total bytes handed to the atomic writer across all appends.
    pub bytes_written: u64,
    /// Largest single append's bytes — bounded by one shard's rendered
    /// size in the sharded layout.
    pub max_append_bytes: u64,
}

/// On-disk layout of a journal.
enum Store {
    /// Legacy version 1: header plus every record in one atomically
    /// rewritten file.
    Single {
        /// Rendered record lines, each newline-terminated.
        lines: Vec<String>,
    },
    /// Version 2: a one-line manifest at the journal path, records in
    /// fixed-size shard segments beside it.
    Sharded {
        /// Records per shard segment.
        shard_records: usize,
        /// Whether the manifest file exists on disk yet (it is written
        /// lazily with the first append).
        manifest_written: bool,
        /// Fully sealed shard files on disk; the active shard has this
        /// index.
        sealed_shards: usize,
        /// Rendered lines of the active (partial) shard.
        active: Vec<String>,
    },
}

struct CheckpointState {
    records: Vec<JournalRecord>,
    store: Store,
    appended: usize,
    halt_after: Option<usize>,
    io: IoStats,
}

/// An append-only journal of sealed job outcomes backed by an atomically
/// maintained manifest-plus-shards layout (or, for resumed version-1
/// journals, one whole-file-rewritten `journal.jsonl`).
///
/// Appends are serialised through an internal mutex, so a `Checkpoint` can
/// be shared by the executor's worker threads (the `on_sealed` hook of
/// [`crate::exec::parallel_map_resilient`], or the fleet evaluator's batch
/// jobs).
pub struct Checkpoint {
    path: PathBuf,
    state: Mutex<CheckpointState>,
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl Checkpoint {
    /// A fresh sharded (version 2) journal whose manifest lives at `path`.
    /// Nothing is written until the first [`Checkpoint::append`].
    pub fn create(path: &Path) -> Self {
        Checkpoint {
            path: path.to_path_buf(),
            state: Mutex::new(CheckpointState {
                records: Vec::new(),
                store: Store::Sharded {
                    shard_records: DEFAULT_SHARD_RECORDS,
                    manifest_written: false,
                    sealed_shards: 0,
                    active: Vec::new(),
                },
                appended: 0,
                halt_after: None,
                io: IoStats::default(),
            }),
        }
    }

    /// Overrides the records-per-shard size of a fresh journal. Must be
    /// called before the first append; ignored once the manifest is on
    /// disk (resumed journals keep the shard size they were created with)
    /// and for legacy single-file journals. Zero is ignored.
    #[must_use]
    pub fn with_shard_records(self, n: usize) -> Self {
        if n > 0 {
            if let Ok(mut state) = self.state.lock() {
                if let Store::Sharded {
                    shard_records,
                    manifest_written: false,
                    active,
                    ..
                } = &mut state.store
                {
                    if active.is_empty() {
                        *shard_records = n;
                    }
                }
            }
        }
        self
    }

    /// Reloads the journal at `path`; a missing file is an empty journal
    /// (resuming a run that was killed before its first checkpoint). A
    /// version-1 header keeps the journal in the legacy single-file
    /// layout; a version-2 manifest loads every shard segment beside it.
    ///
    /// # Errors
    ///
    /// [`ReduceError::InvalidConfig`] for an unreadable or malformed file
    /// — the journal is written atomically, so damage means the file was
    /// edited or is not a journal at all.
    pub fn resume(path: &Path) -> Result<Self> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Self::create(path));
            }
            Err(e) => {
                return Err(ReduceError::InvalidConfig {
                    what: format!("cannot read journal {}: {e}", path.display()),
                })
            }
        };
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        if format!("{header}\n") == V1_HEADER {
            return Self::resume_v1(path, lines);
        }
        let shard_records = parse_manifest(header).ok_or_else(|| ReduceError::InvalidConfig {
            what: format!(
                "unrecognised journal header {header:?} in {}",
                path.display()
            ),
        })?;
        Self::resume_sharded(path, shard_records)
    }

    fn resume_v1<'t>(path: &Path, lines: impl Iterator<Item = &'t str>) -> Result<Self> {
        let mut records = Vec::new();
        let mut rendered = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            records.push(parse_record(line)?);
            rendered.push(format!("{line}\n"));
        }
        Ok(Checkpoint {
            path: path.to_path_buf(),
            state: Mutex::new(CheckpointState {
                records,
                store: Store::Single { lines: rendered },
                appended: 0,
                halt_after: None,
                io: IoStats::default(),
            }),
        })
    }

    fn resume_sharded(path: &Path, shard_records: usize) -> Result<Self> {
        let mut records = Vec::new();
        let mut sealed_shards = 0;
        let mut active: Vec<String> = Vec::new();
        loop {
            let shard = shard_path(path, sealed_shards);
            let text = match std::fs::read_to_string(&shard) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
                Err(e) => {
                    return Err(ReduceError::InvalidConfig {
                        what: format!("cannot read journal shard {}: {e}", shard.display()),
                    })
                }
            };
            active.clear();
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                records.push(parse_record(line)?);
                active.push(format!("{line}\n"));
            }
            if active.len() < shard_records {
                // A partial last shard stays active; appends extend it.
                return Ok(Self::resumed_sharded_state(
                    path,
                    shard_records,
                    records,
                    sealed_shards,
                    active,
                ));
            }
            sealed_shards += 1;
        }
        Ok(Self::resumed_sharded_state(
            path,
            shard_records,
            records,
            sealed_shards,
            Vec::new(),
        ))
    }

    fn resumed_sharded_state(
        path: &Path,
        shard_records: usize,
        records: Vec<JournalRecord>,
        sealed_shards: usize,
        active: Vec<String>,
    ) -> Self {
        Checkpoint {
            path: path.to_path_buf(),
            state: Mutex::new(CheckpointState {
                records,
                store: Store::Sharded {
                    shard_records,
                    manifest_written: true,
                    sealed_shards,
                    active,
                },
                appended: 0,
                halt_after: None,
                io: IoStats::default(),
            }),
        }
    }

    /// The journal manifest path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn lock(&self) -> Result<std::sync::MutexGuard<'_, CheckpointState>> {
        self.state.lock().map_err(|_| ReduceError::Internal {
            invariant: "journal appends must not panic while holding the lock".to_string(),
        })
    }

    /// All records currently in the journal (replayed + appended).
    ///
    /// # Errors
    ///
    /// [`ReduceError::Internal`] if the journal lock was poisoned.
    pub fn records(&self) -> Result<Vec<JournalRecord>> {
        Ok(self.lock()?.records.clone())
    }

    /// This process's cumulative append-I/O accounting.
    ///
    /// # Errors
    ///
    /// [`ReduceError::Internal`] if the journal lock was poisoned.
    pub fn io_stats(&self) -> Result<IoStats> {
        Ok(self.lock()?.io)
    }

    /// Arms the CI kill switch: the process exits (code 3) immediately
    /// after the `n`-th successful [`Checkpoint::append`] of this run,
    /// simulating a hard mid-fan-out kill with a complete journal prefix
    /// on disk. Counts appends only — replayed records don't trigger it.
    pub fn set_halt_after(&self, n: usize) {
        if let Ok(mut state) = self.state.lock() {
            state.halt_after = Some(n);
        }
    }

    /// Appends one sealed outcome, atomically rewriting only the active
    /// shard (or, for legacy journals, the whole file) so the on-disk
    /// journal is complete after every append.
    ///
    /// # Errors
    ///
    /// Propagates the atomic write's error; callers treat a failed
    /// checkpoint as fatal (the resume contract would otherwise be
    /// silently broken).
    pub fn append(&self, record: JournalRecord) -> Result<()> {
        let mut state = self.lock()?;
        let line = render_record(&record);
        state.records.push(record);
        let mut bytes: u64 = 0;
        match &mut state.store {
            Store::Single { lines } => {
                lines.push(line);
                let mut contents = String::with_capacity(
                    V1_HEADER.len() + lines.iter().map(String::len).sum::<usize>(),
                );
                contents.push_str(V1_HEADER);
                for l in lines.iter() {
                    contents.push_str(l);
                }
                bytes += contents.len() as u64;
                write_atomic(&self.path, &contents)?;
            }
            Store::Sharded {
                shard_records,
                manifest_written,
                sealed_shards,
                active,
            } => {
                if !*manifest_written {
                    let manifest = render_manifest(*shard_records);
                    bytes += manifest.len() as u64;
                    write_atomic(&self.path, &manifest)?;
                    *manifest_written = true;
                }
                active.push(line);
                let contents = active.concat();
                bytes += contents.len() as u64;
                write_atomic(&shard_path(&self.path, *sealed_shards), &contents)?;
                if active.len() >= *shard_records {
                    *sealed_shards += 1;
                    active.clear();
                }
            }
        }
        state.appended += 1;
        state.io.appends += 1;
        state.io.bytes_written += bytes;
        state.io.max_append_bytes = state.io.max_append_bytes.max(bytes);
        if let Some(n) = state.halt_after {
            if state.appended >= n {
                // The CI kill switch: die *hard*, mid-fan-out, without
                // unwinding — exactly what the resume path must survive.
                eprintln!(
                    "journal: halting after {} checkpoint append(s) as requested",
                    state.appended
                );
                std::process::exit(3);
            }
        }
        Ok(())
    }
}

fn parse_manifest(header: &str) -> Option<usize> {
    let value = parse(header).ok()?;
    if value.field("journal").and_then(JsonValue::as_str) != Some("reduce-journal") {
        return None;
    }
    if value.field("version").and_then(JsonValue::as_u64) != Some(2) {
        return None;
    }
    value
        .field("shard_records")
        .and_then(JsonValue::as_usize)
        .filter(|&n| n > 0)
}

fn push_workspace(out: &mut String, ws: &WorkspaceStats) {
    out.push_str(&format!(
        "{{\"hits\":{},\"misses\":{},\"bytes_allocated\":{}}}",
        ws.hits, ws.misses, ws.bytes_allocated
    ));
}

fn push_events(out: &mut String, events: &[Event]) {
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let line = render_event(e, false);
        out.push_str(line.trim_end());
    }
    out.push(']');
}

fn push_point(out: &mut String, p: &ResiliencePoint) {
    out.push_str(&format!("{{\"rate_index\":{},\"rate\":", p.rate_index));
    push_json_f64(out, p.rate);
    out.push_str(&format!(
        ",\"repeat\":{},\"pre_retrain_accuracy\":",
        p.repeat
    ));
    push_json_f32(out, p.pre_retrain_accuracy);
    out.push_str(",\"accuracy_after_epoch\":[");
    for (i, &a) in p.accuracy_after_epoch.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_f32(out, a);
    }
    out.push_str("],\"epochs_to_constraint\":");
    match p.epochs_to_constraint {
        Some(e) => out.push_str(&format!("{e}")),
        None => out.push_str("null"),
    }
    out.push('}');
}

fn push_chip_outcome(out: &mut String, c: &ChipOutcome) {
    out.push_str(&format!("{{\"chip_id\":{},\"fault_rate\":", c.chip_id));
    push_json_f64(out, c.fault_rate);
    out.push_str(&format!(
        ",\"epochs_budgeted\":{},\"epochs_run\":{},\"pre_retrain_accuracy\":",
        c.epochs_budgeted, c.epochs_run
    ));
    push_json_f32(out, c.pre_retrain_accuracy);
    out.push_str(",\"final_accuracy\":");
    push_json_f32(out, c.final_accuracy);
    out.push_str(&format!(
        ",\"meets_constraint\":{},\"pruned_fraction\":",
        c.meets_constraint
    ));
    push_json_f32(out, c.pruned_fraction);
    out.push_str(&format!(
        ",\"clamped\":{},\"warm_started\":{}}}",
        c.clamped, c.warm_started
    ));
}

fn push_sealed_chip(out: &mut String, sealed: &SealedChip) {
    match sealed {
        SealedChip::Retrained(outcome) => {
            out.push_str("{\"status\":\"ok\",\"outcome\":");
            push_chip_outcome(out, outcome);
            out.push('}');
        }
        SealedChip::Quarantined(q) => {
            out.push_str(&format!(
                "{{\"status\":\"quarantined\",\"chip_id\":{},\"fault_rate\":",
                q.chip_id
            ));
            push_json_f64(out, q.fault_rate);
            out.push_str(&format!(",\"attempts\":{},\"error\":", q.attempts));
            push_json_string(out, &q.error);
            out.push('}');
        }
    }
}

fn render_record(record: &JournalRecord) -> String {
    let mut s = String::with_capacity(256);
    match record {
        JournalRecord::Point {
            job,
            point,
            workspace,
            events,
        } => {
            s.push_str(&format!("{{\"kind\":\"point\",\"job\":{job},\"point\":"));
            push_point(&mut s, point);
            s.push_str(",\"workspace\":");
            push_workspace(&mut s, workspace);
            s.push_str(",\"events\":");
            push_events(&mut s, events);
            s.push('}');
        }
        JournalRecord::PointFailed {
            job,
            rate_index,
            rate,
            repeat,
            attempts,
            error,
            events,
        } => {
            s.push_str(&format!(
                "{{\"kind\":\"point_failed\",\"job\":{job},\"rate_index\":{rate_index},\"rate\":"
            ));
            push_json_f64(&mut s, *rate);
            s.push_str(&format!(
                ",\"repeat\":{repeat},\"attempts\":{attempts},\"error\":"
            ));
            push_json_string(&mut s, error);
            s.push_str(",\"events\":");
            push_events(&mut s, events);
            s.push('}');
        }
        JournalRecord::Chip {
            job,
            policy,
            outcome,
            workspace,
            events,
        } => {
            s.push_str(&format!("{{\"kind\":\"chip\",\"job\":{job},\"policy\":"));
            push_json_string(&mut s, policy);
            s.push_str(",\"outcome\":");
            push_chip_outcome(&mut s, outcome);
            s.push_str(",\"workspace\":");
            push_workspace(&mut s, workspace);
            s.push_str(",\"events\":");
            push_events(&mut s, events);
            s.push('}');
        }
        JournalRecord::ChipFailed {
            job,
            policy,
            chip_id,
            fault_rate,
            attempts,
            error,
            events,
        } => {
            s.push_str(&format!(
                "{{\"kind\":\"chip_failed\",\"job\":{job},\"policy\":"
            ));
            push_json_string(&mut s, policy);
            s.push_str(&format!(",\"chip_id\":{chip_id},\"fault_rate\":"));
            push_json_f64(&mut s, *fault_rate);
            s.push_str(&format!(",\"attempts\":{attempts},\"error\":"));
            push_json_string(&mut s, error);
            s.push_str(",\"events\":");
            push_events(&mut s, events);
            s.push('}');
        }
        JournalRecord::FleetBatch {
            policy,
            window,
            budget,
            chunk,
            clusters,
            chips,
            workspace,
            events,
        } => {
            s.push_str("{\"kind\":\"fleet_batch\",\"policy\":");
            push_json_string(&mut s, policy);
            s.push_str(&format!(
                ",\"window\":{window},\"budget\":{budget},\"chunk\":{chunk},\"clusters\":["
            ));
            for (i, cluster) in clusters.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"representative\":{},\"members\":[",
                    cluster.representative
                ));
                for (j, member) in cluster.members.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("{member}"));
                }
                s.push_str("]}");
            }
            s.push_str("],\"chips\":[");
            for (i, sealed) in chips.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_sealed_chip(&mut s, sealed);
            }
            s.push_str("],\"workspace\":");
            push_workspace(&mut s, workspace);
            s.push_str(",\"events\":");
            push_events(&mut s, events);
            s.push('}');
        }
    }
    s.push('\n');
    s
}

fn parse_record(line: &str) -> Result<JournalRecord> {
    let value = parse(line)?;
    let bad = |what: &str| ReduceError::InvalidConfig {
        what: format!("malformed journal record: {what}"),
    };
    let u64_of = |v: &JsonValue, name: &'static str| -> Result<u64> {
        v.field(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad(name))
    };
    let usize_of = |v: &JsonValue, name: &'static str| -> Result<usize> {
        v.field(name)
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| bad(name))
    };
    let f64_of = |v: &JsonValue, name: &'static str| -> Result<f64> {
        v.field(name)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| bad(name))
    };
    let f32_of = |v: &JsonValue, name: &'static str| -> Result<f32> {
        v.field(name)
            .and_then(JsonValue::as_f32)
            .ok_or_else(|| bad(name))
    };
    let str_of = |v: &JsonValue, name: &'static str| -> Result<String> {
        v.field(name)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad(name))
    };
    let bool_of = |v: &JsonValue, name: &'static str| -> Result<bool> {
        v.field(name)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| bad(name))
    };
    let attempts_of = |v: &JsonValue| -> Result<u32> {
        u64_of(v, "attempts")
            .and_then(|n| u32::try_from(n).map_err(|_| bad("attempts exceeds u32")))
    };
    let events_of = |v: &JsonValue| -> Result<Vec<Event>> {
        match v.field("events") {
            Some(JsonValue::Arr(items)) => items.iter().map(parse_event).collect(),
            _ => Err(bad("events")),
        }
    };
    let workspace_of = |v: &JsonValue| -> Result<WorkspaceStats> {
        let ws = v.field("workspace").ok_or_else(|| bad("workspace"))?;
        Ok(WorkspaceStats {
            hits: u64_of(ws, "hits")?,
            misses: u64_of(ws, "misses")?,
            bytes_allocated: u64_of(ws, "bytes_allocated")?,
        })
    };
    let outcome_of = |c: &JsonValue| -> Result<ChipOutcome> {
        Ok(ChipOutcome {
            chip_id: usize_of(c, "chip_id")?,
            fault_rate: f64_of(c, "fault_rate")?,
            epochs_budgeted: usize_of(c, "epochs_budgeted")?,
            epochs_run: usize_of(c, "epochs_run")?,
            pre_retrain_accuracy: f32_of(c, "pre_retrain_accuracy")?,
            final_accuracy: f32_of(c, "final_accuracy")?,
            meets_constraint: bool_of(c, "meets_constraint")?,
            pruned_fraction: f32_of(c, "pruned_fraction")?,
            clamped: bool_of(c, "clamped")?,
            // Absent in records written before the eFAT extension.
            warm_started: c
                .field("warm_started")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
        })
    };
    match value.field("kind").and_then(JsonValue::as_str) {
        Some("point") => {
            let p = value.field("point").ok_or_else(|| bad("point"))?;
            let accuracy_after_epoch = match p.field("accuracy_after_epoch") {
                Some(JsonValue::Arr(items)) => items
                    .iter()
                    .map(|a| a.as_f32().ok_or_else(|| bad("accuracy_after_epoch")))
                    .collect::<Result<Vec<f32>>>()?,
                _ => return Err(bad("accuracy_after_epoch")),
            };
            let epochs_to_constraint = match p.field("epochs_to_constraint") {
                Some(v) if v.is_null() => None,
                Some(v) => Some(v.as_usize().ok_or_else(|| bad("epochs_to_constraint"))?),
                None => return Err(bad("epochs_to_constraint")),
            };
            Ok(JournalRecord::Point {
                job: u64_of(&value, "job")?,
                point: ResiliencePoint {
                    rate_index: usize_of(p, "rate_index")?,
                    rate: f64_of(p, "rate")?,
                    repeat: usize_of(p, "repeat")?,
                    pre_retrain_accuracy: f32_of(p, "pre_retrain_accuracy")?,
                    accuracy_after_epoch,
                    epochs_to_constraint,
                },
                workspace: workspace_of(&value)?,
                events: events_of(&value)?,
            })
        }
        Some("point_failed") => Ok(JournalRecord::PointFailed {
            job: u64_of(&value, "job")?,
            rate_index: usize_of(&value, "rate_index")?,
            rate: f64_of(&value, "rate")?,
            repeat: usize_of(&value, "repeat")?,
            attempts: attempts_of(&value)?,
            error: str_of(&value, "error")?,
            events: events_of(&value)?,
        }),
        Some("chip") => {
            let c = value.field("outcome").ok_or_else(|| bad("outcome"))?;
            Ok(JournalRecord::Chip {
                job: u64_of(&value, "job")?,
                policy: str_of(&value, "policy")?,
                outcome: outcome_of(c)?,
                workspace: workspace_of(&value)?,
                events: events_of(&value)?,
            })
        }
        Some("chip_failed") => Ok(JournalRecord::ChipFailed {
            job: u64_of(&value, "job")?,
            policy: str_of(&value, "policy")?,
            chip_id: usize_of(&value, "chip_id")?,
            fault_rate: f64_of(&value, "fault_rate")?,
            attempts: attempts_of(&value)?,
            error: str_of(&value, "error")?,
            events: events_of(&value)?,
        }),
        Some("fleet_batch") => {
            let chips = match value.field("chips") {
                Some(JsonValue::Arr(items)) => items
                    .iter()
                    .map(
                        |entry| match entry.field("status").and_then(JsonValue::as_str) {
                            Some("ok") => {
                                let c = entry.field("outcome").ok_or_else(|| bad("outcome"))?;
                                Ok(SealedChip::Retrained(outcome_of(c)?))
                            }
                            Some("quarantined") => Ok(SealedChip::Quarantined(QuarantinedChip {
                                chip_id: usize_of(entry, "chip_id")?,
                                fault_rate: f64_of(entry, "fault_rate")?,
                                attempts: attempts_of(entry)?,
                                error: str_of(entry, "error")?,
                            })),
                            _ => Err(bad("chip status")),
                        },
                    )
                    .collect::<Result<Vec<SealedChip>>>()?,
                _ => return Err(bad("chips")),
            };
            // Absent in records written before the eFAT extension.
            let clusters = match value.field("clusters") {
                Some(JsonValue::Arr(items)) => items
                    .iter()
                    .map(|entry| {
                        let members = match entry.field("members") {
                            Some(JsonValue::Arr(ids)) => ids
                                .iter()
                                .map(|id| id.as_usize().ok_or_else(|| bad("cluster member")))
                                .collect::<Result<Vec<usize>>>()?,
                            _ => return Err(bad("cluster members")),
                        };
                        Ok(Cluster {
                            representative: usize_of(entry, "representative")?,
                            members,
                        })
                    })
                    .collect::<Result<Vec<Cluster>>>()?,
                Some(_) => return Err(bad("clusters")),
                None => Vec::new(),
            };
            Ok(JournalRecord::FleetBatch {
                policy: str_of(&value, "policy")?,
                window: usize_of(&value, "window")?,
                budget: usize_of(&value, "budget")?,
                chunk: usize_of(&value, "chunk")?,
                clusters,
                chips,
                workspace: workspace_of(&value)?,
                events: events_of(&value)?,
            })
        }
        Some(other) => Err(bad(&format!("unknown kind {other:?}"))),
        None => Err(bad("kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{EpochScope, Stage};

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir()
            .join(format!("reduce_journal_{name}_{}", std::process::id()))
            .join("journal.jsonl")
    }

    fn point_record() -> JournalRecord {
        JournalRecord::Point {
            job: 3,
            point: ResiliencePoint {
                rate_index: 1,
                rate: 0.15,
                repeat: 0,
                pre_retrain_accuracy: 0.625,
                accuracy_after_epoch: vec![0.75, 0.875],
                epochs_to_constraint: Some(2),
            },
            workspace: WorkspaceStats {
                hits: 10,
                misses: 2,
                bytes_allocated: 4096,
            },
            events: vec![
                Event::EpochCompleted {
                    scope: EpochScope::Point {
                        rate_index: 1,
                        repeat: 0,
                    },
                    epoch: 1,
                    accuracy: 0.75,
                },
                Event::PointFinished {
                    rate_index: 1,
                    rate: 0.15,
                    repeat: 0,
                    epochs_to_constraint: Some(2),
                    pre_retrain_accuracy: 0.625,
                    final_accuracy: 0.875,
                },
            ],
        }
    }

    fn sample_outcome(chip_id: usize) -> ChipOutcome {
        ChipOutcome {
            chip_id,
            fault_rate: 0.1,
            epochs_budgeted: 2,
            epochs_run: 2,
            pre_retrain_accuracy: 0.5,
            final_accuracy: 0.9,
            meets_constraint: true,
            pruned_fraction: 0.25,
            clamped: false,
            warm_started: false,
        }
    }

    fn chip_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Chip {
                job: 0,
                policy: "Fixed (2 epochs)".to_string(),
                outcome: sample_outcome(0),
                workspace: WorkspaceStats::default(),
                events: vec![Event::ChipRetrained {
                    chip_id: 0,
                    fault_rate: 0.1,
                    epochs_budgeted: 2,
                    epochs_run: 2,
                    final_accuracy: 0.9,
                    satisfied: true,
                }],
            },
            JournalRecord::ChipFailed {
                job: 1,
                policy: "Fixed (2 epochs)".to_string(),
                chip_id: 1,
                fault_rate: 0.2,
                attempts: 3,
                error: "chaos injection: forced failure (job 1, attempt 2)".to_string(),
                events: vec![Event::JobFailed {
                    stage: Stage::Deploy,
                    job: 1,
                    attempt: 0,
                    error: "quoted \"cause\"\nwith newline".to_string(),
                }],
            },
        ]
    }

    fn batch_record() -> JournalRecord {
        JournalRecord::FleetBatch {
            policy: "Reduce (max)".to_string(),
            window: 1,
            budget: 3,
            chunk: 0,
            clusters: vec![Cluster {
                representative: 7,
                members: vec![8],
            }],
            chips: vec![
                SealedChip::Retrained(sample_outcome(7)),
                SealedChip::Quarantined(QuarantinedChip {
                    chip_id: 8,
                    fault_rate: 0.15,
                    attempts: 2,
                    error: "training diverged: accuracy after epoch 1 is NaN".to_string(),
                }),
            ],
            workspace: WorkspaceStats {
                hits: 7,
                misses: 1,
                bytes_allocated: 1024,
            },
            events: vec![
                Event::ClusterFormed {
                    representative: 7,
                    size: 2,
                },
                Event::WarmStartHit {
                    chip_id: 8,
                    representative: 7,
                },
                Event::ChipRetrained {
                    chip_id: 7,
                    fault_rate: 0.1,
                    epochs_budgeted: 3,
                    epochs_run: 3,
                    final_accuracy: 0.9,
                    satisfied: true,
                },
            ],
        }
    }

    #[test]
    fn pre_cluster_records_parse_with_defaults() {
        // A fleet_batch line written before the eFAT extension: no
        // "clusters" on the batch, no "warm_started" on the outcome.
        let legacy = concat!(
            "{\"kind\":\"fleet_batch\",\"policy\":\"Reduce (max)\",\"window\":1,",
            "\"budget\":3,\"chunk\":0,\"chips\":[{\"status\":\"ok\",\"outcome\":",
            "{\"chip_id\":7,\"fault_rate\":0.1,\"epochs_budgeted\":3,\"epochs_run\":2,",
            "\"pre_retrain_accuracy\":0.5,\"final_accuracy\":0.9,\"meets_constraint\":true,",
            "\"pruned_fraction\":0.25,\"clamped\":false}}],",
            "\"workspace\":{\"hits\":7,\"misses\":1,\"bytes_allocated\":1024},\"events\":[]}"
        );
        match parse_record(legacy).expect("legacy line parses") {
            JournalRecord::FleetBatch {
                clusters, chips, ..
            } => {
                assert!(clusters.is_empty(), "missing clusters default to none");
                match &chips[0] {
                    SealedChip::Retrained(outcome) => assert!(!outcome.warm_started),
                    other => panic!("expected retrained chip, got {other:?}"),
                }
            }
            other => panic!("expected fleet batch, got {other:?}"),
        }
    }

    #[test]
    fn append_resume_round_trips_every_record_kind() {
        let path = scratch("round_trip");
        let journal = Checkpoint::create(&path);
        journal.append(point_record()).expect("append");
        journal
            .append(JournalRecord::PointFailed {
                job: 5,
                rate_index: 2,
                rate: 0.3,
                repeat: 1,
                attempts: 2,
                error: "training diverged: accuracy after epoch 1 is NaN".to_string(),
                events: vec![Event::RetryScheduled {
                    stage: Stage::Characterize,
                    job: 5,
                    attempt: 1,
                    seed: 0x9E37_79B9_7F4A_7C15,
                }],
            })
            .expect("append");
        for r in chip_records() {
            journal.append(r).expect("append");
        }
        journal.append(batch_record()).expect("append");
        let original = journal.records().expect("records");
        let resumed = Checkpoint::resume(&path).expect("parseable journal");
        assert_eq!(resumed.records().expect("records"), original);
        // Appends after resume extend the same shard layout.
        resumed
            .append(JournalRecord::PointFailed {
                job: 9,
                rate_index: 0,
                rate: 0.0,
                repeat: 4,
                attempts: 1,
                error: "x".to_string(),
                events: vec![],
            })
            .expect("append after resume");
        let again = Checkpoint::resume(&path).expect("parseable journal");
        assert_eq!(again.records().expect("records").len(), original.len() + 1);
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn resume_of_a_missing_journal_is_empty() {
        let path = scratch("missing");
        let journal = Checkpoint::resume(&path).expect("missing file is fine");
        assert!(journal.records().expect("records").is_empty());
        assert_eq!(journal.path(), path.as_path());
    }

    #[test]
    fn malformed_journals_are_typed_errors() {
        let path = scratch("malformed");
        let dir = path.parent().expect("has parent");
        std::fs::create_dir_all(dir).expect("temp dir");
        std::fs::write(&path, "not a journal\n").expect("temp write");
        assert!(Checkpoint::resume(&path).is_err(), "bad header must error");
        std::fs::write(
            &path,
            format!("{V1_HEADER}{{\"kind\":\"mystery\",\"job\":0}}\n"),
        )
        .expect("temp write");
        assert!(
            Checkpoint::resume(&path).is_err(),
            "unknown kind must error"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn journal_keys_identify_records() {
        let r = point_record();
        assert_eq!(r.grid_key(), Some((1, 0)));
        assert_eq!(r.chip_key(), None);
        assert_eq!(r.batch_key(), None);
        let chips = chip_records();
        assert_eq!(chips[0].chip_key(), Some(("Fixed (2 epochs)", 0)));
        assert_eq!(chips[1].chip_key(), Some(("Fixed (2 epochs)", 1)));
        assert_eq!(chips[0].grid_key(), None);
        let batch = batch_record();
        assert_eq!(batch.batch_key(), Some(("Reduce (max)", 1, 3, 0)));
        assert_eq!(batch.chip_key(), None);
        assert_eq!(batch.grid_key(), None);
    }

    #[test]
    fn shards_bound_bytes_per_append() {
        let path = scratch("shard_bound");
        let journal = Checkpoint::create(&path).with_shard_records(4);
        let mut max_line = 0u64;
        for i in 0..64 {
            let record = JournalRecord::PointFailed {
                job: i,
                rate_index: 0,
                rate: 0.1,
                repeat: i as usize,
                attempts: 1,
                error: "synthetic failure for shard accounting".to_string(),
                events: vec![],
            };
            max_line = max_line.max(render_record(&record).len() as u64);
            journal.append(record).expect("append");
        }
        let io = journal.io_stats().expect("stats");
        assert_eq!(io.appends, 64);
        // The largest single rewrite covers at most one full shard (plus
        // the one-time manifest), never the whole 64-record journal.
        let manifest_bytes = render_manifest(4).len() as u64;
        assert!(
            io.max_append_bytes <= 4 * max_line + manifest_bytes,
            "append rewrote more than a shard: {} > {}",
            io.max_append_bytes,
            4 * max_line + manifest_bytes
        );
        // 64 records over 4-record shards => 16 sealed segments on disk.
        for shard in 0..16 {
            let text = std::fs::read_to_string(shard_path(&path, shard)).expect("shard exists");
            assert_eq!(text.lines().count(), 4, "shard {shard} holds one chunk");
        }
        assert!(!shard_path(&path, 16).exists(), "no stray 17th shard");
        // Resume stitches every shard back together.
        let resumed = Checkpoint::resume(&path).expect("parseable journal");
        assert_eq!(resumed.records().expect("records").len(), 64);
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn legacy_v1_journals_still_resume_and_extend() {
        let path = scratch("legacy_v1");
        let dir = path.parent().expect("has parent");
        std::fs::create_dir_all(dir).expect("temp dir");
        let mut contents = String::from(V1_HEADER);
        for r in chip_records() {
            contents.push_str(&render_record(&r));
        }
        std::fs::write(&path, &contents).expect("temp write");
        let journal = Checkpoint::resume(&path).expect("v1 journal parses");
        assert_eq!(journal.records().expect("records"), chip_records());
        // Appends keep the legacy whole-file layout: no shards appear and
        // the file stays a valid v1 journal.
        journal.append(point_record()).expect("append");
        assert!(!shard_path(&path, 0).exists(), "v1 journals stay unsharded");
        let text = std::fs::read_to_string(&path).expect("journal exists");
        assert!(text.starts_with(V1_HEADER));
        assert_eq!(text.lines().count(), 4, "header + three records");
        let resumed = Checkpoint::resume(&path).expect("still parseable");
        assert_eq!(resumed.records().expect("records").len(), 3);
        if let Some(dir) = path.parent() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}
