//! The end-to-end Reduce framework (Fig. 1 of the paper).
//!
//! [`Reduce`] wires the three steps together:
//!
//! 1. **Characterise** the DNN's resilience over a fault-rate grid
//!    ([`Reduce::characterize`]);
//! 2. **Select** a retraining amount per chip from the resilience table
//!    ([`Reduce::plan`]);
//! 3. **Retrain and deploy** each chip's fault-aware DNN
//!    ([`Reduce::deploy`]).

use crate::error::{ReduceError, Result};
use crate::exec::ExecConfig;
use crate::fat::{FatRunner, Mitigation};
use crate::fleet::{FleetEvaluation, FleetReport};
use crate::policy::RetrainPolicy;
use crate::resilience::{ResilienceAnalysis, ResilienceConfig, ResilienceTable, Selection};
use crate::telemetry::{self, Stage};
use crate::workbench::{Pretrained, Workbench};
use reduce_systolic::Chip;

/// The Reduce framework instance: a pre-trained DNN, its workbench, an
/// accuracy constraint, and (after Step ①) a resilience characterisation.
///
/// Every entry point takes an [`ExecConfig`] choosing the worker-thread
/// count (0 = auto) and the telemetry sink; results are identical at any
/// thread count.
///
/// # Examples
///
/// ```no_run
/// use reduce_core::exec::ExecConfig;
/// use reduce_core::{Reduce, ResilienceConfig, RetrainPolicy, Statistic, Workbench};
/// use reduce_systolic::{generate_fleet, FleetConfig};
///
/// # fn main() -> Result<(), reduce_core::ReduceError> {
/// let exec = ExecConfig::auto();
/// let workbench = Workbench::toy(7);
/// let mut reduce = Reduce::new(workbench, 0.9, 12)?;
/// // Step 1: resilience characterisation.
/// let grid = ResilienceConfig::builder()
///     .max_rate(0.25)
///     .points(4)
///     .max_epochs(10)
///     .build()?;
/// reduce.characterize(grid, &exec)?;
/// // Steps 2+3: per-chip selection + fault-aware retraining.
/// let mut fleet_cfg = FleetConfig::paper(0.25, 3);
/// fleet_cfg.chips = 10;
/// fleet_cfg.rows = 8;
/// fleet_cfg.cols = 8;
/// let fleet = generate_fleet(&fleet_cfg)?;
/// let report = reduce.deploy(&fleet, RetrainPolicy::Reduce(Statistic::Max), &exec)?;
/// println!("{} chips meet the constraint", report.satisfied);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Reduce {
    runner: FatRunner,
    pretrained: Pretrained,
    constraint: f32,
    analysis: Option<ResilienceAnalysis>,
    strategy: Mitigation,
}

impl Reduce {
    /// Creates a framework instance, pre-training the fault-free DNN for
    /// `pretrain_epochs` (the paper receives a pre-trained DNN as input;
    /// this reproduces that input).
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] for a constraint outside
    /// `(0, 1]` and propagates training errors.
    pub fn new(workbench: Workbench, constraint: f32, pretrain_epochs: usize) -> Result<Self> {
        if !(0.0..=1.0).contains(&constraint) || constraint == 0.0 {
            return Err(ReduceError::InvalidConfig {
                what: format!("accuracy constraint {constraint} not in (0, 1]"),
            });
        }
        let pretrained = workbench.pretrain(pretrain_epochs)?;
        let runner = FatRunner::new(workbench)?;
        Ok(Reduce {
            runner,
            pretrained,
            constraint,
            analysis: None,
            strategy: Mitigation::Fap,
        })
    }

    /// Creates an instance from an existing pre-trained model (skips
    /// pre-training).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Reduce::new`] minus training.
    pub fn with_pretrained(
        workbench: Workbench,
        pretrained: Pretrained,
        constraint: f32,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&constraint) || constraint == 0.0 {
            return Err(ReduceError::InvalidConfig {
                what: format!("accuracy constraint {constraint} not in (0, 1]"),
            });
        }
        let runner = FatRunner::new(workbench)?;
        Ok(Reduce {
            runner,
            pretrained,
            constraint,
            analysis: None,
            strategy: Mitigation::Fap,
        })
    }

    /// Switches the mitigation strategy (FAP is the paper's; FAM is the
    /// SalvageDNN ablation).
    pub fn set_strategy(&mut self, strategy: Mitigation) {
        self.strategy = strategy;
    }

    /// The accuracy constraint.
    pub fn constraint(&self) -> f32 {
        self.constraint
    }

    /// The pre-trained fault-free model.
    pub fn pretrained(&self) -> &Pretrained {
        &self.pretrained
    }

    /// The FAT runner (datasets + retraining engine).
    pub fn runner(&self) -> &FatRunner {
        &self.runner
    }

    /// The Step-① analysis, if [`Reduce::characterize`] has run.
    pub fn analysis(&self) -> Option<&ResilienceAnalysis> {
        self.analysis.as_ref()
    }

    /// Step ①: runs the resilience characterisation over `exec`'s workers
    /// on the shared deterministic executor ([`crate::exec`]) — the
    /// analysis is byte-identical at any thread count. The config's
    /// constraint and strategy are overridden by this instance's.
    ///
    /// # Errors
    ///
    /// Propagates characterisation errors.
    pub fn characterize(
        &mut self,
        mut config: ResilienceConfig,
        exec: &ExecConfig,
    ) -> Result<&ResilienceAnalysis> {
        config.constraint = self.constraint;
        config.strategy = self.strategy;
        let analysis = ResilienceAnalysis::run(&self.runner, &self.pretrained, config, exec)?;
        Ok(self.analysis.insert(analysis))
    }

    /// [`Reduce::characterize`] with checkpoint/resume: sealed grid cells
    /// are journaled to `checkpoint` and already-journaled cells are
    /// replayed instead of re-run (see
    /// [`ResilienceAnalysis::run_resumable`]).
    ///
    /// # Errors
    ///
    /// Propagates characterisation errors and checkpoint-write failures.
    pub fn characterize_resumable(
        &mut self,
        mut config: ResilienceConfig,
        exec: &ExecConfig,
        checkpoint: Option<&crate::journal::Checkpoint>,
    ) -> Result<&ResilienceAnalysis> {
        config.constraint = self.constraint;
        config.strategy = self.strategy;
        let analysis = ResilienceAnalysis::run_resumable(
            &self.runner,
            &self.pretrained,
            config,
            exec,
            checkpoint,
        )?;
        Ok(self.analysis.insert(analysis))
    }

    /// The Step-② lookup table.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::MissingCharacterization`] before
    /// [`Reduce::characterize`] has run.
    pub fn table(&self) -> Result<ResilienceTable> {
        self.analysis.as_ref().map(|a| a.table()).ok_or_else(|| {
            ReduceError::MissingCharacterization {
                reason: "call characterize() before table()".to_string(),
            }
        })
    }

    /// Step ②: plans the per-chip retraining amounts for a fleet without
    /// retraining anything. Emits a `Plan` stage pair to `exec`'s
    /// observer.
    ///
    /// # Errors
    ///
    /// Propagates selection errors (e.g. a Reduce policy without a table).
    pub fn plan(
        &self,
        fleet: &[Chip],
        policy: RetrainPolicy,
        exec: &ExecConfig,
    ) -> Result<Vec<Selection>> {
        telemetry::timed_stage(exec.observer(), Stage::Plan, || {
            let table = if policy.needs_table() {
                Some(self.table()?)
            } else {
                None
            };
            fleet
                .iter()
                .map(|chip| policy.epochs_for_chip(table.as_ref(), chip.fault_rate()))
                .collect()
        })
    }

    /// Steps ②+③: selects, retrains and evaluates every chip in the
    /// fleet over `exec`'s workers — the report is identical at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Propagates selection and training errors.
    pub fn deploy(
        &self,
        fleet: &[Chip],
        policy: RetrainPolicy,
        exec: &ExecConfig,
    ) -> Result<FleetReport> {
        let table = if policy.needs_table() {
            Some(self.table()?)
        } else {
            None
        };
        let mut eval = FleetEvaluation::new(policy, self.constraint)
            .source(&fleet)
            .strategy(self.strategy)
            .exec(exec)
            .collect_outcomes(true);
        if let Some(table) = table.as_ref() {
            eval = eval.table(table);
        }
        eval.run(&self.runner, &self.pretrained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::Statistic;
    use reduce_systolic::{generate_fleet, FaultModel, FleetConfig, RateDistribution};

    fn fleet(n: usize, hi: f64) -> Vec<Chip> {
        generate_fleet(&FleetConfig {
            chips: n,
            rows: 8,
            cols: 8,
            rates: RateDistribution::Uniform { lo: 0.0, hi },
            model: FaultModel::Random,
            seed: 77,
        })
        .expect("valid fleet")
    }

    #[test]
    fn constraint_validation() {
        assert!(Reduce::new(Workbench::toy(1), 0.0, 1).is_err());
        assert!(Reduce::new(Workbench::toy(1), 1.5, 1).is_err());
    }

    #[test]
    fn table_before_characterize_is_error() {
        let r = Reduce::new(Workbench::toy(2), 0.9, 2).expect("valid");
        assert!(matches!(
            r.table(),
            Err(ReduceError::MissingCharacterization { .. })
        ));
        assert!(r.analysis().is_none());
    }

    #[test]
    fn end_to_end_pipeline() {
        let wb = Workbench::toy(31);
        let mut reduce = Reduce::new(wb, 0.88, 12).expect("valid");
        let baseline = reduce.pretrained().baseline_accuracy;
        assert!(
            baseline > 0.88,
            "baseline {baseline} below the test constraint"
        );
        // Step 1 on a coarse grid.
        let exec = ExecConfig::default();
        let grid = ResilienceConfig::builder()
            .fault_rates(vec![0.0, 0.1, 0.25])
            .max_epochs(8)
            .repeats(2)
            .constraint(0.88)
            .fault_model(FaultModel::Random)
            .strategy(Mitigation::Fap)
            .seed(3)
            .build()
            .expect("valid grid");
        reduce
            .characterize(grid, &exec)
            .expect("characterisation runs");
        let table = reduce.table().expect("characterised");
        assert_eq!(table.entries().len(), 3);
        // Step 2: plans scale with fault rate.
        let chips = fleet(6, 0.25);
        let plan = reduce
            .plan(&chips, RetrainPolicy::Reduce(Statistic::Max), &exec)
            .expect("table available");
        assert_eq!(plan.len(), 6);
        // Step 3: deploy; Reduce should meet the constraint on most chips.
        let report = reduce
            .deploy(&chips, RetrainPolicy::Reduce(Statistic::Max), &exec)
            .expect("deployment runs");
        assert_eq!(report.evaluated, 6);
        assert!(
            report.satisfied >= 4,
            "Reduce(max) satisfied only {}/6 chips",
            report.satisfied
        );
        // Fixed-0 baseline must be no better in yield.
        let fixed0 = reduce
            .deploy(&chips, RetrainPolicy::Fixed(0), &exec)
            .expect("deployment runs");
        assert!(fixed0.satisfied <= report.satisfied);
        assert_eq!(fixed0.total_epochs, 0);
    }

    #[test]
    fn plan_without_table_for_fixed_policy_works() {
        let r = Reduce::new(Workbench::toy(4), 0.9, 2).expect("valid");
        let exec = ExecConfig::default();
        let chips = fleet(3, 0.1);
        let plan = r
            .plan(&chips, RetrainPolicy::Fixed(2), &exec)
            .expect("fixed needs no table");
        assert!(plan.iter().all(|s| s.epochs == 2));
        assert!(r
            .plan(&chips, RetrainPolicy::Reduce(Statistic::Max), &exec)
            .is_err());
    }
}
