//! Atomic, durable artifact writes — and the injectable I/O policy that
//! lets tests prove they are.
//!
//! Every artifact the framework produces — `manifest.json`,
//! `run_log.jsonl`, the resilience table, results CSVs, and the resume
//! journal — is written through [`write_atomic`]: the full contents go to
//! a sibling temporary file which is `fsync`ed, renamed over the
//! destination, and sealed with an `fsync` of the parent directory. On
//! POSIX filesystems the rename is atomic and the two syncs make it
//! *durable*: a crash (or a deliberate `--halt-after` interrupt, or a
//! power loss) leaves either the previous complete artifact or the new
//! complete artifact on disk — never a torn half-write, and never a
//! renamed-but-empty file that only existed in the page cache.
//!
//! # The `IoPolicy` seam
//!
//! Storage faults are injected the same way compute faults are (PR 5's
//! `ChaosPolicy`): through a deterministic policy object instead of ad-hoc
//! mocking. [`write_atomic`] decomposes into five observable operations —
//! `create-dir`, `write-temp`, `sync-temp`, `rename`, `sync-dir` — and an
//! installed [`IoPolicy`] sees each one before it executes. The
//! [`FaultyIo`] backend counts operations under a scope directory and, at
//! a chosen operation index, injects one of four [`FaultKind`]s (torn
//! write, short write, `ENOSPC`, failed rename); after the fault fires the
//! backend reports every further scoped operation as failed, simulating a
//! crashed process on a dead disk. The fault-point sweep harness drives a
//! whole campaign once per operation index and asserts the journal's
//! resume contract at every crash point.
//!
//! This module is the **only** sanctioned call site of raw file-writing
//! primitives (`fs::write`, `File::create`, `fs::rename`,
//! `File::sync_*`); the `artifact-io` xtask lint flags them elsewhere in
//! the result crates and the bench binaries.

use crate::error::{ReduceError, Result};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One of the observable operations [`write_atomic`] decomposes into, in
/// execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// `create_dir_all` on the destination's parent.
    CreateDir,
    /// Writing the full contents to the sibling temporary file.
    WriteTemp,
    /// `sync_all` on the temporary file — the write must be on disk
    /// *before* the rename publishes it.
    SyncTemp,
    /// The atomic `rename` of the temporary file over the destination.
    Rename,
    /// `sync_all` on the parent directory — the rename itself must be on
    /// disk before the artifact is considered sealed.
    SyncDir,
}

impl IoOp {
    /// Stable kebab-case name (used in traces and error messages).
    pub fn name(self) -> &'static str {
        match self {
            IoOp::CreateDir => "create-dir",
            IoOp::WriteTemp => "write-temp",
            IoOp::SyncTemp => "sync-temp",
            IoOp::Rename => "rename",
            IoOp::SyncDir => "sync-dir",
        }
    }
}

/// The storage fault a [`FaultyIo`] injects at its armed operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A torn write: a seeded-length *prefix* of the data becomes visible
    /// at the destination (on a rename, the published file is truncated —
    /// the classic rename-without-fsync power-loss outcome) and the
    /// operation fails. This is the fault that actually corrupts visible
    /// artifacts, so it is the one that exercises journal self-healing.
    Torn,
    /// A short write: only half the bytes reach the temporary file before
    /// the write errors. The destination is never touched.
    Short,
    /// `ENOSPC`: the operation fails with "no space left on device" and
    /// has no side effect.
    Enospc,
    /// The rename itself fails, leaving the temporary file behind and the
    /// destination untouched.
    RenameFail,
}

impl FaultKind {
    /// Stable kebab-case name (the `--io-fault` CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Torn => "torn",
            FaultKind::Short => "short",
            FaultKind::Enospc => "enospc",
            FaultKind::RenameFail => "rename-fail",
        }
    }

    /// Parses a [`FaultKind::name`] spelling.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] naming the accepted
    /// spellings for anything else.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "torn" => Ok(FaultKind::Torn),
            "short" => Ok(FaultKind::Short),
            "enospc" => Ok(FaultKind::Enospc),
            "rename-fail" => Ok(FaultKind::RenameFail),
            other => Err(ReduceError::InvalidConfig {
                what: format!(
                    "unknown io-fault kind {other:?} (expected torn|short|enospc|rename-fail)"
                ),
            }),
        }
    }

    /// Every kind, in sweep order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Torn,
        FaultKind::Short,
        FaultKind::Enospc,
        FaultKind::RenameFail,
    ];
}

/// Deterministic storage-fault injection backend: counts every
/// [`IoOp`] under a scope directory and fails the one at the armed index
/// with the armed [`FaultKind`]; every later scoped operation fails too
/// (the process has conceptually crashed). Paths outside the scope run on
/// the real backend untouched, so a faulty policy installed by one test
/// cannot damage another test's artifacts.
#[derive(Debug)]
pub struct FaultyIo {
    scope: PathBuf,
    seed: u64,
    armed: Option<(u64, FaultKind)>,
    ops: AtomicU64,
    fired: AtomicBool,
    trace: Mutex<Vec<(IoOp, PathBuf)>>,
}

impl FaultyIo {
    /// A counting backend scoped to `scope`: no fault is armed, every
    /// operation executes for real, and [`FaultyIo::ops_seen`] reports
    /// how many fault points the run exposed.
    pub fn counting(scope: &Path) -> Self {
        FaultyIo {
            scope: scope.to_path_buf(),
            seed: 0,
            armed: None,
            ops: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Arms the fault: scoped operation number `index` (0-based) fails
    /// with `kind`; `seed` drives the torn-prefix length.
    #[must_use]
    pub fn armed(scope: &Path, seed: u64, index: u64, kind: FaultKind) -> Self {
        let mut io = Self::counting(scope);
        io.seed = seed;
        io.armed = Some((index, kind));
        io
    }

    /// Scoped operations observed so far (including the faulted one).
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether the armed fault has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// The `(operation, path)` trace of every scoped operation, in
    /// execution order — the evidence for the durability ordering
    /// (`write-temp → sync-temp → rename → sync-dir`).
    pub fn trace(&self) -> Vec<(IoOp, PathBuf)> {
        match self.trace.lock() {
            Ok(t) => t.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    fn in_scope(&self, path: &Path) -> bool {
        path.starts_with(&self.scope)
    }

    /// Registers one operation. `Ok(None)`: execute for real.
    /// `Ok(Some(kind))`: this is the armed index — inject `kind`.
    /// `Err(_)`: a fault already fired; the backend is offline.
    fn tick(&self, op: IoOp, path: &Path) -> std::io::Result<Option<FaultKind>> {
        if !self.in_scope(path) {
            return Ok(None);
        }
        if self.fired() {
            return Err(std::io::Error::other(
                "io fault injected earlier in this run; backend offline",
            ));
        }
        if let Ok(mut t) = self.trace.lock() {
            t.push((op, path.to_path_buf()));
        }
        let index = self.ops.fetch_add(1, Ordering::SeqCst);
        match self.armed {
            Some((at, kind)) if index == at => {
                self.fired.store(true, Ordering::SeqCst);
                Ok(Some(kind))
            }
            _ => Ok(None),
        }
    }

    /// Seeded torn-prefix length for `len` payload bytes: deterministic
    /// in `(seed, op index)`, covering the whole `0..len` range across a
    /// sweep (including 0 — a renamed-but-empty file).
    fn torn_len(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        // splitmix64 finaliser over seed ⊕ fault index.
        let mut z = self
            .seed
            .wrapping_add(self.ops_seen())
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % len as u64) as usize
    }
}

/// The I/O policy [`write_atomic`] routes through: the real durable
/// backend, or a [`FaultyIo`] injection backend for crash testing.
#[derive(Debug, Clone, Default)]
pub enum IoPolicy {
    /// Real filesystem operations with full durability (the default).
    #[default]
    Real,
    /// Deterministic fault injection under the backend's scope directory.
    Faulty(Arc<FaultyIo>),
}

impl IoPolicy {
    fn faulty(&self) -> Option<&FaultyIo> {
        match self {
            IoPolicy::Real => None,
            IoPolicy::Faulty(io) => Some(io),
        }
    }
}

/// The process-wide installed policy ([`install_io_policy`]); `None`
/// means [`IoPolicy::Real`]. Only the binaries and crash tests install
/// anything; the slot is guarded so concurrent installers (parallel
/// tests) serialise instead of clobbering each other.
static INSTALLED: Mutex<Option<Arc<FaultyIo>>> = Mutex::new(None);
static INSTALL_GATE: Mutex<()> = Mutex::new(());

/// Keeps an installed [`IoPolicy`] active; dropping the guard restores
/// [`IoPolicy::Real`]. Holding the guard also holds the installer gate,
/// so two tests cannot interleave their policies.
#[derive(Debug)]
pub struct IoPolicyGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for IoPolicyGuard {
    fn drop(&mut self) {
        let mut slot = match INSTALLED.lock() {
            Ok(slot) => slot,
            Err(poisoned) => poisoned.into_inner(),
        };
        *slot = None;
    }
}

/// Installs `policy` as the process-wide I/O policy consulted by
/// [`write_atomic`] until the returned guard drops. Installing
/// [`IoPolicy::Real`] is a no-op that still takes the gate (useful to
/// serialise against fault-injecting tests).
pub fn install_io_policy(policy: IoPolicy) -> IoPolicyGuard {
    let gate = match INSTALL_GATE.lock() {
        Ok(gate) => gate,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut slot = match INSTALLED.lock() {
        Ok(slot) => slot,
        Err(poisoned) => poisoned.into_inner(),
    };
    *slot = match policy {
        IoPolicy::Real => None,
        IoPolicy::Faulty(io) => Some(io),
    };
    drop(slot);
    IoPolicyGuard { _gate: gate }
}

/// The currently installed fault-injection backend, if any — the
/// binaries use this to report whether an armed fault fired (and exit
/// with a distinct code for the sweep harness).
pub fn installed_fault_injection() -> Option<Arc<FaultyIo>> {
    match INSTALLED.lock() {
        Ok(slot) => slot.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    }
}

/// Writes `contents` to `path` atomically and durably through the
/// process-wide installed [`IoPolicy`] (the real backend when none is
/// installed). See [`write_atomic_with`].
///
/// # Errors
///
/// Returns [`ReduceError::InvalidConfig`] naming the path when any
/// filesystem step fails (or an injected fault fires).
pub fn write_atomic(path: &Path, contents: &str) -> Result<()> {
    let policy = match installed_fault_injection() {
        Some(io) => IoPolicy::Faulty(io),
        None => IoPolicy::Real,
    };
    write_atomic_with(&policy, path, contents)
}

/// Writes `contents` to `path` atomically (temp file + rename) and
/// durably (temp `fsync` before the rename, parent-directory `fsync`
/// after), creating parent directories as needed, routing every
/// operation through `policy`.
///
/// The temporary file is `<file name>.tmp` in the same directory, so the
/// rename never crosses a filesystem boundary. A leftover `.tmp` from a
/// previous crash is simply overwritten.
///
/// # Errors
///
/// Returns [`ReduceError::InvalidConfig`] naming the path when any
/// filesystem step fails (or an injected fault fires).
pub fn write_atomic_with(policy: &IoPolicy, path: &Path, contents: &str) -> Result<()> {
    let fail = |what: &str, e: std::io::Error| ReduceError::InvalidConfig {
        what: format!("cannot {what} {}: {e}", path.display()),
    };
    let faulty = policy.faulty();
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => Some(p),
        _ => None,
    };
    if let Some(parent) = parent {
        match step(faulty, IoOp::CreateDir, path) {
            Ok(None) => {
                std::fs::create_dir_all(parent).map_err(|e| fail("create directories for", e))?;
            }
            Ok(Some(_kind)) => {
                // Directory creation has no partial state worth modelling;
                // every kind degrades to a plain failure.
                return Err(fail(
                    "create directories for",
                    injected("create_dir_all failed"),
                ));
            }
            Err(e) => return Err(fail("create directories for", e)),
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| ReduceError::InvalidConfig {
            what: format!("cannot write {}: path has no file name", path.display()),
        })?
        .to_os_string();
    let mut tmp_name = file_name;
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let bytes = contents.as_bytes();

    // ① the full contents go to the sibling temporary file…
    match step(faulty, IoOp::WriteTemp, path) {
        Ok(None) => {
            write_file(&tmp, bytes).map_err(|e| fail("write temporary file for", e))?;
        }
        Ok(Some(kind)) => {
            let e = match kind {
                FaultKind::Enospc => enospc(),
                FaultKind::RenameFail => injected("write aborted"),
                FaultKind::Short | FaultKind::Torn => {
                    // Half the payload reaches the (still invisible)
                    // temporary file before the write errors.
                    let _ = write_file(&tmp, bytes.split_at(bytes.len() / 2).0);
                    injected("short write to temporary file")
                }
            };
            return Err(fail("write temporary file for", e));
        }
        Err(e) => return Err(fail("write temporary file for", e)),
    }

    // ② …which is fsynced, so the data is on disk before it can be
    // published…
    match step(faulty, IoOp::SyncTemp, path) {
        Ok(None) => {
            sync_file(&tmp).map_err(|e| fail("sync temporary file for", e))?;
        }
        Ok(Some(kind)) => {
            let e = match kind {
                FaultKind::Enospc => enospc(),
                _ => injected("fsync of temporary file failed"),
            };
            return Err(fail("sync temporary file for", e));
        }
        Err(e) => return Err(fail("sync temporary file for", e)),
    }

    // ③ …then atomically renamed over the destination…
    match step(faulty, IoOp::Rename, path) {
        Ok(None) => {
            std::fs::rename(&tmp, path).map_err(|e| fail("rename temporary file over", e))?;
        }
        Ok(Some(kind)) => {
            let e = match kind {
                FaultKind::Enospc => enospc(),
                FaultKind::RenameFail | FaultKind::Short => injected("rename failed"),
                FaultKind::Torn => {
                    // The power-loss outcome this module exists to
                    // prevent, kept injectable so the recovery path stays
                    // tested: the rename "happens" but only a seeded
                    // prefix of the data survives at the destination.
                    let keep = faulty.map_or(0, |io| io.torn_len(bytes.len()));
                    let _ = write_file(path, bytes.split_at(keep.min(bytes.len())).0);
                    let _ = std::fs::remove_file(&tmp);
                    injected("torn write published at destination")
                }
            };
            return Err(fail("rename temporary file over", e));
        }
        Err(e) => return Err(fail("rename temporary file over", e)),
    }

    // ④ …and the rename itself is made durable by fsyncing the parent
    // directory.
    match step(faulty, IoOp::SyncDir, path) {
        Ok(None) => {
            let dir = parent.unwrap_or_else(|| Path::new("."));
            sync_dir(dir).map_err(|e| fail("sync parent directory of", e))?;
        }
        Ok(Some(kind)) => {
            let e = match kind {
                FaultKind::Enospc => enospc(),
                _ => injected("fsync of parent directory failed"),
            };
            return Err(fail("sync parent directory of", e));
        }
        Err(e) => return Err(fail("sync parent directory of", e)),
    }
    Ok(())
}

fn step(faulty: Option<&FaultyIo>, op: IoOp, path: &Path) -> std::io::Result<Option<FaultKind>> {
    match faulty {
        Some(io) => io.tick(op, path),
        None => Ok(None),
    }
}

fn injected(what: &str) -> std::io::Error {
    std::io::Error::other(format!("io fault injected: {what}"))
}

fn enospc() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::StorageFull,
        "io fault injected: no space left on device",
    )
}

fn write_file(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)
}

fn sync_file(path: &Path) -> std::io::Result<()> {
    File::open(path)?.sync_all()
}

fn sync_dir(dir: &Path) -> std::io::Result<()> {
    // Opening a directory read-only is the POSIX way to fsync it; on
    // filesystems that refuse, durability of the rename cannot be
    // guaranteed and the error surfaces rather than being swallowed.
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("reduce-artifact-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn writes_and_overwrites_with_no_tmp_left_behind() {
        let dir = scratch_dir("basic");
        let path = dir.join("nested").join("out.json");
        write_atomic(&path, "{\"v\":1}").expect("first write");
        assert_eq!(
            std::fs::read_to_string(&path).expect("readable"),
            "{\"v\":1}"
        );
        write_atomic(&path, "{\"v\":2}").expect("overwrite");
        assert_eq!(
            std::fs::read_to_string(&path).expect("readable"),
            "{\"v\":2}"
        );
        assert!(
            !path.with_file_name("out.json.tmp").exists(),
            "temporary file must be renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pathological_paths_are_typed_errors() {
        let err = write_atomic(Path::new("/"), "x").expect_err("no file name");
        assert!(matches!(err, ReduceError::InvalidConfig { .. }));
        let dir = scratch_dir("errors");
        let blocked = dir.join("is-a-dir");
        std::fs::create_dir_all(&blocked).expect("dir");
        let err = write_atomic(&blocked, "x").expect_err("cannot rename over a directory");
        assert!(err.to_string().contains("is-a-dir"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durability_ordering_is_write_sync_rename_syncdir() {
        let dir = scratch_dir("ordering");
        let io = Arc::new(FaultyIo::counting(&dir));
        let _guard = install_io_policy(IoPolicy::Faulty(io.clone()));
        let path = dir.join("deep").join("out.json");
        write_atomic(&path, "{\"v\":1}").expect("write");
        let ops: Vec<IoOp> = io.trace().into_iter().map(|(op, _)| op).collect();
        assert_eq!(
            ops,
            vec![
                IoOp::CreateDir,
                IoOp::WriteTemp,
                IoOp::SyncTemp,
                IoOp::Rename,
                IoOp::SyncDir,
            ],
            "the temp file must be synced before the rename and the parent \
             directory after it"
        );
        assert_eq!(io.ops_seen(), 5);
        assert!(!io.fired());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_scope_paths_bypass_the_faulty_backend() {
        let dir = scratch_dir("scope-a");
        let other = scratch_dir("scope-b");
        let io = Arc::new(FaultyIo::armed(&dir, 1, 0, FaultKind::Enospc));
        let _guard = install_io_policy(IoPolicy::Faulty(io.clone()));
        // A write outside the scope is untouched and uncounted.
        write_atomic(&other.join("fine.json"), "{}").expect("out of scope");
        assert_eq!(io.ops_seen(), 0);
        // The scoped write hits the armed fault at op 0.
        let err = write_atomic(&dir.join("doomed.json"), "{}").expect_err("fault fires");
        assert!(err.to_string().contains("io fault injected"), "{err}");
        assert!(io.fired());
        // After the fault, the backend is offline for the scope…
        let err = write_atomic(&dir.join("later.json"), "{}").expect_err("offline");
        assert!(err.to_string().contains("backend offline"), "{err}");
        // …but still transparent outside it.
        write_atomic(&other.join("fine2.json"), "{}").expect("still out of scope");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&other).ok();
    }

    #[test]
    fn fault_kinds_have_their_documented_side_effects() {
        // Torn at the rename op (index 3 after create-dir/write/sync):
        // the destination holds a strict prefix of the payload.
        let dir = scratch_dir("torn");
        let payload = "0123456789abcdef0123456789abcdef";
        let path = dir.join("torn.json");
        let err = write_atomic_with(
            &IoPolicy::Faulty(Arc::new(FaultyIo::armed(&dir, 42, 3, FaultKind::Torn))),
            &path,
            payload,
        )
        .expect_err("torn rename fails");
        assert!(err.to_string().contains("torn write"), "{err}");
        let on_disk = std::fs::read_to_string(&path).unwrap_or_default();
        assert!(on_disk.len() < payload.len(), "must be a strict prefix");
        assert!(payload.starts_with(&on_disk));
        assert!(!path.with_file_name("torn.json.tmp").exists());

        // Short at the write op: destination untouched, temp torn.
        let path2 = dir.join("short.json");
        let err = write_atomic_with(
            &IoPolicy::Faulty(Arc::new(FaultyIo::armed(&dir, 7, 1, FaultKind::Short))),
            &path2,
            payload,
        )
        .expect_err("short write fails");
        assert!(err.to_string().contains("short write"), "{err}");
        assert!(!path2.exists(), "destination never published");

        // ENOSPC: typed storage-full error, nothing written.
        let path3 = dir.join("full.json");
        let err = write_atomic_with(
            &IoPolicy::Faulty(Arc::new(FaultyIo::armed(&dir, 7, 1, FaultKind::Enospc))),
            &path3,
            payload,
        )
        .expect_err("enospc fails");
        assert!(err.to_string().contains("no space left"), "{err}");
        assert!(!path3.exists());

        // Failed rename: temp survives, destination untouched.
        let path4 = dir.join("rn.json");
        let err = write_atomic_with(
            &IoPolicy::Faulty(Arc::new(FaultyIo::armed(&dir, 7, 3, FaultKind::RenameFail))),
            &path4,
            payload,
        )
        .expect_err("rename fails");
        assert!(err.to_string().contains("rename failed"), "{err}");
        assert!(!path4.exists());
        assert!(path4.with_file_name("rn.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_kind_names_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.name()).expect("parses"), kind);
        }
        assert!(FaultKind::parse("gamma-ray").is_err());
    }
}
