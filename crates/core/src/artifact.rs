//! Atomic artifact writes.
//!
//! Every artifact the framework produces — `manifest.json`,
//! `run_log.jsonl`, the resilience table, results CSVs, and the resume
//! journal — is written through [`write_atomic`]: the full contents go to
//! a sibling temporary file which is then renamed over the destination.
//! On POSIX filesystems the rename is atomic, so a crash (or a deliberate
//! `--halt-after` interrupt) leaves either the previous complete artifact
//! or the new complete artifact on disk — never a torn half-write.
//!
//! This module is the **only** sanctioned call site of `std::fs::write`
//! for artifacts; the `artifact-io` xtask lint flags direct
//! `std::fs::write` / `File::create` calls elsewhere in the result crates
//! and the bench binaries.

use crate::error::{ReduceError, Result};
use std::path::Path;

/// Writes `contents` to `path` atomically (temp file + rename), creating
/// parent directories as needed.
///
/// The temporary file is `<file name>.tmp` in the same directory, so the
/// rename never crosses a filesystem boundary. A leftover `.tmp` from a
/// previous crash is simply overwritten.
///
/// # Errors
///
/// Returns [`ReduceError::InvalidConfig`] naming the path when any
/// filesystem step fails.
pub fn write_atomic(path: &Path, contents: &str) -> Result<()> {
    let fail = |what: &str, e: std::io::Error| ReduceError::InvalidConfig {
        what: format!("cannot {what} {}: {e}", path.display()),
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| fail("create directories for", e))?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| ReduceError::InvalidConfig {
            what: format!("cannot write {}: path has no file name", path.display()),
        })?
        .to_os_string();
    let mut tmp_name = file_name;
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents).map_err(|e| fail("write temporary file for", e))?;
    std::fs::rename(&tmp, path).map_err(|e| fail("rename temporary file over", e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("reduce-artifact-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn writes_and_overwrites_with_no_tmp_left_behind() {
        let dir = scratch_dir("basic");
        let path = dir.join("nested").join("out.json");
        write_atomic(&path, "{\"v\":1}").expect("first write");
        assert_eq!(
            std::fs::read_to_string(&path).expect("readable"),
            "{\"v\":1}"
        );
        write_atomic(&path, "{\"v\":2}").expect("overwrite");
        assert_eq!(
            std::fs::read_to_string(&path).expect("readable"),
            "{\"v\":2}"
        );
        assert!(
            !path.with_file_name("out.json.tmp").exists(),
            "temporary file must be renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pathological_paths_are_typed_errors() {
        let err = write_atomic(Path::new("/"), "x").expect_err("no file name");
        assert!(matches!(err, ReduceError::InvalidConfig { .. }));
        let dir = scratch_dir("errors");
        let blocked = dir.join("is-a-dir");
        std::fs::create_dir_all(&blocked).expect("dir");
        let err = write_atomic(&blocked, "x").expect_err("cannot rename over a directory");
        assert!(err.to_string().contains("is-a-dir"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
