//! Plain-text reporting: the tables and ASCII series the experiment
//! binaries print, mirroring the paper's figures.

use crate::fleet::FleetReport;
use crate::resilience::ResilienceAnalysis;

/// Basic summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
}

/// Computes summary statistics (zeros for an empty slice).
pub fn summary_stats(values: &[f64]) -> SummaryStats {
    if values.is_empty() {
        return SummaryStats {
            n: 0,
            min: 0.0,
            mean: 0.0,
            max: 0.0,
            std: 0.0,
        };
    }
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    SummaryStats {
        n,
        min: values.iter().copied().fold(f64::INFINITY, f64::min),
        mean,
        max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        std: var.sqrt(),
    }
}

/// Renders the Fig. 2a table: mean accuracy at each (fault rate, retraining
/// level) cell.
pub fn render_resilience_curves(analysis: &ResilienceAnalysis, levels: &[usize]) -> String {
    let mut out = String::new();
    out.push_str("fault_rate");
    for &l in levels {
        out.push_str(&format!("  acc@{l}ep"));
    }
    out.push('\n');
    for s in analysis.summaries() {
        out.push_str(&format!("{:>10.4}", s.rate));
        for &l in levels {
            let a = s
                .mean_accuracy_at_level
                .get(l)
                .copied()
                .unwrap_or_else(|| s.mean_accuracy_at_level.last().copied().unwrap_or(0.0));
            out.push_str(&format!("  {:>7.4}", a));
        }
        out.push('\n');
    }
    out
}

/// Renders the Fig. 2b table: min/mean/max epochs-to-constraint per rate.
pub fn render_epochs_to_constraint(analysis: &ResilienceAnalysis) -> String {
    let mut out = String::from("fault_rate  min_ep  mean_ep  max_ep  failures\n");
    for s in analysis.summaries() {
        out.push_str(&format!(
            "{:>10.4}  {:>6}  {:>7.2}  {:>6}  {:>8}\n",
            s.rate, s.min_epochs, s.mean_epochs, s.max_epochs, s.failures
        ));
    }
    out
}

/// Renders a per-chip table for one fleet report (Fig. 3a–e style).
///
/// Per-chip rows need [`FleetReport::outcomes`], which the streaming
/// evaluator only keeps when asked
/// ([`crate::FleetEvaluation::collect_outcomes`]); without them only the
/// quarantine rows render, after a note.
pub fn render_fleet_chips(report: &FleetReport) -> String {
    let mut out = format!(
        "policy: {}  (constraint {:.2}%)\nchip  fault_rate  epochs  pre_acc  final_acc  meets\n",
        report.policy,
        report.constraint * 100.0
    );
    let Some(outcomes) = report.outcomes.as_deref() else {
        out.push_str("(per-chip outcomes not collected for this run)\n");
        for q in &report.quarantined {
            out.push_str(&format!(
                "{:>4}  {:>10.4}  quarantined after {} attempt(s): {}\n",
                q.chip_id, q.fault_rate, q.attempts, q.error
            ));
        }
        return out;
    };
    for c in outcomes {
        out.push_str(&format!(
            "{:>4}  {:>10.4}  {:>6}  {:>7.4}  {:>9.4}  {}\n",
            c.chip_id,
            c.fault_rate,
            c.epochs_run,
            c.pre_retrain_accuracy,
            c.final_accuracy,
            if c.meets_constraint { "yes" } else { "NO" }
        ));
    }
    for q in &report.quarantined {
        out.push_str(&format!(
            "{:>4}  {:>10.4}  quarantined after {} attempt(s): {}\n",
            q.chip_id, q.fault_rate, q.attempts, q.error
        ));
    }
    out
}

/// Renders the Fig. 3f summary: one row per policy.
pub fn render_fleet_summary(reports: &[FleetReport]) -> String {
    let mut out = String::from(
        "policy                 chips  satisfied  yield%  total_epochs  mean_acc  min_acc  quarantined\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{:<22} {:>5}  {:>9}  {:>5.1}  {:>12}  {:>8.4}  {:>7.4}  {:>11}\n",
            r.policy,
            r.evaluated,
            r.satisfied,
            r.yield_fraction() * 100.0,
            r.total_epochs,
            r.mean_accuracy,
            r.min_accuracy,
            r.quarantined_count()
        ));
    }
    out
}

/// Renders the Reduce-vs-eFAT-vs-fixed cost comparison: one row per
/// retraining strategy over the same seeded fleet, with the cluster and
/// warm-start accounting that explains where eFAT's savings come from.
pub fn render_strategy_comparison(reports: &[FleetReport]) -> String {
    let mut out = String::from(
        "strategy               chips  satisfied  yield%  total_epochs  clusters  warm_starts  epochs_saved\n",
    );
    for r in reports {
        out.push_str(&format!(
            "{:<22} {:>5}  {:>9}  {:>5.1}  {:>12}  {:>8}  {:>11}  {:>12}\n",
            r.policy,
            r.evaluated,
            r.satisfied,
            r.yield_fraction() * 100.0,
            r.total_epochs,
            r.clusters,
            r.warm_started,
            r.warm_start_epochs_saved
        ));
    }
    out
}

/// Renders a crude ASCII bar chart of `(label, value)` pairs.
pub fn render_bars(rows: &[(String, f64)], width: usize) -> String {
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut out = String::new();
    for (label, v) in rows {
        let filled = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<24} {:>10.2} |{}\n",
            v,
            "#".repeat(filled.min(width))
        ));
    }
    out
}

/// Escapes one CSV field (quotes fields containing separators/quotes).
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Writes a CSV file with a header row via the shared atomic artifact
/// writer (temp file + rename), so an interrupted run never leaves a torn
/// CSV behind.
///
/// # Errors
///
/// Propagates I/O errors as [`crate::ReduceError::InvalidConfig`].
pub fn write_csv(
    path: &std::path::Path,
    header: &[&str],
    rows: &[Vec<String>],
) -> crate::Result<()> {
    let mut out = String::with_capacity(64 * (rows.len() + 1));
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let escaped: Vec<String> = row.iter().map(|s| csv_escape(s)).collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    crate::artifact::write_atomic(path, &out)
}

/// CSV rows of every raw resilience point: one row per
/// `(rate, repeat, epoch_level)` cell — the data behind both parts of
/// Fig. 2.
pub fn resilience_csv(analysis: &ResilienceAnalysis) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec![
        "fault_rate",
        "repeat",
        "epochs",
        "accuracy",
        "epochs_to_constraint",
    ];
    let mut rows = Vec::new();
    for p in analysis.points() {
        let to_c = p
            .epochs_to_constraint
            .map_or(String::new(), |e| e.to_string());
        rows.push(vec![
            format!("{}", p.rate),
            p.repeat.to_string(),
            "0".to_string(),
            format!("{}", p.pre_retrain_accuracy),
            to_c.clone(),
        ]);
        for (e, acc) in p.accuracy_after_epoch.iter().enumerate() {
            rows.push(vec![
                format!("{}", p.rate),
                p.repeat.to_string(),
                (e + 1).to_string(),
                format!("{acc}"),
                to_c.clone(),
            ]);
        }
    }
    (header, rows)
}

/// CSV rows of a fleet report: one row per chip (Fig. 3a–e data).
pub fn fleet_csv(report: &FleetReport) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let header = vec![
        "policy",
        "chip",
        "fault_rate",
        "epochs_budgeted",
        "epochs_run",
        "pre_retrain_accuracy",
        "final_accuracy",
        "meets_constraint",
        "pruned_fraction",
        "warm_started",
    ];
    let rows = report
        .outcomes
        .as_deref()
        .unwrap_or_default()
        .iter()
        .map(|c| {
            vec![
                report.policy.clone(),
                c.chip_id.to_string(),
                format!("{}", c.fault_rate),
                c.epochs_budgeted.to_string(),
                c.epochs_run.to_string(),
                format!("{}", c.pre_retrain_accuracy),
                format!("{}", c.final_accuracy),
                c.meets_constraint.to_string(),
                format!("{}", c.pruned_fraction),
                c.warm_started.to_string(),
            ]
        })
        .collect();
    (header, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::ChipOutcome;

    #[test]
    fn summary_stats_basic() {
        let s = summary_stats(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(summary_stats(&[]).n, 0);
    }

    fn fake_report() -> FleetReport {
        FleetReport {
            policy: "Fixed (2 epochs)".into(),
            constraint: 0.91,
            evaluated: 1,
            quarantined: vec![],
            total_epochs: 2,
            satisfied: 1,
            mean_accuracy: 0.92,
            min_accuracy: 0.92,
            max_accuracy: 0.92,
            epoch_histogram: std::collections::BTreeMap::from([(2, 1)]),
            retrain_cycles: None,
            clusters: 0,
            warm_started: 0,
            warm_start_epochs_saved: 0,
            outcomes: Some(vec![ChipOutcome {
                chip_id: 0,
                fault_rate: 0.05,
                epochs_budgeted: 2,
                epochs_run: 2,
                pre_retrain_accuracy: 0.8,
                final_accuracy: 0.92,
                meets_constraint: true,
                pruned_fraction: 0.05,
                clamped: false,
                warm_started: false,
            }]),
        }
    }

    #[test]
    fn fleet_tables_render() {
        let r = fake_report();
        let chips = render_fleet_chips(&r);
        assert!(chips.contains("Fixed (2 epochs)"));
        assert!(chips.contains("yes"));
        let summary = render_fleet_summary(&[r]);
        assert!(summary.contains("yield%"));
        assert!(summary.contains("100.0"));
    }

    #[test]
    fn csv_escape_rules() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn fleet_csv_has_row_per_chip() {
        let r = fake_report();
        let (header, rows) = fleet_csv(&r);
        assert_eq!(header.len(), 10);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], "0");
        assert_eq!(rows[0][7], "true");
        assert_eq!(rows[0][9], "false");
    }

    #[test]
    fn strategy_comparison_renders_cluster_accounting() {
        let mut efat = fake_report();
        efat.policy = "Fixed (2 epochs) + eFAT".into();
        efat.clusters = 1;
        efat.warm_started = 1;
        efat.warm_start_epochs_saved = 2;
        let table = render_strategy_comparison(&[fake_report(), efat]);
        assert!(table.contains("epochs_saved"));
        assert!(table.contains("Fixed (2 epochs) + eFAT"));
        let saved_column: Vec<&str> = table
            .lines()
            .skip(1)
            .map(|l| l.split_whitespace().last().expect("non-empty row"))
            .collect();
        assert_eq!(saved_column, ["0", "2"]);
    }

    #[test]
    fn write_csv_round_trip() {
        let dir = std::env::temp_dir().join("reduce_csv_test");
        let path = dir.join("out.csv");
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "x,y".into()]])
            .expect("temp dir writable");
        let text = std::fs::read_to_string(&path).expect("just written");
        assert_eq!(text, "a,b\n1,\"x,y\"\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bars_render_proportionally() {
        let rows = vec![
            ("a".to_string(), 10.0),
            ("b".to_string(), 5.0),
            ("c".to_string(), 0.0),
        ];
        let s = render_bars(&rows, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].matches('#').count() == 10);
        assert!(lines[1].matches('#').count() == 5);
        assert!(lines[2].matches('#').count() == 0);
    }
}
