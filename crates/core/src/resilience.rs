//! Step ① — resilience characterisation.
//!
//! Fault-injection experiments at a grid of fault rates, each repeated with
//! several independent fault maps, measuring test accuracy after every FAT
//! epoch. The analysis yields:
//!
//! * the **resilience curves** (Fig. 2a): accuracy vs fault rate at each
//!   retraining level;
//! * the **epochs-to-constraint** statistics (Fig. 2b): min/mean/max
//!   retraining epochs needed at each fault rate to meet the accuracy
//!   constraint — whose spread is exactly why the paper recommends the
//!   *max* statistic (means undertrain);
//! * a [`ResilienceTable`] that Step ② interpolates to pick a retraining
//!   amount for an arbitrary chip.

use crate::error::{ReduceError, Result};
use crate::exec::{self, ExecConfig, JobStatus};
use crate::fat::{FatRunner, Mitigation, StopRule};
use crate::journal::{Checkpoint, JournalRecord};
use crate::telemetry::{self, EpochScope, Event, Stage};
use crate::workbench::Pretrained;
use reduce_nn::WorkspaceStats;
use reduce_systolic::{FaultMap, FaultModel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the resilience characterisation.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Fault rates to characterise (will be sorted; should include 0).
    pub fault_rates: Vec<f64>,
    /// Maximum FAT epochs measured at each rate.
    pub max_epochs: usize,
    /// Independent fault maps per rate (the paper uses 5).
    pub repeats: usize,
    /// The user's accuracy constraint.
    pub constraint: f32,
    /// Spatial fault model for the injected maps.
    pub fault_model: FaultModel,
    /// Mitigation strategy characterised.
    pub strategy: Mitigation,
    /// Master seed for the injected fault maps.
    pub seed: u64,
}

impl ResilienceConfig {
    /// Starts building a characterisation config. Every invariant is
    /// checked at [`ResilienceConfigBuilder::build`] — an empty grid,
    /// non-finite rates, or zero points/repeats/epochs never reach
    /// [`ResilienceAnalysis::run`].
    pub fn builder() -> ResilienceConfigBuilder {
        ResilienceConfigBuilder::default()
    }

    fn validate(&self) -> Result<()> {
        if self.fault_rates.is_empty()
            || self.repeats == 0
            || self.max_epochs == 0
            || !(0.0..=1.0).contains(&self.constraint)
        {
            return Err(ReduceError::InvalidConfig {
                what: format!(
                    "resilience config rejected: {} rates, {} repeats, {} epochs, constraint {}",
                    self.fault_rates.len(),
                    self.repeats,
                    self.max_epochs,
                    self.constraint
                ),
            });
        }
        for &rate in &self.fault_rates {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(ReduceError::InvalidConfig {
                    what: format!("fault rate {rate} is not a probability"),
                });
            }
        }
        Ok(())
    }
}

/// Validated builder for [`ResilienceConfig`].
///
/// The grid is either explicit ([`ResilienceConfigBuilder::fault_rates`])
/// or generated: `points` rates linearly spaced from 0 to
/// [`ResilienceConfigBuilder::max_rate`]. Defaults match the paper: 4
/// points up to rate 0.3, 5 repeats, 10 epochs, constraint 0.9.
///
/// # Examples
///
/// ```
/// use reduce_core::ResilienceConfig;
///
/// # fn main() -> Result<(), reduce_core::ReduceError> {
/// let config = ResilienceConfig::builder()
///     .max_rate(0.25)
///     .points(4)
///     .max_epochs(10)
///     .constraint(0.9)
///     .build()?;
/// assert_eq!(config.fault_rates.len(), 4);
/// assert!(ResilienceConfig::builder().points(0).build().is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ResilienceConfigBuilder {
    fault_rates: Option<Vec<f64>>,
    max_rate: f64,
    points: usize,
    max_epochs: usize,
    repeats: usize,
    constraint: f32,
    fault_model: FaultModel,
    strategy: Mitigation,
    seed: u64,
}

impl Default for ResilienceConfigBuilder {
    fn default() -> Self {
        ResilienceConfigBuilder {
            fault_rates: None,
            max_rate: 0.3,
            points: 4,
            max_epochs: 10,
            repeats: 5,
            constraint: 0.9,
            fault_model: FaultModel::Random,
            strategy: Mitigation::Fap,
            seed: 0xC0FFEE,
        }
    }
}

impl ResilienceConfigBuilder {
    /// Uses an explicit rate grid instead of the generated linear one.
    #[must_use]
    pub fn fault_rates(mut self, rates: Vec<f64>) -> Self {
        self.fault_rates = Some(rates);
        self
    }

    /// Top of the generated linear grid (ignored with explicit rates).
    #[must_use]
    pub fn max_rate(mut self, max_rate: f64) -> Self {
        self.max_rate = max_rate;
        self
    }

    /// Number of generated grid points (ignored with explicit rates).
    #[must_use]
    pub fn points(mut self, points: usize) -> Self {
        self.points = points;
        self
    }

    /// Maximum FAT epochs measured at each rate.
    #[must_use]
    pub fn max_epochs(mut self, max_epochs: usize) -> Self {
        self.max_epochs = max_epochs;
        self
    }

    /// Independent fault maps per rate (the paper uses 5).
    #[must_use]
    pub fn repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats;
        self
    }

    /// The user's accuracy constraint.
    #[must_use]
    pub fn constraint(mut self, constraint: f32) -> Self {
        self.constraint = constraint;
        self
    }

    /// Spatial fault model for the injected maps.
    #[must_use]
    pub fn fault_model(mut self, fault_model: FaultModel) -> Self {
        self.fault_model = fault_model;
        self
    }

    /// Mitigation strategy characterised.
    #[must_use]
    pub fn strategy(mut self, strategy: Mitigation) -> Self {
        self.strategy = strategy;
        self
    }

    /// Master seed for the injected fault maps.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and produces the config.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] for an empty or non-finite
    /// grid, `points == 0`, a non-finite or out-of-range `max_rate`, zero
    /// repeats or epochs, or a constraint outside `[0, 1]`.
    pub fn build(self) -> Result<ResilienceConfig> {
        let fault_rates = match self.fault_rates {
            Some(rates) => rates,
            None => {
                if self.points == 0 {
                    return Err(ReduceError::InvalidConfig {
                        what: "a generated grid needs points >= 1".to_string(),
                    });
                }
                if !self.max_rate.is_finite() || !(0.0..=1.0).contains(&self.max_rate) {
                    return Err(ReduceError::InvalidConfig {
                        what: format!("max_rate {} is not a probability", self.max_rate),
                    });
                }
                (0..self.points)
                    .map(|i| self.max_rate * i as f64 / (self.points.max(2) - 1) as f64)
                    .collect()
            }
        };
        let config = ResilienceConfig {
            fault_rates,
            max_epochs: self.max_epochs,
            repeats: self.repeats,
            constraint: self.constraint,
            fault_model: self.fault_model,
            strategy: self.strategy,
            seed: self.seed,
        };
        config.validate()?;
        Ok(config)
    }
}

/// One fault-injection run: a single `(rate, repeat)` cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePoint {
    /// Index of [`ResiliencePoint::rate`] in the sorted characterisation
    /// grid — the grouping key for per-rate summaries (grouping by the
    /// `f64` rate itself would be a float-equality footgun).
    pub rate_index: usize,
    /// Injected fault rate.
    pub rate: f64,
    /// Repeat index.
    pub repeat: usize,
    /// Accuracy after masking, before retraining.
    pub pre_retrain_accuracy: f32,
    /// Accuracy after each FAT epoch.
    pub accuracy_after_epoch: Vec<f32>,
    /// Epochs needed to reach the constraint (0 = immediately), if reached.
    pub epochs_to_constraint: Option<usize>,
}

/// A grid cell that exhausted its retry budget and was quarantined.
///
/// Quarantined cells are excluded from every summary statistic; they are
/// reported here (and in the journal/telemetry) instead of failing the
/// whole characterisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedPoint {
    /// Index of the cell's rate in the sorted characterisation grid.
    pub rate_index: usize,
    /// Injected fault rate.
    pub rate: f64,
    /// Repeat index.
    pub repeat: usize,
    /// Attempts consumed (retry budget + 1).
    pub attempts: u32,
    /// The final attempt's error.
    pub error: String,
}

/// Per-rate summary across repeats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSummary {
    /// Fault rate.
    pub rate: f64,
    /// Minimum epochs-to-constraint over repeats (failures count as the
    /// epoch cap).
    pub min_epochs: usize,
    /// Mean epochs-to-constraint over repeats.
    pub mean_epochs: f64,
    /// Maximum epochs-to-constraint over repeats — the paper's recommended
    /// high-confidence statistic.
    pub max_epochs: usize,
    /// Repeats that never met the constraint within the epoch budget.
    pub failures: usize,
    /// Mean accuracy at each retraining level: index 0 is pre-retraining,
    /// index `e` is after `e` epochs (Fig. 2a's y-values).
    pub mean_accuracy_at_level: Vec<f32>,
    /// Repeats quarantined after exhausting the retry budget (excluded
    /// from every other statistic in this summary).
    pub quarantined: usize,
}

/// The full Step-① output.
#[derive(Debug, Clone)]
pub struct ResilienceAnalysis {
    config: ResilienceConfig,
    points: Vec<ResiliencePoint>,
    summaries: Vec<RateSummary>,
    failures: Vec<FailedPoint>,
}

impl ResilienceAnalysis {
    /// Runs the characterisation: `rates × repeats` fault-injection +
    /// retraining experiments, each measuring the full accuracy-per-epoch
    /// curve.
    ///
    /// The grid is fanned out over `exec.threads` workers on the shared
    /// deterministic executor ([`crate::exec`]). Every grid cell is
    /// independently seeded from `(rate index, repeat)` and the executor
    /// returns cells in grid order, so points, summaries and the derived
    /// table are byte-identical to a sequential run regardless of thread
    /// count. `exec`'s observer receives a `Characterize` stage pair,
    /// per-epoch ticks, and one [`Event::PointFinished`] per grid cell,
    /// flushed in grid order.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors; a cell whose training fails (or
    /// panics) is retried up to `exec.retry_budget()` times and then
    /// quarantined into [`ResilienceAnalysis::failures`] rather than
    /// failing the whole characterisation.
    ///
    /// # Examples
    ///
    /// ```
    /// use reduce_core::exec::ExecConfig;
    /// use reduce_core::{FatRunner, ResilienceAnalysis, ResilienceConfig, Workbench};
    ///
    /// # fn main() -> Result<(), reduce_core::ReduceError> {
    /// let workbench = Workbench::toy(1);
    /// let pretrained = workbench.pretrain(5)?;
    /// let runner = FatRunner::new(workbench)?;
    /// let config = ResilienceConfig::builder()
    ///     .max_rate(0.2)
    ///     .points(2)
    ///     .max_epochs(2)
    ///     .repeats(2)
    ///     .constraint(0.85)
    ///     .build()?;
    /// let parallel =
    ///     ResilienceAnalysis::run(&runner, &pretrained, config.clone(), &ExecConfig::new(2))?;
    /// let sequential =
    ///     ResilienceAnalysis::run(&runner, &pretrained, config, &ExecConfig::default())?;
    /// assert_eq!(parallel.points(), sequential.points());
    /// # Ok(())
    /// # }
    /// ```
    pub fn run(
        runner: &FatRunner,
        pretrained: &Pretrained,
        config: ResilienceConfig,
        exec: &ExecConfig,
    ) -> Result<Self> {
        Self::run_resumable(runner, pretrained, config, exec, None)
    }

    /// [`ResilienceAnalysis::run`] with checkpoint/resume: every sealed
    /// grid cell (measured or quarantined) is appended to `checkpoint`,
    /// and cells already in the journal are *replayed* — their outcomes
    /// and buffered telemetry re-emitted bit-identically, in grid order —
    /// instead of re-run. Cells keep their full-grid job id either way, so
    /// retry salts and chaos decisions are independent of which subset
    /// actually executes, and an interrupted-then-resumed run produces the
    /// same analysis and (redacted) artifacts as an uninterrupted one.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors and checkpoint-write failures.
    pub fn run_resumable(
        runner: &FatRunner,
        pretrained: &Pretrained,
        config: ResilienceConfig,
        exec: &ExecConfig,
        checkpoint: Option<&Checkpoint>,
    ) -> Result<Self> {
        config.validate()?;
        let mut rates = config.fault_rates.clone();
        rates.sort_by(|a, b| a.total_cmp(b));
        rates.dedup();
        let (rows, cols) = runner.workbench().array_dims();
        // Job ids are the *full-grid* linear cell index — stable across
        // resume subsetting, which is what keeps retry seeds and chaos
        // decisions identical between interrupted and uninterrupted runs.
        let cells: Vec<(u64, (usize, f64, usize))> = rates
            .iter()
            .enumerate()
            .flat_map(|(ri, &rate)| {
                let repeats = config.repeats;
                (0..repeats).map(move |rep| ((ri * repeats + rep) as u64, (ri, rate, rep)))
            })
            .collect();
        let mut replayed: BTreeMap<(usize, usize), JournalRecord> = BTreeMap::new();
        if let Some(cp) = checkpoint {
            for record in cp.records()? {
                if let Some(key) = record.grid_key() {
                    replayed.insert(key, record);
                }
            }
        }
        let missing: Vec<(u64, (usize, f64, usize))> = cells
            .iter()
            .filter(|(_, (ri, _, rep))| !replayed.contains_key(&(*ri, *rep)))
            .copied()
            .collect();
        let (points, failures) =
            telemetry::timed_stage(exec.observer(), Stage::Characterize, || {
                let repeats = config.repeats;
                let fresh = exec::parallel_map_resilient(
                    &missing,
                    exec,
                    Stage::Characterize,
                    |_, &(ri, rate, rep), salt, events| {
                        let map_seed = config
                            .seed
                            .wrapping_add((ri as u64) << 32)
                            .wrapping_add(rep as u64);
                        // The fault map is the cell's identity and survives
                        // retries; the salt only re-randomises training.
                        let map =
                            FaultMap::generate(rows, cols, rate, config.fault_model, map_seed)?;
                        let outcome = runner.run_observed(
                            pretrained,
                            &map,
                            config.max_epochs,
                            StopRule::Exact,
                            config.strategy,
                            map_seed ^ 0x5EED ^ salt,
                            &mut |epoch, accuracy| {
                                events.push(Event::EpochCompleted {
                                    scope: EpochScope::Point {
                                        rate_index: ri,
                                        repeat: rep,
                                    },
                                    epoch,
                                    accuracy,
                                });
                            },
                        )?;
                        outcome.ensure_finite()?;
                        let final_accuracy = outcome.final_accuracy();
                        let epochs_to_constraint = outcome.epochs_to_reach(config.constraint);
                        events.push(Event::PointFinished {
                            rate_index: ri,
                            rate,
                            repeat: rep,
                            epochs_to_constraint,
                            pre_retrain_accuracy: outcome.pre_retrain_accuracy,
                            final_accuracy,
                        });
                        let point = ResiliencePoint {
                            rate_index: ri,
                            rate,
                            repeat: rep,
                            pre_retrain_accuracy: outcome.pre_retrain_accuracy,
                            epochs_to_constraint,
                            accuracy_after_epoch: outcome.accuracy_after_epoch,
                        };
                        Ok((point, outcome.workspace))
                    },
                    |report| {
                        let Some(cp) = checkpoint else {
                            return Ok(());
                        };
                        let record = match &report.status {
                            JobStatus::Ok((point, workspace)) => JournalRecord::Point {
                                job: report.job,
                                point: point.clone(),
                                workspace: *workspace,
                                events: report.events.clone(),
                            },
                            JobStatus::Quarantined { attempts, error } => {
                                let ri = (report.job as usize) / repeats;
                                JournalRecord::PointFailed {
                                    job: report.job,
                                    rate_index: ri,
                                    rate: rates.get(ri).copied().unwrap_or(f64::NAN),
                                    repeat: (report.job as usize) % repeats,
                                    attempts: *attempts,
                                    error: error.clone(),
                                    events: report.events.clone(),
                                }
                            }
                        };
                        cp.append(record)
                    },
                )?;
                let mut fresh_by_job: BTreeMap<u64, _> =
                    fresh.into_iter().map(|r| (r.job, r)).collect();
                // Stitch replayed and fresh outcomes back into full-grid order;
                // the event stream, points and aggregates below are therefore
                // independent of both thread count and the resume split.
                let mut points = Vec::with_capacity(cells.len());
                let mut failures = Vec::new();
                let mut ws = WorkspaceStats::default();
                for &(job, (ri, rate, rep)) in &cells {
                    if let Some(record) = replayed.get(&(ri, rep)) {
                        match record {
                            JournalRecord::Point {
                                point,
                                workspace,
                                events,
                                ..
                            } => {
                                for e in events {
                                    exec.observer().on_event(e);
                                }
                                ws.merge(workspace);
                                points.push(point.clone());
                            }
                            JournalRecord::PointFailed {
                                attempts,
                                error,
                                events,
                                ..
                            } => {
                                for e in events {
                                    exec.observer().on_event(e);
                                }
                                failures.push(FailedPoint {
                                    rate_index: ri,
                                    rate,
                                    repeat: rep,
                                    attempts: *attempts,
                                    error: error.clone(),
                                });
                            }
                            _ => {
                                return Err(ReduceError::Internal {
                                    invariant: "grid-keyed journal records are point records"
                                        .to_string(),
                                })
                            }
                        }
                    } else if let Some(report) = fresh_by_job.remove(&job) {
                        for e in &report.events {
                            exec.observer().on_event(e);
                        }
                        match report.status {
                            JobStatus::Ok((point, stats)) => {
                                ws.merge(&stats);
                                points.push(point);
                            }
                            JobStatus::Quarantined { attempts, error } => {
                                failures.push(FailedPoint {
                                    rate_index: ri,
                                    rate,
                                    repeat: rep,
                                    attempts,
                                    error,
                                });
                            }
                        }
                    } else {
                        return Err(ReduceError::Internal {
                            invariant: "every grid cell is either replayed or freshly run"
                                .to_string(),
                        });
                    }
                }
                exec.observer().on_event(&Event::WorkspaceUsed {
                    stage: Stage::Characterize,
                    hits: ws.hits,
                    misses: ws.misses,
                    bytes_allocated: ws.bytes_allocated,
                });
                if checkpoint.is_some() {
                    exec.observer().on_event(&Event::CheckpointWritten {
                        stage: Stage::Characterize,
                        completed: cells.len(),
                    });
                }
                Ok::<_, ReduceError>((points, failures))
            })?;
        let summaries = summarise(&rates, &points, &failures, &config);
        Ok(ResilienceAnalysis {
            config,
            points,
            summaries,
            failures,
        })
    }

    /// The configuration that produced this analysis.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// All raw `(rate, repeat)` runs.
    pub fn points(&self) -> &[ResiliencePoint] {
        &self.points
    }

    /// Grid cells quarantined after exhausting their retry budget, in grid
    /// order. Empty on a clean run.
    pub fn failures(&self) -> &[FailedPoint] {
        &self.failures
    }

    /// Per-rate summaries, sorted by rate.
    pub fn summaries(&self) -> &[RateSummary] {
        &self.summaries
    }

    /// Builds the Step-② lookup table.
    pub fn table(&self) -> ResilienceTable {
        ResilienceTable {
            entries: self
                .summaries
                .iter()
                .map(|s| TableEntry {
                    rate: s.rate,
                    mean_epochs: s.mean_epochs,
                    max_epochs: s.max_epochs,
                })
                .collect(),
            epoch_cap: self.config.max_epochs,
        }
    }
}

fn summarise(
    rates: &[f64],
    points: &[ResiliencePoint],
    failures: &[FailedPoint],
    config: &ResilienceConfig,
) -> Vec<RateSummary> {
    rates
        .iter()
        .enumerate()
        .map(|(ri, &rate)| {
            // Group by grid index, not by `f64` equality on the rate.
            let runs: Vec<&ResiliencePoint> =
                points.iter().filter(|p| p.rate_index == ri).collect();
            let cap = config.max_epochs;
            let epochs: Vec<usize> = runs
                .iter()
                .map(|p| p.epochs_to_constraint.unwrap_or(cap))
                .collect();
            let constraint_failures = runs
                .iter()
                .filter(|p| p.epochs_to_constraint.is_none())
                .count();
            let min_epochs = epochs.iter().copied().min().unwrap_or(0);
            let max_epochs = epochs.iter().copied().max().unwrap_or(0);
            let mean_epochs = if epochs.is_empty() {
                0.0
            } else {
                epochs.iter().sum::<usize>() as f64 / epochs.len() as f64
            };
            // Mean accuracy at each level (0 = pre-retrain).
            let mut mean_accuracy_at_level = vec![0.0f32; cap + 1];
            for p in &runs {
                if let Some(level0) = mean_accuracy_at_level.first_mut() {
                    *level0 += p.pre_retrain_accuracy;
                }
                // Runs are Exact so the curve has cap entries; a shorter
                // curve repeats its last accuracy.
                for (e, level) in mean_accuracy_at_level.iter_mut().skip(1).enumerate() {
                    let a =
                        p.accuracy_after_epoch.get(e).copied().unwrap_or_else(|| {
                            p.accuracy_after_epoch.last().copied().unwrap_or(0.0)
                        });
                    *level += a;
                }
            }
            let n = runs.len().max(1) as f32;
            for v in &mut mean_accuracy_at_level {
                *v /= n;
            }
            RateSummary {
                rate,
                min_epochs,
                mean_epochs,
                max_epochs,
                failures: constraint_failures,
                mean_accuracy_at_level,
                quarantined: failures.iter().filter(|f| f.rate_index == ri).count(),
            }
        })
        .collect()
}

/// Which per-rate statistic Step ② reads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Statistic {
    /// The maximum over repeats — the paper's recommendation (high
    /// confidence the constraint is met).
    Max,
    /// The mean over repeats — cheaper but risks undertraining (the paper's
    /// Fig. 3b comparison).
    Mean,
    /// Mean plus a fixed epoch margin — an intermediate ablation.
    MeanPlusMargin(f64),
}

/// One row of the lookup table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    /// Characterised fault rate.
    pub rate: f64,
    /// Mean epochs-to-constraint at this rate.
    pub mean_epochs: f64,
    /// Max epochs-to-constraint at this rate.
    pub max_epochs: usize,
}

/// The retraining amount a lookup produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selection {
    /// Retraining epochs to spend on the chip.
    pub epochs: usize,
    /// Whether the chip's fault rate fell outside the characterised range
    /// (the value was clamped to the nearest grid edge).
    pub clamped: bool,
}

/// The Step-② lookup table: fault rate → retraining epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceTable {
    entries: Vec<TableEntry>,
    epoch_cap: usize,
}

impl ResilienceTable {
    /// Creates a table from explicit entries (sorted by rate internally).
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] for an empty table.
    pub fn from_entries(mut entries: Vec<TableEntry>, epoch_cap: usize) -> Result<Self> {
        if entries.is_empty() {
            return Err(ReduceError::InvalidConfig {
                what: "resilience table needs at least one entry".to_string(),
            });
        }
        entries.sort_by(|a, b| a.rate.total_cmp(&b.rate));
        Ok(ResilienceTable { entries, epoch_cap })
    }

    /// The table rows, sorted by rate.
    pub fn entries(&self) -> &[TableEntry] {
        &self.entries
    }

    /// The epoch budget the characterisation measured up to.
    pub fn epoch_cap(&self) -> usize {
        self.epoch_cap
    }

    /// Whether `rate` lies within the characterised range.
    pub fn covers(&self, rate: f64) -> bool {
        match (self.entries.first(), self.entries.last()) {
            (Some(first), Some(last)) => (first.rate..=last.rate).contains(&rate),
            // `from_entries` rejects empty tables; unreachable in practice.
            _ => false,
        }
    }

    /// Serialises the table to a small, versioned, line-based text format
    /// — the reusable Step-① artifact (characterise once, deploy many
    /// times).
    pub fn to_text(&self) -> String {
        let mut s = String::from("# reduce resilience table v1\n");
        s.push_str(&format!("epoch_cap {}\n", self.epoch_cap));
        s.push_str("rate mean_epochs max_epochs\n");
        for e in &self.entries {
            s.push_str(&format!("{} {} {}\n", e.rate, e.mean_epochs, e.max_epochs));
        }
        s
    }

    /// Parses a table serialised by [`ResilienceTable::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] for a malformed document.
    pub fn from_text(text: &str) -> Result<Self> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        if header.trim() != "# reduce resilience table v1" {
            return Err(ReduceError::InvalidConfig {
                what: format!("unrecognised table header {header:?}"),
            });
        }
        let cap_line = lines.next().unwrap_or_default();
        let epoch_cap = cap_line
            .strip_prefix("epoch_cap ")
            .and_then(|v| v.trim().parse::<usize>().ok())
            .ok_or_else(|| ReduceError::InvalidConfig {
                what: format!("bad epoch_cap line {cap_line:?}"),
            })?;
        let columns = lines.next().unwrap_or_default();
        if columns.trim() != "rate mean_epochs max_epochs" {
            return Err(ReduceError::InvalidConfig {
                what: format!("bad column header {columns:?}"),
            });
        }
        let mut entries = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let parse_err = || ReduceError::InvalidConfig {
                what: format!("bad table row {line:?}"),
            };
            let rate: f64 = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(parse_err)?;
            let mean_epochs: f64 = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(parse_err)?;
            let max_epochs: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(parse_err)?;
            if it.next().is_some() || !(0.0..=1.0).contains(&rate) {
                return Err(parse_err());
            }
            entries.push(TableEntry {
                rate,
                mean_epochs,
                max_epochs,
            });
        }
        Self::from_entries(entries, epoch_cap)
    }

    /// Writes the table to a file via the shared atomic artifact writer
    /// (temp file + rename; a concurrent reader or a crash never sees a
    /// torn table).
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] wrapping the I/O failure.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        crate::artifact::write_atomic(path, &self.to_text())
    }

    /// Reads a table written by [`ResilienceTable::save`].
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] for I/O or parse failures.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let text = std::fs::read_to_string(path).map_err(|e| ReduceError::InvalidConfig {
            what: format!("cannot read table from {}: {e}", path.display()),
        })?;
        Self::from_text(&text)
    }

    /// Selects the retraining amount for a chip with the given fault rate:
    /// piecewise-linear interpolation of the chosen statistic between the
    /// bracketing characterised rates, rounded **up** to whole epochs
    /// (conservative), clamped to the grid edges outside the range.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::MissingCharacterization`] for a non-finite
    /// rate.
    pub fn epochs_for(&self, rate: f64, statistic: Statistic) -> Result<Selection> {
        if !rate.is_finite() || rate < 0.0 {
            return Err(ReduceError::MissingCharacterization {
                reason: format!("fault rate {rate} is not a valid probability"),
            });
        }
        let stat = |e: &TableEntry| -> f64 {
            match statistic {
                Statistic::Max => e.max_epochs as f64,
                Statistic::Mean => e.mean_epochs,
                Statistic::MeanPlusMargin(m) => e.mean_epochs + m,
            }
        };
        let invariant = |what: &str| ReduceError::Internal {
            invariant: what.to_string(),
        };
        let first = self
            .entries
            .first()
            .ok_or_else(|| invariant("resilience tables are non-empty by construction"))?;
        let last = self
            .entries
            .last()
            .ok_or_else(|| invariant("resilience tables are non-empty by construction"))?;
        let raw = if rate <= first.rate {
            stat(first)
        } else if rate >= last.rate {
            stat(last)
        } else {
            let hi = self
                .entries
                .iter()
                .position(|e| e.rate >= rate)
                .ok_or_else(|| invariant("rate < last implies a bracketing entry"))?;
            let a = self
                .entries
                .get(hi.wrapping_sub(1))
                .ok_or_else(|| invariant("rate > first implies a lower bracketing entry"))?;
            let b = &self.entries[hi]; // xtask:allow(index): `position` returned this index
            if (b.rate - a.rate).abs() < f64::EPSILON {
                stat(b)
            } else {
                let t = (rate - a.rate) / (b.rate - a.rate);
                stat(a) + t * (stat(b) - stat(a))
            }
        };
        let epochs = raw.ceil().max(0.0) as usize;
        // The characterisation only measured up to `epoch_cap` epochs, so
        // no selection (in particular a margined one) may budget beyond it.
        Ok(Selection {
            epochs: epochs.min(self.epoch_cap),
            clamped: !self.covers(rate),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ResilienceTable {
        ResilienceTable::from_entries(
            vec![
                TableEntry {
                    rate: 0.0,
                    mean_epochs: 0.0,
                    max_epochs: 0,
                },
                TableEntry {
                    rate: 0.1,
                    mean_epochs: 2.0,
                    max_epochs: 4,
                },
                TableEntry {
                    rate: 0.2,
                    mean_epochs: 5.0,
                    max_epochs: 8,
                },
            ],
            10,
        )
        .expect("non-empty")
    }

    #[test]
    fn exact_grid_lookup() {
        let t = table();
        assert_eq!(t.epochs_for(0.1, Statistic::Max).expect("valid").epochs, 4);
        assert_eq!(t.epochs_for(0.1, Statistic::Mean).expect("valid").epochs, 2);
        assert_eq!(t.epochs_for(0.0, Statistic::Max).expect("valid").epochs, 0);
    }

    #[test]
    fn interpolation_rounds_up() {
        let t = table();
        // Halfway between 4 and 8 is 6 -> exactly 6; at 0.125 it's 5 -> 5.
        assert_eq!(t.epochs_for(0.15, Statistic::Max).expect("valid").epochs, 6);
        let s = t.epochs_for(0.125, Statistic::Max).expect("valid");
        assert_eq!(s.epochs, 5);
        assert!(!s.clamped);
        // Mean interpolation: 2 + 0.5*(5-2) = 3.5 -> ceil 4.
        assert_eq!(
            t.epochs_for(0.15, Statistic::Mean).expect("valid").epochs,
            4
        );
    }

    #[test]
    fn clamping_outside_grid() {
        let t = table();
        let s = t.epochs_for(0.5, Statistic::Max).expect("valid");
        assert_eq!(s.epochs, 8);
        assert!(s.clamped);
        assert!(!t.covers(0.5));
        assert!(t.covers(0.15));
    }

    #[test]
    fn margin_statistic() {
        let t = table();
        assert_eq!(
            t.epochs_for(0.1, Statistic::MeanPlusMargin(1.5))
                .expect("valid")
                .epochs,
            4 // 2.0 + 1.5 = 3.5 -> 4
        );
    }

    #[test]
    fn selections_are_capped_at_epoch_cap() {
        // Regression: the cap used to be a no-op (`min(cap.max(epochs))`),
        // so an aggressive margin could budget epochs the characterisation
        // never measured.
        let t = table(); // epoch_cap = 10
        for rate in [0.0, 0.05, 0.1, 0.15, 0.2, 0.5] {
            let s = t
                .epochs_for(rate, Statistic::MeanPlusMargin(100.0))
                .expect("valid");
            assert_eq!(s.epochs, 10, "margined selection must clamp to the cap");
        }
        // Grid values at/below the cap are untouched.
        assert_eq!(t.epochs_for(0.2, Statistic::Max).expect("valid").epochs, 8);
        // A table whose entries exceed its cap clamps them too.
        let tight = ResilienceTable::from_entries(
            vec![TableEntry {
                rate: 0.1,
                mean_epochs: 9.0,
                max_epochs: 12,
            }],
            6,
        )
        .expect("non-empty");
        assert_eq!(
            tight.epochs_for(0.1, Statistic::Max).expect("valid").epochs,
            6
        );
    }

    #[test]
    fn invalid_rates_rejected() {
        let t = table();
        assert!(t.epochs_for(f64::NAN, Statistic::Max).is_err());
        assert!(t.epochs_for(-0.1, Statistic::Max).is_err());
        assert!(ResilienceTable::from_entries(vec![], 5).is_err());
    }

    #[test]
    fn builder_generates_the_linear_grid() {
        let c = ResilienceConfig::builder()
            .max_rate(0.3)
            .points(4)
            .max_epochs(10)
            .constraint(0.91)
            .build()
            .expect("valid");
        assert_eq!(c.fault_rates.len(), 4);
        assert!((c.fault_rates[0] - 0.0).abs() < 1e-12);
        assert!((c.fault_rates[3] - 0.3).abs() < 1e-12);
        assert_eq!(c.repeats, 5, "paper default");
        assert_eq!(c.seed, 0xC0FFEE, "stable default seed");
    }

    #[test]
    fn builder_accepts_explicit_rates() {
        let c = ResilienceConfig::builder()
            .fault_rates(vec![0.0, 0.05, 0.2])
            .repeats(1)
            .build()
            .expect("valid");
        assert_eq!(c.fault_rates, vec![0.0, 0.05, 0.2]);
        assert_eq!(c.repeats, 1);
    }

    #[test]
    fn builder_rejects_invalid_configs_at_construction() {
        assert!(ResilienceConfig::builder().points(0).build().is_err());
        assert!(ResilienceConfig::builder()
            .max_rate(f64::NAN)
            .build()
            .is_err());
        assert!(ResilienceConfig::builder().max_rate(1.5).build().is_err());
        assert!(ResilienceConfig::builder().repeats(0).build().is_err());
        assert!(ResilienceConfig::builder().max_epochs(0).build().is_err());
        assert!(ResilienceConfig::builder().constraint(1.5).build().is_err());
        assert!(ResilienceConfig::builder()
            .fault_rates(vec![])
            .build()
            .is_err());
        assert!(ResilienceConfig::builder()
            .fault_rates(vec![0.1, f64::INFINITY])
            .build()
            .is_err());
        assert!(ResilienceConfig::builder()
            .fault_rates(vec![-0.1])
            .build()
            .is_err());
    }

    #[test]
    fn config_validation() {
        let mut c = ResilienceConfig::builder().build().expect("valid");
        c.repeats = 0;
        assert!(c.validate().is_err());
        let mut c = ResilienceConfig::builder().build().expect("valid");
        c.constraint = 1.5;
        assert!(c.validate().is_err());
        let mut c = ResilienceConfig::builder().build().expect("valid");
        c.fault_rates.clear();
        assert!(c.validate().is_err());
        let mut c = ResilienceConfig::builder().build().expect("valid");
        c.fault_rates.push(f64::NAN);
        assert!(c.validate().is_err());
    }

    #[test]
    fn text_round_trip() {
        let t = table();
        let parsed = ResilienceTable::from_text(&t.to_text()).expect("own format");
        assert_eq!(parsed, t);
    }

    #[test]
    fn from_text_rejects_malformed_documents() {
        assert!(ResilienceTable::from_text("").is_err());
        assert!(ResilienceTable::from_text("# wrong header\n").is_err());
        let good = table().to_text();
        assert!(ResilienceTable::from_text(&good.replace("epoch_cap 10", "epoch_cap x")).is_err());
        assert!(ResilienceTable::from_text(&good.replace("0.1 2 4", "0.1 2 4 9")).is_err());
        assert!(ResilienceTable::from_text(&good.replace("0.1 2 4", "5.0 2 4")).is_err());
        // Comments and blank lines are tolerated.
        let commented = format!("{good}\n# trailing comment\n\n");
        assert!(ResilienceTable::from_text(&commented).is_ok());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("reduce_table_test");
        let path = dir.join("table.txt");
        let t = table();
        t.save(&path).expect("temp dir writable");
        let back = ResilienceTable::load(&path).expect("just written");
        assert_eq!(back, t);
        assert!(ResilienceTable::load(&dir.join("missing.txt")).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn summarise_counts_failures_as_cap() {
        let config = ResilienceConfig {
            fault_rates: vec![0.1],
            max_epochs: 5,
            repeats: 2,
            constraint: 0.9,
            fault_model: reduce_systolic::FaultModel::Random,
            strategy: Mitigation::Fap,
            seed: 0,
        };
        let points = vec![
            ResiliencePoint {
                rate_index: 0,
                rate: 0.1,
                repeat: 0,
                pre_retrain_accuracy: 0.5,
                accuracy_after_epoch: vec![0.92, 0.93, 0.94, 0.94, 0.95],
                epochs_to_constraint: Some(1),
            },
            ResiliencePoint {
                rate_index: 0,
                rate: 0.1,
                repeat: 1,
                pre_retrain_accuracy: 0.4,
                accuracy_after_epoch: vec![0.5, 0.6, 0.7, 0.8, 0.85],
                epochs_to_constraint: None,
            },
        ];
        let quarantined = vec![FailedPoint {
            rate_index: 0,
            rate: 0.1,
            repeat: 2,
            attempts: 2,
            error: "chaos injection: forced failure (job 2, attempt 1)".to_string(),
        }];
        let s = summarise(&[0.1], &points, &quarantined, &config);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].min_epochs, 1);
        assert_eq!(s[0].max_epochs, 5);
        assert_eq!(s[0].failures, 1);
        assert_eq!(s[0].quarantined, 1);
        assert!((s[0].mean_epochs - 3.0).abs() < 1e-9);
        assert_eq!(s[0].mean_accuracy_at_level.len(), 6);
        assert!((s[0].mean_accuracy_at_level[0] - 0.45).abs() < 1e-6);
        assert!((s[0].mean_accuracy_at_level[1] - 0.71).abs() < 1e-6);
    }
}
