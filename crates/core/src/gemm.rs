//! Executor-parallel GEMM: the packed tensor kernels fanned out over
//! [`exec::parallel_map`] row blocks.
//!
//! The tensor crate's GEMM is single-threaded by design (it has no
//! dependency on the executor). This module is the bridge for fleet-scale
//! work — retraining many masked models at once, or one large product on
//! an otherwise idle pool: it splits the output into fixed-height row
//! blocks of `A`, computes each with the regular [`reduce_tensor::ops`]
//! kernels (so each block takes the same packed/blocked dispatch a
//! sequential call would), and stitches the results back in input order.
//!
//! # Determinism
//!
//! The partition is a pure function of the shape — [`PAR_ROW_BLOCK`] rows
//! per job regardless of the thread count — and each block's arithmetic
//! is the same sequential kernel run on the same operand bytes, so the
//! result is **bit-identical across every `threads` setting** (and to the
//! plain `matmul` call, block boundaries included, because row
//! partitioning never changes any element's reduction chain). The
//! kernel-comparison harness and the determinism property tests both
//! pin this.

use crate::error::Result;
use crate::exec::{self, ExecConfig};
use reduce_tensor::{ops, Tensor};

/// Rows of `A` per parallel job. Fixed — never derived from the thread
/// count — so the job partition, and therefore the stitched result, is
/// identical whether the grid runs on 1 worker or 64. 64 rows of a
/// typical layer-sized product is enough work to amortise a job
/// dispatch, small enough to load-balance a handful of workers.
pub const PAR_ROW_BLOCK: usize = 64;

/// Computes `C = A · B` into `out` using the workspace GEMM kernels over
/// `cfg.threads` workers. Results are bit-identical to
/// [`ops::matmul_into`] for every thread count (see the module docs).
///
/// # Errors
///
/// Returns the same shape/rank errors as [`ops::matmul_into`] (naming
/// the underlying entry points), or any executor error surfaced by the
/// worker pool.
pub fn par_matmul_into(cfg: &ExecConfig, a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    // Anything invalid (wrong ranks, mismatched shared dim, misshapen
    // out) or too small to split goes through the sequential entry,
    // which produces the named tensor-level errors; only a conforming,
    // tall problem is fanned out.
    let m = match (a.dims(), b.dims(), out.dims()) {
        (&[m, ka], &[kb, n], &[mo, no]) if ka == kb && m == mo && n == no && m > PAR_ROW_BLOCK => m,
        _ => return Ok(ops::matmul_into(a, b, out)?),
    };
    let blocks: Vec<(usize, usize)> = (0..m)
        .step_by(PAR_ROW_BLOCK)
        .map(|s| (s, (s + PAR_ROW_BLOCK).min(m)))
        .collect();
    let results = exec::parallel_map(&blocks, cfg.threads, |_, &(s, e)| {
        let ablock = a.rows(s, e)?;
        Ok(ops::matmul(&ablock, b)?)
    })?;
    // Stitch in input order: block `i` owns rows `blocks[i]`, which is a
    // contiguous run of the row-major output.
    let cd = out.data_mut();
    let mut off = 0;
    for block in &results {
        if let Some(dst) = cd.get_mut(off..off + block.len()) {
            dst.copy_from_slice(block.data());
        }
        off += block.len();
    }
    Ok(())
}

/// Allocating counterpart of [`par_matmul_into`].
///
/// # Errors
///
/// Same conditions as [`par_matmul_into`].
pub fn par_matmul(cfg: &ExecConfig, a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, n) = match (a.dims(), b.dims()) {
        (&[m, _], &[_, n]) => (m, n),
        _ => return Ok(ops::matmul(a, b)?),
    };
    let mut out = Tensor::zeros([m, n]);
    par_matmul_into(cfg, a, b, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // Tall enough for three uneven row blocks.
        let a = Tensor::rand_uniform([2 * PAR_ROW_BLOCK + 17, 96], -1.0, 1.0, 1);
        let b = Tensor::rand_uniform([96, 33], -1.0, 1.0, 2);
        let seq = ops::matmul(&a, &b).expect("conformable");
        for threads in [1, 2, 8] {
            let cfg = ExecConfig::new(threads);
            let par = par_matmul(&cfg, &a, &b).expect("conformable");
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_into_reuses_dirty_workspace() {
        let a = Tensor::rand_uniform([PAR_ROW_BLOCK + 5, 40], -1.0, 1.0, 3);
        let b = Tensor::rand_uniform([40, 7], -1.0, 1.0, 4);
        let mut out = Tensor::full([PAR_ROW_BLOCK + 5, 7], f32::NAN);
        par_matmul_into(&ExecConfig::new(4), &a, &b, &mut out).expect("conformable");
        assert_eq!(out, ops::matmul(&a, &b).expect("conformable"));
    }

    #[test]
    fn small_problems_stay_sequential_and_exact() {
        let a = Tensor::rand_uniform([8, 8], -1.0, 1.0, 5);
        let b = Tensor::rand_uniform([8, 8], -1.0, 1.0, 6);
        let par = par_matmul(&ExecConfig::auto(), &a, &b).expect("conformable");
        assert_eq!(par, ops::matmul(&a, &b).expect("conformable"));
    }

    #[test]
    fn errors_propagate_from_the_kernels() {
        let a = Tensor::rand_uniform([100, 8], -1.0, 1.0, 7);
        let bad = Tensor::rand_uniform([9, 8], -1.0, 1.0, 8);
        assert!(par_matmul(&ExecConfig::new(2), &a, &bad).is_err());
        let rank1 = Tensor::zeros([8]);
        assert!(par_matmul(&ExecConfig::new(2), &rank1, &a).is_err());
    }
}
