//! The [`RunLog`] sink: one JSON line per event.
//!
//! The line *sequence* is deterministic across thread counts (see the
//! module-level determinism contract); with `redact_timing` the line
//! *bytes* are too, because the only non-deterministic payload — the
//! wall-clock `seconds` of `stage_finished` — is written as `null`.

use super::json::{push_json_f32, push_json_f64, push_json_string, JsonValue};
use super::{EpochScope, Event, Observer, Stage};
use crate::artifact::write_atomic;
use crate::error::{ReduceError, Result};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A JSON-lines run-log writer.
///
/// Write failures do not panic and cannot poison the framework run: the
/// first error is latched and surfaced by [`RunLog::flush`], which
/// callers should invoke once the run completes.
///
/// [`RunLog::create`] builds a file-backed log that accumulates lines in
/// memory and writes the whole artifact atomically (temp file + rename,
/// see [`crate::artifact`]) on [`RunLog::flush`] — an interrupted run
/// never leaves a torn `run_log.jsonl` behind.
pub struct RunLog {
    sink: Mutex<LogState>,
    redact_timing: bool,
}

struct LogState {
    sink: LogSink,
    error: Option<String>,
}

enum LogSink {
    /// Streams lines to an arbitrary writer (in-memory buffers in tests).
    Stream(Box<dyn Write + Send>),
    /// Buffers lines and writes the file atomically on flush.
    Atomic { path: PathBuf, buf: String },
}

impl RunLog {
    /// Wraps an arbitrary writer (a file, an in-memory buffer in tests).
    /// With `redact_timing`, wall-clock fields are written as `null`.
    pub fn new(writer: Box<dyn Write + Send>, redact_timing: bool) -> Self {
        RunLog {
            sink: Mutex::new(LogState {
                sink: LogSink::Stream(writer),
                error: None,
            }),
            redact_timing,
        }
    }

    /// A file-backed log at `path`: lines accumulate in memory and
    /// [`RunLog::flush`] writes the complete artifact atomically.
    ///
    /// # Errors
    ///
    /// Infallible today (the file is only touched at flush time); kept
    /// fallible for call-site compatibility and future validation.
    pub fn create(path: &Path, redact_timing: bool) -> Result<Self> {
        Ok(RunLog {
            sink: Mutex::new(LogState {
                sink: LogSink::Atomic {
                    path: path.to_path_buf(),
                    buf: String::new(),
                },
                error: None,
            }),
            redact_timing,
        })
    }

    /// Whether wall-clock fields are redacted.
    pub fn redacts_timing(&self) -> bool {
        self.redact_timing
    }

    /// Flushes the log — for a file-backed log this is the moment the
    /// artifact is (atomically) written — and reports the first write
    /// error encountered since creation, if any.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] wrapping the I/O failure.
    pub fn flush(&self) -> Result<()> {
        let mut state = match self.sink.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        if state.error.is_none() {
            let flushed = match &mut state.sink {
                LogSink::Stream(writer) => writer.flush().map_err(|e| e.to_string()),
                LogSink::Atomic { path, buf } => write_atomic(path, buf).map_err(|e| e.to_string()),
            };
            if let Err(e) = flushed {
                state.error = Some(e);
            }
        }
        match &state.error {
            Some(e) => Err(ReduceError::InvalidConfig {
                what: format!("run log write failed: {e}"),
            }),
            None => Ok(()),
        }
    }
}

impl Observer for RunLog {
    fn on_event(&self, event: &Event) {
        let line = render_event(event, self.redact_timing);
        let mut state = match self.sink.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        if state.error.is_some() {
            return; // latched: drop events after the first write failure
        }
        match &mut state.sink {
            LogSink::Stream(writer) => {
                if let Err(e) = writer.write_all(line.as_bytes()) {
                    state.error = Some(e.to_string());
                }
            }
            LogSink::Atomic { buf, .. } => buf.push_str(&line),
        }
    }
}

impl std::fmt::Debug for RunLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunLog")
            .field("redact_timing", &self.redact_timing)
            .finish_non_exhaustive()
    }
}

/// Renders one event as a JSON line (with trailing newline). The
/// rendering is deterministic (fixed key order, shortest-round-trip
/// floats), which is what makes redacted run logs byte-comparable and
/// lets the resume journal re-emit replayed events bit-identically.
pub(crate) fn render_event(event: &Event, redact_timing: bool) -> String {
    let mut s = String::with_capacity(96);
    match event {
        Event::StageStarted { stage } => {
            s.push_str("{\"event\":\"stage_started\",\"stage\":\"");
            s.push_str(stage.name());
            s.push_str("\"}");
        }
        Event::StageFinished { stage, seconds } => {
            s.push_str("{\"event\":\"stage_finished\",\"stage\":\"");
            s.push_str(stage.name());
            s.push_str("\",\"seconds\":");
            match seconds {
                Some(v) if !redact_timing => push_json_f64(&mut s, *v),
                _ => s.push_str("null"),
            }
            s.push('}');
        }
        Event::EpochCompleted {
            scope,
            epoch,
            accuracy,
        } => {
            s.push_str("{\"event\":\"epoch_completed\",");
            match scope {
                EpochScope::Point { rate_index, repeat } => {
                    s.push_str(&format!(
                        "\"scope\":\"point\",\"rate_index\":{rate_index},\"repeat\":{repeat}"
                    ));
                }
                EpochScope::Chip { chip_id } => {
                    s.push_str(&format!("\"scope\":\"chip\",\"chip_id\":{chip_id}"));
                }
            }
            s.push_str(&format!(",\"epoch\":{epoch},\"accuracy\":"));
            push_json_f32(&mut s, *accuracy);
            s.push('}');
        }
        Event::PointFinished {
            rate_index,
            rate,
            repeat,
            epochs_to_constraint,
            pre_retrain_accuracy,
            final_accuracy,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"point_finished\",\"rate_index\":{rate_index},\"rate\":"
            ));
            push_json_f64(&mut s, *rate);
            s.push_str(&format!(",\"repeat\":{repeat},\"epochs_to_constraint\":"));
            match epochs_to_constraint {
                Some(e) => s.push_str(&format!("{e}")),
                None => s.push_str("null"),
            }
            s.push_str(",\"pre_retrain_accuracy\":");
            push_json_f32(&mut s, *pre_retrain_accuracy);
            s.push_str(",\"final_accuracy\":");
            push_json_f32(&mut s, *final_accuracy);
            s.push('}');
        }
        Event::ChipRetrained {
            chip_id,
            fault_rate,
            epochs_budgeted,
            epochs_run,
            final_accuracy,
            satisfied,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"chip_retrained\",\"chip_id\":{chip_id},\"fault_rate\":"
            ));
            push_json_f64(&mut s, *fault_rate);
            s.push_str(&format!(
                ",\"epochs_budgeted\":{epochs_budgeted},\"epochs_run\":{epochs_run},\"final_accuracy\":"
            ));
            push_json_f32(&mut s, *final_accuracy);
            s.push_str(&format!(",\"satisfied\":{satisfied}}}"));
        }
        Event::ClusterFormed {
            representative,
            size,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"cluster_formed\",\"representative\":{representative},\"size\":{size}}}"
            ));
        }
        Event::WarmStartHit {
            chip_id,
            representative,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"warm_start_hit\",\"chip_id\":{chip_id},\"representative\":{representative}}}"
            ));
        }
        Event::WorkspaceUsed {
            stage,
            hits,
            misses,
            bytes_allocated,
        } => {
            s.push_str("{\"event\":\"workspace_used\",\"stage\":\"");
            s.push_str(stage.name());
            s.push_str(&format!(
                "\",\"hits\":{hits},\"misses\":{misses},\"bytes_allocated\":{bytes_allocated}}}"
            ));
        }
        Event::JobFailed {
            stage,
            job,
            attempt,
            error,
        } => {
            s.push_str("{\"event\":\"job_failed\",\"stage\":\"");
            s.push_str(stage.name());
            s.push_str(&format!(
                "\",\"job\":{job},\"attempt\":{attempt},\"error\":"
            ));
            push_json_string(&mut s, error);
            s.push('}');
        }
        Event::RetryScheduled {
            stage,
            job,
            attempt,
            seed,
        } => {
            s.push_str("{\"event\":\"retry_scheduled\",\"stage\":\"");
            s.push_str(stage.name());
            s.push_str(&format!(
                "\",\"job\":{job},\"attempt\":{attempt},\"seed\":{seed}}}"
            ));
        }
        Event::DivergenceRecovered {
            stage,
            job,
            attempts,
        } => {
            s.push_str("{\"event\":\"divergence_recovered\",\"stage\":\"");
            s.push_str(stage.name());
            s.push_str(&format!("\",\"job\":{job},\"attempts\":{attempts}}}"));
        }
        Event::CheckpointWritten { stage, completed } => {
            s.push_str("{\"event\":\"checkpoint_written\",\"stage\":\"");
            s.push_str(stage.name());
            s.push_str(&format!("\",\"completed\":{completed}}}"));
        }
        Event::ShardTruncated {
            shard,
            kept,
            dropped_bytes,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"shard_truncated\",\"shard\":{shard},\"kept\":{kept},\"dropped_bytes\":{dropped_bytes}}}"
            ));
        }
        Event::RecordDropped { shard, record } => {
            s.push_str(&format!(
                "{{\"event\":\"record_dropped\",\"shard\":{shard},\"record\":{record}}}"
            ));
        }
    }
    s.push('\n');
    s
}

/// Parses a rendered event object back into an [`Event`] — the inverse
/// of [`render_event`], used when replaying journaled grid-cell / chip
/// events on resume. Wall-clock `seconds` round-trips as `None` when the
/// source was redacted.
pub(crate) fn parse_event(value: &JsonValue) -> Result<Event> {
    let bad = |what: &str| ReduceError::InvalidConfig {
        what: format!("malformed journaled event: {what}"),
    };
    let stage_of = |value: &JsonValue| -> Result<Stage> {
        value
            .field("stage")
            .and_then(JsonValue::as_str)
            .and_then(Stage::from_name)
            .ok_or_else(|| bad("missing or unknown stage"))
    };
    let usize_of = |name: &'static str| -> Result<usize> {
        value
            .field(name)
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| bad(name))
    };
    let u64_of = |name: &'static str| -> Result<u64> {
        value
            .field(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad(name))
    };
    let u32_of = |name: &'static str| -> Result<u32> {
        value
            .field(name)
            .and_then(JsonValue::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| bad(name))
    };
    let f64_of = |name: &'static str| -> Result<f64> {
        value
            .field(name)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| bad(name))
    };
    let f32_of = |name: &'static str| -> Result<f32> {
        value
            .field(name)
            .and_then(JsonValue::as_f32)
            .ok_or_else(|| bad(name))
    };
    let kind = value
        .field("event")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("missing event kind"))?;
    match kind {
        "stage_started" => Ok(Event::StageStarted {
            stage: stage_of(value)?,
        }),
        "stage_finished" => {
            let seconds = match value.field("seconds") {
                Some(JsonValue::Null) | None => None,
                Some(v) => Some(v.as_f64().ok_or_else(|| bad("seconds"))?),
            };
            Ok(Event::StageFinished {
                stage: stage_of(value)?,
                seconds,
            })
        }
        "epoch_completed" => {
            let scope = match value.field("scope").and_then(JsonValue::as_str) {
                Some("point") => EpochScope::Point {
                    rate_index: usize_of("rate_index")?,
                    repeat: usize_of("repeat")?,
                },
                Some("chip") => EpochScope::Chip {
                    chip_id: usize_of("chip_id")?,
                },
                _ => return Err(bad("unknown epoch scope")),
            };
            Ok(Event::EpochCompleted {
                scope,
                epoch: usize_of("epoch")?,
                accuracy: f32_of("accuracy")?,
            })
        }
        "point_finished" => {
            let epochs_to_constraint = match value.field("epochs_to_constraint") {
                Some(JsonValue::Null) | None => None,
                Some(v) => Some(v.as_usize().ok_or_else(|| bad("epochs_to_constraint"))?),
            };
            Ok(Event::PointFinished {
                rate_index: usize_of("rate_index")?,
                rate: f64_of("rate")?,
                repeat: usize_of("repeat")?,
                epochs_to_constraint,
                pre_retrain_accuracy: f32_of("pre_retrain_accuracy")?,
                final_accuracy: f32_of("final_accuracy")?,
            })
        }
        "chip_retrained" => Ok(Event::ChipRetrained {
            chip_id: usize_of("chip_id")?,
            fault_rate: f64_of("fault_rate")?,
            epochs_budgeted: usize_of("epochs_budgeted")?,
            epochs_run: usize_of("epochs_run")?,
            final_accuracy: f32_of("final_accuracy")?,
            satisfied: value
                .field("satisfied")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| bad("satisfied"))?,
        }),
        "cluster_formed" => Ok(Event::ClusterFormed {
            representative: usize_of("representative")?,
            size: usize_of("size")?,
        }),
        "warm_start_hit" => Ok(Event::WarmStartHit {
            chip_id: usize_of("chip_id")?,
            representative: usize_of("representative")?,
        }),
        "workspace_used" => Ok(Event::WorkspaceUsed {
            stage: stage_of(value)?,
            hits: u64_of("hits")?,
            misses: u64_of("misses")?,
            bytes_allocated: u64_of("bytes_allocated")?,
        }),
        "job_failed" => Ok(Event::JobFailed {
            stage: stage_of(value)?,
            job: u64_of("job")?,
            attempt: u32_of("attempt")?,
            error: value
                .field("error")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("error"))?
                .to_string(),
        }),
        "retry_scheduled" => Ok(Event::RetryScheduled {
            stage: stage_of(value)?,
            job: u64_of("job")?,
            attempt: u32_of("attempt")?,
            seed: u64_of("seed")?,
        }),
        "divergence_recovered" => Ok(Event::DivergenceRecovered {
            stage: stage_of(value)?,
            job: u64_of("job")?,
            attempts: u32_of("attempts")?,
        }),
        "checkpoint_written" => Ok(Event::CheckpointWritten {
            stage: stage_of(value)?,
            completed: usize_of("completed")?,
        }),
        "shard_truncated" => Ok(Event::ShardTruncated {
            shard: usize_of("shard")?,
            kept: usize_of("kept")?,
            dropped_bytes: usize_of("dropped_bytes")?,
        }),
        "record_dropped" => Ok(Event::RecordDropped {
            shard: usize_of("shard")?,
            record: usize_of("record")?,
        }),
        other => Err(bad(&format!("unknown event kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::super::Stage;
    use super::*;
    use std::sync::Arc;

    /// An in-memory `Write` target shared with the test.
    #[derive(Clone, Default)]
    struct Buffer(Arc<Mutex<Vec<u8>>>);

    impl Write for Buffer {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("no poisoning").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn events() -> Vec<Event> {
        vec![
            Event::StageStarted {
                stage: Stage::Characterize,
            },
            Event::EpochCompleted {
                scope: EpochScope::Point {
                    rate_index: 0,
                    repeat: 1,
                },
                epoch: 1,
                accuracy: 0.875,
            },
            Event::PointFinished {
                rate_index: 0,
                rate: 0.1,
                repeat: 1,
                epochs_to_constraint: None,
                pre_retrain_accuracy: 0.5,
                final_accuracy: 0.875,
            },
            Event::ChipRetrained {
                chip_id: 3,
                fault_rate: 0.25,
                epochs_budgeted: 4,
                epochs_run: 4,
                final_accuracy: 0.92,
                satisfied: true,
            },
            Event::WorkspaceUsed {
                stage: Stage::Characterize,
                hits: 120,
                misses: 12,
                bytes_allocated: 4096,
            },
            Event::StageFinished {
                stage: Stage::Characterize,
                seconds: Some(1.25),
            },
        ]
    }

    fn log_to_string(redact: bool) -> String {
        let buf = Buffer::default();
        let log = RunLog::new(Box::new(buf.clone()), redact);
        for e in events() {
            log.on_event(&e);
        }
        log.flush().expect("in-memory writes cannot fail");
        let bytes = buf.0.lock().expect("no poisoning").clone();
        String::from_utf8(bytes).expect("valid UTF-8")
    }

    #[test]
    fn lines_are_valid_json_with_stable_fields() {
        let text = log_to_string(false);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in &lines {
            super::super::json::parse(line).expect("every line parses");
        }
        assert!(lines[0].contains("\"stage_started\""));
        assert!(lines[1].contains("\"scope\":\"point\"") && lines[1].contains("\"epoch\":1"));
        assert!(lines[2].contains("\"epochs_to_constraint\":null"));
        assert!(lines[3].contains("\"satisfied\":true"));
        assert!(
            lines[4].contains("\"workspace_used\"")
                && lines[4].contains("\"misses\":12")
                && lines[4].contains("\"bytes_allocated\":4096")
        );
        assert!(lines[5].contains("\"seconds\":1.25"));
    }

    #[test]
    fn redaction_nulls_wall_clock_only() {
        let redacted = log_to_string(true);
        assert!(redacted.contains("\"seconds\":null"));
        assert!(!redacted.contains("1.25"));
        // Every other byte is unchanged.
        let plain = log_to_string(false);
        assert_eq!(
            plain.replace("\"seconds\":1.25", "\"seconds\":null"),
            redacted
        );
    }

    #[test]
    fn write_errors_are_latched_and_reported_by_flush() {
        /// A writer that always fails.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let log = RunLog::new(Box::new(Broken), false);
        log.on_event(&Event::StageStarted {
            stage: Stage::Pretrain,
        });
        let err = log.flush().expect_err("latched error surfaces");
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn failure_events_render_with_escaped_causes() {
        let text = render_event(
            &Event::JobFailed {
                stage: Stage::Characterize,
                job: 5,
                attempt: 1,
                error: "bad \"quote\"\nline".to_string(),
            },
            false,
        );
        assert!(text.starts_with("{\"event\":\"job_failed\",\"stage\":\"characterize\""));
        assert!(text.contains("\\\"quote\\\"\\n"));
        super::super::json::parse(text.trim_end()).expect("line parses");
        let retry = render_event(
            &Event::RetryScheduled {
                stage: Stage::Deploy,
                job: 3,
                attempt: 2,
                seed: 0xDEAD,
            },
            false,
        );
        assert!(retry.contains("\"seed\":57005"));
        let recovered = render_event(
            &Event::DivergenceRecovered {
                stage: Stage::Deploy,
                job: 3,
                attempts: 2,
            },
            false,
        );
        assert!(recovered.contains("\"divergence_recovered\""));
        let ckpt = render_event(
            &Event::CheckpointWritten {
                stage: Stage::Characterize,
                completed: 8,
            },
            false,
        );
        assert!(ckpt.contains("\"checkpoint_written\"") && ckpt.contains("\"completed\":8"));
    }

    #[test]
    fn every_event_round_trips_through_parse_event() {
        let mut all = events();
        all.extend([
            Event::JobFailed {
                stage: Stage::Characterize,
                job: 7,
                attempt: 0,
                error: "training diverged: NaN \"loss\"".to_string(),
            },
            Event::RetryScheduled {
                stage: Stage::Characterize,
                job: 7,
                attempt: 1,
                seed: 9_223_372_036_854_775_809,
            },
            Event::DivergenceRecovered {
                stage: Stage::Characterize,
                job: 7,
                attempts: 1,
            },
            Event::CheckpointWritten {
                stage: Stage::Deploy,
                completed: 12,
            },
            Event::StageFinished {
                stage: Stage::Plan,
                seconds: None,
            },
            Event::ClusterFormed {
                representative: 4,
                size: 3,
            },
            Event::WarmStartHit {
                chip_id: 6,
                representative: 4,
            },
            Event::ShardTruncated {
                shard: 2,
                kept: 5,
                dropped_bytes: 131,
            },
            Event::RecordDropped {
                shard: 2,
                record: 5,
            },
        ]);
        for event in &all {
            let line = render_event(event, false);
            let value = super::super::json::parse(line.trim_end()).expect("line parses");
            let back = parse_event(&value).expect("event parses back");
            assert_eq!(&back, event, "round trip changed {event:?}");
            // The replay path depends on re-rendering bit-identically.
            assert_eq!(render_event(&back, false), line);
        }
        assert!(parse_event(&JsonValue::Null).is_err());
        let unknown = super::super::json::parse("{\"event\":\"warp\"}").expect("valid json");
        assert!(parse_event(&unknown).is_err());
    }

    #[test]
    fn create_writes_a_real_file() {
        let dir = std::env::temp_dir().join("reduce_runlog_test");
        let path = dir.join("run_log.jsonl");
        let log = RunLog::create(&path, true).expect("temp dir writable");
        assert!(log.redacts_timing());
        log.on_event(&Event::StageStarted {
            stage: Stage::Deploy,
        });
        log.flush().expect("flush succeeds");
        let text = std::fs::read_to_string(&path).expect("just written");
        assert!(text.contains("stage_started"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
