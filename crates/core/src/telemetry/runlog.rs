//! The [`RunLog`] sink: one JSON line per event.
//!
//! The line *sequence* is deterministic across thread counts (see the
//! module-level determinism contract); with `redact_timing` the line
//! *bytes* are too, because the only non-deterministic payload — the
//! wall-clock `seconds` of `stage_finished` — is written as `null`.

use super::json::{push_json_f32, push_json_f64, push_json_string};
use super::{EpochScope, Event, Observer};
use crate::error::{ReduceError, Result};
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// A JSON-lines run-log writer.
///
/// Write failures do not panic and cannot poison the framework run: the
/// first error is latched and surfaced by [`RunLog::flush`], which
/// callers should invoke once the run completes.
pub struct RunLog {
    sink: Mutex<LogState>,
    redact_timing: bool,
}

struct LogState {
    writer: Box<dyn Write + Send>,
    error: Option<String>,
}

impl RunLog {
    /// Wraps an arbitrary writer (a file, an in-memory buffer in tests).
    /// With `redact_timing`, wall-clock fields are written as `null`.
    pub fn new(writer: Box<dyn Write + Send>, redact_timing: bool) -> Self {
        RunLog {
            sink: Mutex::new(LogState {
                writer,
                error: None,
            }),
            redact_timing,
        }
    }

    /// Creates the log file at `path` (creating parent directories).
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] wrapping the I/O failure.
    pub fn create(path: &Path, redact_timing: bool) -> Result<Self> {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let file = std::fs::File::create(path).map_err(|e| ReduceError::InvalidConfig {
            what: format!("cannot create run log {}: {e}", path.display()),
        })?;
        Ok(Self::new(
            Box::new(std::io::BufWriter::new(file)),
            redact_timing,
        ))
    }

    /// Whether wall-clock fields are redacted.
    pub fn redacts_timing(&self) -> bool {
        self.redact_timing
    }

    /// Flushes the underlying writer and reports the first write error
    /// encountered since creation, if any.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] wrapping the I/O failure.
    pub fn flush(&self) -> Result<()> {
        let mut state = match self.sink.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        if state.error.is_none() {
            if let Err(e) = state.writer.flush() {
                state.error = Some(e.to_string());
            }
        }
        match &state.error {
            Some(e) => Err(ReduceError::InvalidConfig {
                what: format!("run log write failed: {e}"),
            }),
            None => Ok(()),
        }
    }
}

impl Observer for RunLog {
    fn on_event(&self, event: &Event) {
        let line = render_event(event, self.redact_timing);
        let mut state = match self.sink.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        if state.error.is_some() {
            return; // latched: drop events after the first write failure
        }
        if let Err(e) = state.writer.write_all(line.as_bytes()) {
            state.error = Some(e.to_string());
        }
    }
}

impl std::fmt::Debug for RunLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunLog")
            .field("redact_timing", &self.redact_timing)
            .finish_non_exhaustive()
    }
}

/// Renders one event as a JSON line (with trailing newline).
fn render_event(event: &Event, redact_timing: bool) -> String {
    let mut s = String::with_capacity(96);
    match event {
        Event::StageStarted { stage } => {
            s.push_str("{\"event\":\"stage_started\",\"stage\":\"");
            s.push_str(stage.name());
            s.push_str("\"}");
        }
        Event::StageFinished { stage, seconds } => {
            s.push_str("{\"event\":\"stage_finished\",\"stage\":\"");
            s.push_str(stage.name());
            s.push_str("\",\"seconds\":");
            match seconds {
                Some(v) if !redact_timing => push_json_f64(&mut s, *v),
                _ => s.push_str("null"),
            }
            s.push('}');
        }
        Event::EpochCompleted {
            scope,
            epoch,
            accuracy,
        } => {
            s.push_str("{\"event\":\"epoch_completed\",");
            match scope {
                EpochScope::Point { rate_index, repeat } => {
                    s.push_str(&format!(
                        "\"scope\":\"point\",\"rate_index\":{rate_index},\"repeat\":{repeat}"
                    ));
                }
                EpochScope::Chip { chip_id } => {
                    s.push_str(&format!("\"scope\":\"chip\",\"chip_id\":{chip_id}"));
                }
            }
            s.push_str(&format!(",\"epoch\":{epoch},\"accuracy\":"));
            push_json_f32(&mut s, *accuracy);
            s.push('}');
        }
        Event::PointFinished {
            rate_index,
            rate,
            repeat,
            epochs_to_constraint,
            pre_retrain_accuracy,
            final_accuracy,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"point_finished\",\"rate_index\":{rate_index},\"rate\":"
            ));
            push_json_f64(&mut s, *rate);
            s.push_str(&format!(",\"repeat\":{repeat},\"epochs_to_constraint\":"));
            match epochs_to_constraint {
                Some(e) => s.push_str(&format!("{e}")),
                None => s.push_str("null"),
            }
            s.push_str(",\"pre_retrain_accuracy\":");
            push_json_f32(&mut s, *pre_retrain_accuracy);
            s.push_str(",\"final_accuracy\":");
            push_json_f32(&mut s, *final_accuracy);
            s.push('}');
        }
        Event::ChipRetrained {
            chip_id,
            fault_rate,
            epochs_budgeted,
            epochs_run,
            final_accuracy,
            satisfied,
        } => {
            s.push_str(&format!(
                "{{\"event\":\"chip_retrained\",\"chip_id\":{chip_id},\"fault_rate\":"
            ));
            push_json_f64(&mut s, *fault_rate);
            s.push_str(&format!(
                ",\"epochs_budgeted\":{epochs_budgeted},\"epochs_run\":{epochs_run},\"final_accuracy\":"
            ));
            push_json_f32(&mut s, *final_accuracy);
            s.push_str(&format!(",\"satisfied\":{satisfied}}}"));
        }
        Event::WorkspaceUsed {
            stage,
            hits,
            misses,
            bytes_allocated,
        } => {
            s.push_str("{\"event\":\"workspace_used\",\"stage\":\"");
            s.push_str(stage.name());
            s.push_str(&format!(
                "\",\"hits\":{hits},\"misses\":{misses},\"bytes_allocated\":{bytes_allocated}}}"
            ));
        }
    }
    // `push_json_string` is reserved for payloads that carry free text;
    // every current field is numeric, boolean or a fixed stage name.
    debug_assert!(
        !s.is_empty() || {
            let mut probe = String::new();
            push_json_string(&mut probe, "");
            probe == "\"\""
        }
    );
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::super::Stage;
    use super::*;
    use std::sync::Arc;

    /// An in-memory `Write` target shared with the test.
    #[derive(Clone, Default)]
    struct Buffer(Arc<Mutex<Vec<u8>>>);

    impl Write for Buffer {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("no poisoning").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn events() -> Vec<Event> {
        vec![
            Event::StageStarted {
                stage: Stage::Characterize,
            },
            Event::EpochCompleted {
                scope: EpochScope::Point {
                    rate_index: 0,
                    repeat: 1,
                },
                epoch: 1,
                accuracy: 0.875,
            },
            Event::PointFinished {
                rate_index: 0,
                rate: 0.1,
                repeat: 1,
                epochs_to_constraint: None,
                pre_retrain_accuracy: 0.5,
                final_accuracy: 0.875,
            },
            Event::ChipRetrained {
                chip_id: 3,
                fault_rate: 0.25,
                epochs_budgeted: 4,
                epochs_run: 4,
                final_accuracy: 0.92,
                satisfied: true,
            },
            Event::WorkspaceUsed {
                stage: Stage::Characterize,
                hits: 120,
                misses: 12,
                bytes_allocated: 4096,
            },
            Event::StageFinished {
                stage: Stage::Characterize,
                seconds: Some(1.25),
            },
        ]
    }

    fn log_to_string(redact: bool) -> String {
        let buf = Buffer::default();
        let log = RunLog::new(Box::new(buf.clone()), redact);
        for e in events() {
            log.on_event(&e);
        }
        log.flush().expect("in-memory writes cannot fail");
        let bytes = buf.0.lock().expect("no poisoning").clone();
        String::from_utf8(bytes).expect("valid UTF-8")
    }

    #[test]
    fn lines_are_valid_json_with_stable_fields() {
        let text = log_to_string(false);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in &lines {
            super::super::json::parse(line).expect("every line parses");
        }
        assert!(lines[0].contains("\"stage_started\""));
        assert!(lines[1].contains("\"scope\":\"point\"") && lines[1].contains("\"epoch\":1"));
        assert!(lines[2].contains("\"epochs_to_constraint\":null"));
        assert!(lines[3].contains("\"satisfied\":true"));
        assert!(
            lines[4].contains("\"workspace_used\"")
                && lines[4].contains("\"misses\":12")
                && lines[4].contains("\"bytes_allocated\":4096")
        );
        assert!(lines[5].contains("\"seconds\":1.25"));
    }

    #[test]
    fn redaction_nulls_wall_clock_only() {
        let redacted = log_to_string(true);
        assert!(redacted.contains("\"seconds\":null"));
        assert!(!redacted.contains("1.25"));
        // Every other byte is unchanged.
        let plain = log_to_string(false);
        assert_eq!(
            plain.replace("\"seconds\":1.25", "\"seconds\":null"),
            redacted
        );
    }

    #[test]
    fn write_errors_are_latched_and_reported_by_flush() {
        /// A writer that always fails.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let log = RunLog::new(Box::new(Broken), false);
        log.on_event(&Event::StageStarted {
            stage: Stage::Pretrain,
        });
        let err = log.flush().expect_err("latched error surfaces");
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn create_writes_a_real_file() {
        let dir = std::env::temp_dir().join("reduce_runlog_test");
        let path = dir.join("run_log.jsonl");
        let log = RunLog::create(&path, true).expect("temp dir writable");
        assert!(log.redacts_timing());
        log.on_event(&Event::StageStarted {
            stage: Stage::Deploy,
        });
        log.flush().expect("flush succeeds");
        let text = std::fs::read_to_string(&path).expect("just written");
        assert!(text.contains("stage_started"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
