//! The [`MetricsRecorder`] sink: in-memory counters and min/mean/max
//! aggregates, rendered as the closing summary of the bench binaries.

use super::{Event, Observer};
use std::sync::Mutex;

/// Aggregate of one observed quantity: count, total, min, mean, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatSummary {
    /// Number of observations.
    pub count: usize,
    /// Sum of observations.
    pub total: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

/// Running min/total/max accumulator behind [`StatSummary`].
#[derive(Debug, Clone, Default)]
struct Accumulator {
    count: usize,
    total: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.total += v;
    }

    fn summary(&self) -> StatSummary {
        StatSummary {
            count: self.count,
            total: self.total,
            min: if self.count == 0 { 0.0 } else { self.min },
            mean: if self.count == 0 {
                0.0
            } else {
                self.total / self.count as f64
            },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// Workspace-arena allocation counters aggregated per stage (from
/// [`Event::WorkspaceUsed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceTotals {
    /// Workspace `take` calls served by recycling a pooled buffer.
    pub hits: u64,
    /// Workspace `take` calls that had to allocate.
    pub misses: u64,
    /// Total bytes allocated by misses.
    pub bytes_allocated: u64,
}

impl WorkspaceTotals {
    /// Fraction of `take` calls served from the pool (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// A point-in-time copy of everything the recorder has aggregated.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Wall-clock seconds per completed stage, in the order stages
    /// finished (untimed stages — redacted or failed — do not appear).
    pub stage_seconds: Vec<(String, StatSummary)>,
    /// Total FAT epochs ticked ([`Event::EpochCompleted`]).
    pub epochs_completed: usize,
    /// Grid cells finished ([`Event::PointFinished`]).
    pub points_finished: usize,
    /// Fleet chips retrained ([`Event::ChipRetrained`]).
    pub chips_retrained: usize,
    /// Of those, chips whose deployed accuracy met the constraint.
    pub chips_satisfied: usize,
    /// Epochs actually run per fleet chip.
    pub epochs_per_chip: StatSummary,
    /// Epochs-to-constraint over grid cells that reached it.
    pub epochs_to_constraint: StatSummary,
    /// Workspace allocation counters per stage, in the order stages first
    /// reported them ([`Event::WorkspaceUsed`]).
    pub workspace: Vec<(String, WorkspaceTotals)>,
    /// Failed job attempts ([`Event::JobFailed`]).
    pub jobs_failed: usize,
    /// Scheduled retries ([`Event::RetryScheduled`]).
    pub retries_scheduled: usize,
    /// Jobs recovered from divergence ([`Event::DivergenceRecovered`]).
    pub divergences_recovered: usize,
    /// Checkpoint-journal completions ([`Event::CheckpointWritten`]).
    pub checkpoints_written: usize,
    /// Fault-similarity clusters formed ([`Event::ClusterFormed`]).
    pub clusters_formed: usize,
    /// Member chips warm-started from a cluster representative
    /// ([`Event::WarmStartHit`]).
    pub warm_start_hits: usize,
    /// Journal shards truncated back to their valid prefix during
    /// self-healing resume ([`Event::ShardTruncated`]).
    pub shards_truncated: usize,
    /// Journal records dropped by those truncations
    /// ([`Event::RecordDropped`]).
    pub records_dropped: usize,
}

#[derive(Debug, Default)]
struct MetricsState {
    // Insertion-ordered Vec, not a HashMap: `render` output must be
    // deterministic and stage count is tiny.
    stage_seconds: Vec<(String, Accumulator)>,
    epochs_completed: usize,
    points_finished: usize,
    chips_retrained: usize,
    chips_satisfied: usize,
    epochs_per_chip: Accumulator,
    epochs_to_constraint: Accumulator,
    workspace: Vec<(String, WorkspaceTotals)>,
    jobs_failed: usize,
    retries_scheduled: usize,
    divergences_recovered: usize,
    checkpoints_written: usize,
    clusters_formed: usize,
    warm_start_hits: usize,
    shards_truncated: usize,
    records_dropped: usize,
}

/// An [`Observer`] that aggregates counters and stat summaries in memory.
///
/// This replaces the ad-hoc `Instant::now()` stage timers the bench
/// binaries used to carry: attach one recorder, run the pipeline, then
/// [`MetricsRecorder::render`] the closing table.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    state: Mutex<MetricsState>,
}

impl MetricsRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut MetricsState) -> R) -> R {
        let mut state = match self.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut state)
    }

    /// Copies out the current aggregates.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with_state(|s| MetricsSnapshot {
            stage_seconds: s
                .stage_seconds
                .iter()
                .map(|(name, acc)| (name.clone(), acc.summary()))
                .collect(),
            epochs_completed: s.epochs_completed,
            points_finished: s.points_finished,
            chips_retrained: s.chips_retrained,
            chips_satisfied: s.chips_satisfied,
            epochs_per_chip: s.epochs_per_chip.summary(),
            epochs_to_constraint: s.epochs_to_constraint.summary(),
            workspace: s.workspace.clone(),
            jobs_failed: s.jobs_failed,
            retries_scheduled: s.retries_scheduled,
            divergences_recovered: s.divergences_recovered,
            checkpoints_written: s.checkpoints_written,
            clusters_formed: s.clusters_formed,
            warm_start_hits: s.warm_start_hits,
            shards_truncated: s.shards_truncated,
            records_dropped: s.records_dropped,
        })
    }

    /// Renders the aggregates as a small fixed-width text table.
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("== telemetry ==\n");
        for (stage, stat) in &snap.stage_seconds {
            out.push_str(&format!("stage {stage:<13} {:>9.2}s\n", stat.total));
        }
        out.push_str(&format!(
            "epochs completed   {:>6}\n",
            snap.epochs_completed
        ));
        if snap.points_finished > 0 {
            out.push_str(&format!("points finished    {:>6}\n", snap.points_finished));
            if snap.epochs_to_constraint.count > 0 {
                out.push_str(&format!(
                    "epochs-to-constraint (reached {}/{}) min {:.1} mean {:.1} max {:.1}\n",
                    snap.epochs_to_constraint.count,
                    snap.points_finished,
                    snap.epochs_to_constraint.min,
                    snap.epochs_to_constraint.mean,
                    snap.epochs_to_constraint.max,
                ));
            }
        }
        if snap.chips_retrained > 0 {
            out.push_str(&format!(
                "chips retrained    {:>6} ({} satisfied)\n",
                snap.chips_retrained, snap.chips_satisfied
            ));
            out.push_str(&format!(
                "epochs per chip    min {:.1} mean {:.1} max {:.1}\n",
                snap.epochs_per_chip.min, snap.epochs_per_chip.mean, snap.epochs_per_chip.max,
            ));
        }
        if snap.clusters_formed > 0 {
            out.push_str(&format!(
                "clusters formed    {:>6} ({} warm starts)\n",
                snap.clusters_formed, snap.warm_start_hits
            ));
        }
        for (stage, w) in &snap.workspace {
            out.push_str(&format!(
                "workspace {stage:<12} hits {} misses {} allocated {} B (hit rate {:.1}%)\n",
                w.hits,
                w.misses,
                w.bytes_allocated,
                w.hit_rate() * 100.0,
            ));
        }
        if snap.shards_truncated > 0 {
            out.push_str(&format!(
                "journal healing    {:>6} shards truncated ({} records dropped)\n",
                snap.shards_truncated, snap.records_dropped
            ));
        }
        if snap.jobs_failed > 0 || snap.retries_scheduled > 0 {
            out.push_str(&format!(
                "job failures       {:>6} ({} retries scheduled, {} divergences recovered)\n",
                snap.jobs_failed, snap.retries_scheduled, snap.divergences_recovered
            ));
        }
        out
    }
}

impl Observer for MetricsRecorder {
    fn on_event(&self, event: &Event) {
        self.with_state(|s| match event {
            Event::StageStarted { .. } => {}
            Event::StageFinished { stage, seconds } => {
                if let Some(secs) = seconds {
                    let name = stage.name();
                    let slot = match s.stage_seconds.iter_mut().find(|(n, _)| n == name) {
                        Some((_, acc)) => acc,
                        None => {
                            s.stage_seconds
                                .push((name.to_string(), Accumulator::default()));
                            match s.stage_seconds.last_mut() {
                                Some((_, acc)) => acc,
                                None => return, // unreachable: just pushed
                            }
                        }
                    };
                    slot.observe(*secs);
                }
            }
            Event::EpochCompleted { scope, .. } => {
                s.epochs_completed += 1;
                let _ = scope; // scope is informational for this sink
            }
            Event::PointFinished {
                epochs_to_constraint,
                ..
            } => {
                s.points_finished += 1;
                if let Some(epochs) = epochs_to_constraint {
                    s.epochs_to_constraint.observe(*epochs as f64);
                }
            }
            Event::ChipRetrained {
                epochs_run,
                satisfied,
                ..
            } => {
                s.chips_retrained += 1;
                if *satisfied {
                    s.chips_satisfied += 1;
                }
                s.epochs_per_chip.observe(*epochs_run as f64);
            }
            Event::WorkspaceUsed {
                stage,
                hits,
                misses,
                bytes_allocated,
            } => {
                let name = stage.name();
                let slot = match s.workspace.iter_mut().find(|(n, _)| n == name) {
                    Some((_, w)) => w,
                    None => {
                        s.workspace
                            .push((name.to_string(), WorkspaceTotals::default()));
                        match s.workspace.last_mut() {
                            Some((_, w)) => w,
                            None => return, // unreachable: just pushed
                        }
                    }
                };
                slot.hits += hits;
                slot.misses += misses;
                slot.bytes_allocated += bytes_allocated;
            }
            Event::JobFailed { .. } => s.jobs_failed += 1,
            Event::RetryScheduled { .. } => s.retries_scheduled += 1,
            Event::DivergenceRecovered { .. } => s.divergences_recovered += 1,
            Event::CheckpointWritten { .. } => s.checkpoints_written += 1,
            Event::ClusterFormed { .. } => s.clusters_formed += 1,
            Event::WarmStartHit { .. } => s.warm_start_hits += 1,
            Event::ShardTruncated { .. } => s.shards_truncated += 1,
            Event::RecordDropped { .. } => s.records_dropped += 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::{EpochScope, Stage};
    use super::*;

    fn chip_event(epochs_run: usize, satisfied: bool) -> Event {
        Event::ChipRetrained {
            chip_id: 0,
            fault_rate: 0.1,
            epochs_budgeted: epochs_run,
            epochs_run,
            final_accuracy: 0.9,
            satisfied,
        }
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let rec = MetricsRecorder::new();
        rec.on_event(&Event::EpochCompleted {
            scope: EpochScope::Chip { chip_id: 0 },
            epoch: 1,
            accuracy: 0.8,
        });
        rec.on_event(&chip_event(2, true));
        rec.on_event(&chip_event(6, false));
        rec.on_event(&Event::PointFinished {
            rate_index: 0,
            rate: 0.1,
            repeat: 0,
            epochs_to_constraint: Some(3),
            pre_retrain_accuracy: 0.5,
            final_accuracy: 0.92,
        });
        let snap = rec.snapshot();
        assert_eq!(snap.epochs_completed, 1);
        assert_eq!(snap.points_finished, 1);
        assert_eq!(snap.chips_retrained, 2);
        assert_eq!(snap.chips_satisfied, 1);
        assert_eq!(snap.epochs_per_chip.count, 2);
        assert_eq!(snap.epochs_per_chip.min, 2.0);
        assert_eq!(snap.epochs_per_chip.mean, 4.0);
        assert_eq!(snap.epochs_per_chip.max, 6.0);
        assert_eq!(snap.epochs_to_constraint.total, 3.0);
    }

    #[test]
    fn stage_seconds_keep_finish_order_and_sum_repeats() {
        let rec = MetricsRecorder::new();
        for (stage, secs) in [
            (Stage::Characterize, 1.5),
            (Stage::Deploy, 0.5),
            (Stage::Deploy, 1.0),
        ] {
            rec.on_event(&Event::StageFinished {
                stage,
                seconds: Some(secs),
            });
        }
        rec.on_event(&Event::StageFinished {
            stage: Stage::Plan,
            seconds: None, // redacted: must not create a row
        });
        let snap = rec.snapshot();
        let names: Vec<&str> = snap.stage_seconds.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["characterize", "deploy"]);
        assert_eq!(snap.stage_seconds[1].1.count, 2);
        assert_eq!(snap.stage_seconds[1].1.total, 1.5);
    }

    #[test]
    fn empty_recorder_renders_without_panicking() {
        let rec = MetricsRecorder::new();
        let text = rec.render();
        assert!(text.contains("telemetry"));
        assert!(text.contains("epochs completed"));
        assert_eq!(rec.snapshot().epochs_per_chip.count, 0);
    }

    #[test]
    fn workspace_counters_aggregate_per_stage() {
        let rec = MetricsRecorder::new();
        for (stage, hits, misses, bytes) in [
            (Stage::Characterize, 100, 10, 4096),
            (Stage::Characterize, 50, 5, 2048),
            (Stage::Deploy, 7, 3, 512),
        ] {
            rec.on_event(&Event::WorkspaceUsed {
                stage,
                hits,
                misses,
                bytes_allocated: bytes,
            });
        }
        let snap = rec.snapshot();
        let names: Vec<&str> = snap.workspace.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["characterize", "deploy"]);
        assert_eq!(
            snap.workspace[0].1,
            WorkspaceTotals {
                hits: 150,
                misses: 15,
                bytes_allocated: 6144,
            }
        );
        assert!((snap.workspace[0].1.hit_rate() - 150.0 / 165.0).abs() < 1e-12);
        assert_eq!(WorkspaceTotals::default().hit_rate(), 0.0);
        let text = rec.render();
        assert!(text.contains("workspace characterize"));
        assert!(text.contains("allocated 512 B"));
    }

    #[test]
    fn failure_counters_aggregate_and_render() {
        let rec = MetricsRecorder::new();
        rec.on_event(&Event::JobFailed {
            stage: Stage::Characterize,
            job: 2,
            attempt: 0,
            error: "chaos".to_string(),
        });
        rec.on_event(&Event::RetryScheduled {
            stage: Stage::Characterize,
            job: 2,
            attempt: 1,
            seed: 99,
        });
        rec.on_event(&Event::DivergenceRecovered {
            stage: Stage::Characterize,
            job: 2,
            attempts: 1,
        });
        rec.on_event(&Event::CheckpointWritten {
            stage: Stage::Characterize,
            completed: 8,
        });
        let snap = rec.snapshot();
        assert_eq!(snap.jobs_failed, 1);
        assert_eq!(snap.retries_scheduled, 1);
        assert_eq!(snap.divergences_recovered, 1);
        assert_eq!(snap.checkpoints_written, 1);
        let text = rec.render();
        assert!(text.contains("job failures"));
        assert!(text.contains("1 retries scheduled"));
        // A clean run stays silent about failures.
        assert!(!MetricsRecorder::new().render().contains("job failures"));
    }

    #[test]
    fn render_mentions_chips_when_present() {
        let rec = MetricsRecorder::new();
        rec.on_event(&chip_event(3, true));
        let text = rec.render();
        assert!(text.contains("chips retrained"));
        assert!(text.contains("epochs per chip"));
    }
}
