//! Run manifests: one `manifest.json` per bench run recording everything
//! needed to reproduce its artifacts — workbench spec, seeds, grid
//! configuration, policies, thread count, and crate version.

use super::json::{self, push_json_f32, push_json_f64, push_json_string, JsonValue};
use crate::error::{ReduceError, Result};
use crate::resilience::ResilienceConfig;
use reduce_systolic::FleetConfig;
use std::path::Path;

/// Manifest format version, bumped on incompatible field changes.
const FORMAT_VERSION: u64 = 1;

/// The Step-① grid a run characterised, as recorded in its manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct GridManifest {
    /// The injected fault rates.
    pub fault_rates: Vec<f64>,
    /// Measured retraining budget per cell.
    pub max_epochs: usize,
    /// Repeats per rate.
    pub repeats: usize,
    /// The user accuracy constraint.
    pub constraint: f32,
    /// Spatial fault model (Debug-formatted).
    pub fault_model: String,
    /// Mitigation strategy (Debug-formatted).
    pub strategy: String,
    /// Master seed for fault-map generation.
    pub seed: u64,
}

impl GridManifest {
    /// Records a characterisation config.
    pub fn from_config(config: &ResilienceConfig) -> Self {
        GridManifest {
            fault_rates: config.fault_rates.clone(),
            max_epochs: config.max_epochs,
            repeats: config.repeats,
            constraint: config.constraint,
            fault_model: format!("{:?}", config.fault_model),
            strategy: format!("{:?}", config.strategy),
            seed: config.seed,
        }
    }
}

/// The Step-③ fleet a run deployed to, as recorded in its manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetManifest {
    /// Number of chips.
    pub chips: usize,
    /// Array rows per chip.
    pub rows: usize,
    /// Array columns per chip.
    pub cols: usize,
    /// Fault-rate distribution (Debug-formatted).
    pub rates: String,
    /// Spatial fault model (Debug-formatted).
    pub model: String,
    /// Master fleet seed.
    pub seed: u64,
}

impl FleetManifest {
    /// Records a fleet-generation config.
    pub fn from_config(config: &FleetConfig) -> Self {
        FleetManifest {
            chips: config.chips,
            rows: config.rows,
            cols: config.cols,
            rates: format!("{:?}", config.rates),
            model: format!("{:?}", config.model),
            seed: config.seed,
        }
    }
}

/// Per-stage workspace-arena allocation counters, as recorded in a run's
/// manifest (mirrors [`super::WorkspaceTotals`]).
///
/// The counters are a pure function of the run configuration — each
/// parallel job owns a private model workspace and the totals sum over
/// the job set — so recording them keeps the manifest byte-identical
/// across thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageWorkspace {
    /// Stage name (`characterize`, `deploy`, …).
    pub stage: String,
    /// Workspace `take` calls served by recycling a pooled buffer.
    pub hits: u64,
    /// Workspace `take` calls that had to allocate.
    pub misses: u64,
    /// Total bytes allocated by misses.
    pub bytes_allocated: u64,
}

/// Fleet-evaluation throughput, as recorded in a run's manifest.
///
/// Wall-clock derived, so runs that redact timing leave the field
/// `None` — exactly like [`RunManifest::threads`] — keeping redacted
/// artifacts byte-identical across thread counts and machines.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputManifest {
    /// Chips evaluated (retrained or quarantined).
    pub chips: usize,
    /// Wall-clock seconds spent in the deploy stage.
    pub seconds: f64,
    /// `chips / seconds` (0 when `seconds` is 0).
    pub chips_per_sec: f64,
}

/// Everything needed to reproduce a bench run's artifacts.
///
/// Serialised as pretty-printed JSON with struct-driven key order, so a
/// manifest's bytes are deterministic for a given run configuration. The
/// `threads` field is the one knob that does not influence results (the
/// executor is deterministic); runs that redact timing set it to `None`
/// so redacted artifacts stay byte-identical across thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// The producing binary (e.g. `fig2`, `ablation:grid`).
    pub tool: String,
    /// `reduce-core` crate version.
    pub crate_version: String,
    /// Bench scale preset (`smoke`, `default`, `full`).
    pub scale: String,
    /// Worker thread count; `None` when timing is redacted (thread count
    /// never affects results, only wall-clock).
    pub threads: Option<usize>,
    /// The user accuracy constraint.
    pub constraint: f32,
    /// Workbench spec (Debug-formatted model + dataset description).
    pub workbench: String,
    /// Characterisation grid, when the run performed Step ①.
    pub grid: Option<GridManifest>,
    /// Retraining policies evaluated, in evaluation order.
    pub policies: Vec<String>,
    /// Per-stage workspace allocation counters (empty when the run did not
    /// record them). Deterministic for a given configuration, so recording
    /// them preserves cross-thread-count manifest identity.
    pub workspace: Vec<StageWorkspace>,
    /// Deploy-stage throughput; `None` when timing is redacted (like
    /// `threads`, wall-clock never affects results).
    pub throughput: Option<ThroughputManifest>,
    /// Deployed fleet, when the run performed Step ③.
    pub fleet: Option<FleetManifest>,
}

impl RunManifest {
    /// Starts a manifest for `tool` at `scale`; the crate version is
    /// stamped automatically.
    pub fn new(tool: &str, scale: &str) -> Self {
        RunManifest {
            tool: tool.to_string(),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            scale: scale.to_string(),
            threads: None,
            constraint: 0.0,
            workbench: String::new(),
            grid: None,
            policies: Vec::new(),
            workspace: Vec::new(),
            throughput: None,
            fleet: None,
        }
    }

    /// Serialises the manifest as pretty-printed, key-order-stable JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        push_field(&mut s, "format_version", &FORMAT_VERSION.to_string());
        push_str_field(&mut s, "tool", &self.tool);
        push_str_field(&mut s, "crate_version", &self.crate_version);
        push_str_field(&mut s, "scale", &self.scale);
        match self.threads {
            Some(t) => push_field(&mut s, "threads", &t.to_string()),
            None => push_field(&mut s, "threads", "null"),
        }
        let mut constraint = String::new();
        push_json_f32(&mut constraint, self.constraint);
        push_field(&mut s, "constraint", &constraint);
        push_str_field(&mut s, "workbench", &self.workbench);
        match &self.grid {
            Some(grid) => {
                s.push_str("  \"grid\": {\n");
                let mut rates = String::from("[");
                for (i, r) in grid.fault_rates.iter().enumerate() {
                    if i > 0 {
                        rates.push_str(", ");
                    }
                    push_json_f64(&mut rates, *r);
                }
                rates.push(']');
                push_nested_field(&mut s, "fault_rates", &rates);
                push_nested_field(&mut s, "max_epochs", &grid.max_epochs.to_string());
                push_nested_field(&mut s, "repeats", &grid.repeats.to_string());
                let mut c = String::new();
                push_json_f32(&mut c, grid.constraint);
                push_nested_field(&mut s, "constraint", &c);
                push_nested_str_field(&mut s, "fault_model", &grid.fault_model);
                push_nested_str_field(&mut s, "strategy", &grid.strategy);
                push_nested_field_last(&mut s, "seed", &grid.seed.to_string());
                s.push_str("  },\n");
            }
            None => s.push_str("  \"grid\": null,\n"),
        }
        let mut policies = String::from("[");
        for (i, p) in self.policies.iter().enumerate() {
            if i > 0 {
                policies.push_str(", ");
            }
            push_json_string(&mut policies, p);
        }
        policies.push(']');
        push_field(&mut s, "policies", &policies);
        let mut workspace = String::from("[");
        for (i, w) in self.workspace.iter().enumerate() {
            if i > 0 {
                workspace.push_str(", ");
            }
            workspace.push_str("{\"stage\": ");
            push_json_string(&mut workspace, &w.stage);
            workspace.push_str(&format!(
                ", \"hits\": {}, \"misses\": {}, \"bytes_allocated\": {}}}",
                w.hits, w.misses, w.bytes_allocated
            ));
        }
        workspace.push(']');
        push_field(&mut s, "workspace", &workspace);
        match &self.throughput {
            Some(t) => {
                s.push_str("  \"throughput\": {\n");
                push_nested_field(&mut s, "chips", &t.chips.to_string());
                let mut seconds = String::new();
                push_json_f64(&mut seconds, t.seconds);
                push_nested_field(&mut s, "seconds", &seconds);
                let mut rate = String::new();
                push_json_f64(&mut rate, t.chips_per_sec);
                push_nested_field_last(&mut s, "chips_per_sec", &rate);
                s.push_str("  },\n");
            }
            None => s.push_str("  \"throughput\": null,\n"),
        }
        match &self.fleet {
            Some(fleet) => {
                s.push_str("  \"fleet\": {\n");
                push_nested_field(&mut s, "chips", &fleet.chips.to_string());
                push_nested_field(&mut s, "rows", &fleet.rows.to_string());
                push_nested_field(&mut s, "cols", &fleet.cols.to_string());
                push_nested_str_field(&mut s, "rates", &fleet.rates);
                push_nested_str_field(&mut s, "model", &fleet.model);
                push_nested_field_last(&mut s, "seed", &fleet.seed.to_string());
                s.push_str("  }\n");
            }
            None => s.push_str("  \"fleet\": null\n"),
        }
        s.push_str("}\n");
        s
    }

    /// Parses a manifest previously produced by [`RunManifest::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] on malformed JSON, a
    /// missing field, or an unsupported `format_version`.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = json::parse(text)?;
        let version = require_u64(&doc, "format_version")?;
        if version != FORMAT_VERSION {
            return Err(invalid(&format!(
                "unsupported manifest format_version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let grid = match doc.field("grid") {
            None | Some(JsonValue::Null) => None,
            Some(g) => Some(GridManifest {
                fault_rates: require_f64_array(g, "fault_rates")?,
                max_epochs: require_usize(g, "max_epochs")?,
                repeats: require_usize(g, "repeats")?,
                constraint: require_f64(g, "constraint")? as f32,
                fault_model: require_str(g, "fault_model")?,
                strategy: require_str(g, "strategy")?,
                seed: require_u64(g, "seed")?,
            }),
        };
        let fleet = match doc.field("fleet") {
            None | Some(JsonValue::Null) => None,
            Some(f) => Some(FleetManifest {
                chips: require_usize(f, "chips")?,
                rows: require_usize(f, "rows")?,
                cols: require_usize(f, "cols")?,
                rates: require_str(f, "rates")?,
                model: require_str(f, "model")?,
                seed: require_u64(f, "seed")?,
            }),
        };
        let policies = match doc.field("policies") {
            Some(JsonValue::Arr(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(
                        item.as_str()
                            .ok_or_else(|| invalid("non-string entry in `policies`"))?
                            .to_string(),
                    );
                }
                out
            }
            _ => return Err(invalid("manifest field `policies` missing or not an array")),
        };
        // Absent in manifests written before the counters existed: treat
        // a missing field as "not recorded" rather than an error.
        let workspace = match doc.field("workspace") {
            None | Some(JsonValue::Null) => Vec::new(),
            Some(JsonValue::Arr(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(StageWorkspace {
                        stage: require_str(item, "stage")?,
                        hits: require_u64(item, "hits")?,
                        misses: require_u64(item, "misses")?,
                        bytes_allocated: require_u64(item, "bytes_allocated")?,
                    });
                }
                out
            }
            Some(_) => return Err(invalid("manifest field `workspace` is not an array")),
        };
        // Absent in manifests written before throughput was recorded:
        // treat a missing field as "not recorded" rather than an error.
        let throughput = match doc.field("throughput") {
            None | Some(JsonValue::Null) => None,
            Some(t) => Some(ThroughputManifest {
                chips: require_usize(t, "chips")?,
                seconds: require_f64(t, "seconds")?,
                chips_per_sec: require_f64(t, "chips_per_sec")?,
            }),
        };
        Ok(RunManifest {
            tool: require_str(&doc, "tool")?,
            crate_version: require_str(&doc, "crate_version")?,
            scale: require_str(&doc, "scale")?,
            threads: match doc.field("threads") {
                None | Some(JsonValue::Null) => None,
                Some(t) => Some(
                    t.as_usize()
                        .ok_or_else(|| invalid("manifest field `threads` is not an integer"))?,
                ),
            },
            constraint: require_f64(&doc, "constraint")? as f32,
            workbench: require_str(&doc, "workbench")?,
            grid,
            policies,
            workspace,
            throughput,
            fleet,
        })
    }

    /// Writes the manifest to `path` (creating parent directories) via the
    /// shared atomic artifact writer, so an interrupted run never leaves a
    /// torn manifest behind.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] wrapping the I/O failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        crate::artifact::write_atomic(path, &self.to_json())
    }

    /// Reads and parses a manifest from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidConfig`] on I/O or parse failure.
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| invalid(&format!("cannot read manifest {}: {e}", path.display())))?;
        Self::from_json(&text)
    }
}

fn invalid(what: &str) -> ReduceError {
    ReduceError::InvalidConfig {
        what: what.to_string(),
    }
}

fn push_field(out: &mut String, key: &str, raw: &str) {
    out.push_str(&format!("  \"{key}\": {raw},\n"));
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("  \"{key}\": "));
    push_json_string(out, value);
    out.push_str(",\n");
}

fn push_nested_field(out: &mut String, key: &str, raw: &str) {
    out.push_str(&format!("    \"{key}\": {raw},\n"));
}

fn push_nested_field_last(out: &mut String, key: &str, raw: &str) {
    out.push_str(&format!("    \"{key}\": {raw}\n"));
}

fn push_nested_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("    \"{key}\": "));
    push_json_string(out, value);
    out.push_str(",\n");
}

fn require_str(doc: &JsonValue, key: &str) -> Result<String> {
    doc.field(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| invalid(&format!("manifest field `{key}` missing or not a string")))
}

fn require_u64(doc: &JsonValue, key: &str) -> Result<u64> {
    doc.field(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| invalid(&format!("manifest field `{key}` missing or not an integer")))
}

fn require_usize(doc: &JsonValue, key: &str) -> Result<usize> {
    doc.field(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| invalid(&format!("manifest field `{key}` missing or not an integer")))
}

fn require_f64(doc: &JsonValue, key: &str) -> Result<f64> {
    doc.field(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| invalid(&format!("manifest field `{key}` missing or not a number")))
}

fn require_f64_array(doc: &JsonValue, key: &str) -> Result<Vec<f64>> {
    match doc.field(key) {
        Some(JsonValue::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(
                    item.as_f64()
                        .ok_or_else(|| invalid(&format!("non-number in `{key}`")))?,
                );
            }
            Ok(out)
        }
        _ => Err(invalid(&format!(
            "manifest field `{key}` missing or not an array"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("fig3", "smoke");
        m.threads = Some(4);
        m.constraint = 0.91;
        m.workbench = "TwoMoons 16x16".to_string();
        m.grid = Some(GridManifest {
            fault_rates: vec![0.0, 0.1, 0.25],
            max_epochs: 10,
            repeats: 5,
            constraint: 0.91,
            fault_model: "Random".to_string(),
            strategy: "Fap".to_string(),
            seed: 0xC0FFEE,
        });
        m.policies = vec!["reduce-max".to_string(), "fixed:4".to_string()];
        m.workspace = vec![
            StageWorkspace {
                stage: "characterize".to_string(),
                hits: 150,
                misses: 15,
                bytes_allocated: 6144,
            },
            StageWorkspace {
                stage: "deploy".to_string(),
                hits: 7,
                misses: 3,
                bytes_allocated: 512,
            },
        ];
        m.throughput = Some(ThroughputManifest {
            chips: 20,
            seconds: 1.25,
            chips_per_sec: 16.0,
        });
        m.fleet = Some(FleetManifest {
            chips: 20,
            rows: 16,
            cols: 16,
            rates: "Uniform { lo: 0.0, hi: 0.25 }".to_string(),
            model: "Random".to_string(),
            seed: 0xF1EE7,
        });
        m
    }

    #[test]
    fn round_trips_through_json() {
        let m = sample();
        let parsed = RunManifest::from_json(&m.to_json()).expect("own output parses");
        assert_eq!(parsed, m);
    }

    #[test]
    fn round_trips_without_optional_sections() {
        let mut m = RunManifest::new("fig2", "default");
        m.constraint = 0.9;
        m.workbench = "wb".to_string();
        let parsed = RunManifest::from_json(&m.to_json()).expect("own output parses");
        assert_eq!(parsed, m);
        assert!(parsed.threads.is_none());
        assert!(parsed.grid.is_none());
        assert!(parsed.workspace.is_empty());
        assert!(parsed.throughput.is_none());
        assert!(parsed.fleet.is_none());
    }

    #[test]
    fn manifests_without_a_workspace_field_still_parse() {
        // A pre-counter manifest: strip the fields entirely.
        let mut m = RunManifest::new("fig2", "default");
        m.constraint = 0.9;
        m.workbench = "wb".to_string();
        let doc = m
            .to_json()
            .replace("  \"workspace\": [],\n", "")
            .replace("  \"throughput\": null,\n", "");
        let parsed = RunManifest::from_json(&doc).expect("older manifests parse");
        assert!(parsed.workspace.is_empty());
        assert!(parsed.throughput.is_none());
    }

    #[test]
    fn serialisation_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn version_is_stamped_and_checked() {
        let m = RunManifest::new("fig2", "smoke");
        assert_eq!(m.crate_version, env!("CARGO_PKG_VERSION"));
        let doc = m
            .to_json()
            .replace("\"format_version\": 1", "\"format_version\": 999");
        let err = RunManifest::from_json(&doc).expect_err("future versions rejected");
        assert!(err.to_string().contains("format_version"));
    }

    #[test]
    fn missing_fields_error() {
        let err = RunManifest::from_json("{\"format_version\": 1}").expect_err("incomplete");
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("reduce_manifest_test");
        let path = dir.join("manifest.json");
        let m = sample();
        m.save(&path).expect("temp dir writable");
        let back = RunManifest::load(&path).expect("just written");
        assert_eq!(back, m);
        let _ = std::fs::remove_dir_all(dir);
    }
}
