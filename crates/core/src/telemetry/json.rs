//! Minimal hand-rolled JSON support for the telemetry artifacts.
//!
//! The workspace's vendored `serde` is an inert shim (the derives expand
//! to nothing and there is no `serde_json`), so the run-log lines and
//! `manifest.json` are written and parsed by this module instead. The
//! writer is deterministic: struct-driven key order and Rust's
//! shortest-round-trip float formatting, so identical inputs always
//! produce identical bytes — the property the cross-thread run-log diff
//! in CI depends on.

use crate::error::{ReduceError, Result};

/// A parsed JSON value. Numbers keep their raw source text so integer
/// fields (e.g. 64-bit seeds) survive a round trip without passing
/// through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw token text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with source-ordered fields.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a field of an object value.
    pub(crate) fn field(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value parsed as `u64`, if it is an integral number.
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value parsed as `usize`, if it is an integral number.
    pub(crate) fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value parsed as `f64`, if it is a number.
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value parsed as `f32`, if it is a number. Parsing the raw
    /// token directly (instead of narrowing an `f64`) keeps the
    /// shortest-round-trip property exact.
    pub(crate) fn as_f32(&self) -> Option<f32> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub(crate) fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Appends `s` to `out` as a JSON string literal (quoted and escaped).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite float with Rust's deterministic shortest-round-trip
/// formatting; non-finite values (which valid telemetry never produces)
/// degrade to `null`.
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// `f32` variant of [`push_json_f64`] (formats at `f32` precision, so
/// `0.9f32` prints as `0.9`, not its `f64` widening).
pub(crate) fn push_json_f32(out: &mut String, v: f32) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Parses one JSON document (object, array or scalar), rejecting
/// trailing garbage.
pub(crate) fn parse(text: &str) -> Result<JsonValue> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing characters after the JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, what: &str) -> ReduceError {
        ReduceError::InvalidConfig {
            what: format!("malformed JSON at byte {}: {what}", self.pos),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue> {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Obj(fields)),
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(items)),
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| self.error("bad \\u escape"))?;
                        self.pos += 4;
                        // Surrogates never appear in our own output;
                        // degrade them to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.error("unknown escape")),
                },
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 (input is a &str, so the
                    // continuation bytes are guaranteed well-formed).
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    self.pos = (start + len).min(self.bytes.len());
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("invalid UTF-8 sequence"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let raw = self
            .bytes
            .get(start..self.pos)
            .and_then(|c| std::str::from_utf8(c).ok())
            .ok_or_else(|| self.error("bad number"))?;
        if raw.parse::<f64>().is_err() {
            return Err(self.error(&format!("bad number {raw:?}")));
        }
        Ok(JsonValue::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(parse("null").expect("valid"), JsonValue::Null);
        assert_eq!(parse(" true ").expect("valid"), JsonValue::Bool(true));
        assert_eq!(parse("false").expect("valid"), JsonValue::Bool(false));
        assert_eq!(
            parse("-12.5e3").expect("valid"),
            JsonValue::Num("-12.5e3".to_string())
        );
        assert_eq!(
            parse("\"a\\nb\"").expect("valid"),
            JsonValue::Str("a\nb".to_string())
        );
    }

    #[test]
    fn integers_do_not_lose_precision() {
        // 2^63 + 1 is not representable in f64; the raw token keeps it.
        let v = parse("9223372036854775809").expect("valid");
        assert_eq!(v.as_u64(), Some(9223372036854775809));
    }

    #[test]
    fn objects_and_arrays() {
        let v = parse(r#"{"a": [1, 2], "b": {"c": null}, "s": "x"}"#).expect("valid");
        assert_eq!(
            v.field("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num("1".to_string()),
                JsonValue::Num("2".to_string()),
            ]))
        );
        assert!(v
            .field("b")
            .and_then(|b| b.field("c"))
            .expect("present")
            .is_null());
        assert_eq!(v.field("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.field("missing"), None);
    }

    #[test]
    fn malformed_documents_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn string_escaping_round_trips() {
        let original = "quote \" slash \\ newline \n tab \t unicode é✓";
        let mut encoded = String::new();
        push_json_string(&mut encoded, original);
        let back = parse(&encoded).expect("own encoding");
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn float_formatting_is_shortest_round_trip() {
        let mut out = String::new();
        push_json_f64(&mut out, 0.1);
        assert_eq!(out, "0.1");
        let mut out = String::new();
        push_json_f32(&mut out, 0.9f32);
        assert_eq!(out, "0.9");
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}
